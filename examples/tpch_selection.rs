//! Structured-data workload: SQL selections over a generated TPC-H
//! `lineitem` table, executed for real with a shared scan (Section V-G).
//!
//! Three concurrent queries with different `l_quantity` thresholds read
//! the table once; each gets exactly the tuples its predicate selects.
//!
//! ```text
//! cargo run --release -p s3-bench --example tpch_selection
//! ```

use s3_engine::{run_job, run_merged, BlockStore, ExecConfig};
use s3_sim::SimRng;
use s3_workloads::jobs::SelectionJob;
use s3_workloads::lineitem::LineItemGen;
use std::time::Instant;

fn main() {
    // ~48 MB of lineitem rows in 1 MB blocks.
    println!("generating lineitem table...");
    let mut rng = SimRng::seed_from_u64(7);
    let text = LineItemGen::new().generate(&mut rng, 48 << 20);
    let store = BlockStore::from_text(&text, 1 << 20);
    let total_rows: usize = store.iter().map(memchr::count_lines).sum();
    println!(
        "table: {:.1} MB, {} rows, {} blocks\n",
        store.total_bytes() as f64 / (1 << 20) as f64,
        total_rows,
        store.num_blocks()
    );

    // SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem
    //  WHERE l_quantity > VAL  — three VALs, three jobs.
    let queries = [
        SelectionJob {
            quantity_threshold: 45, // the paper's ~10% selectivity
        },
        SelectionJob {
            quantity_threshold: 30,
        },
        SelectionJob {
            quantity_threshold: 49,
        },
    ];
    let cfg = ExecConfig::default();

    let refs: Vec<&SelectionJob> = queries.iter().collect();
    let t = Instant::now();
    let merged = run_merged(&refs, &store, &cfg);
    let shared_time = t.elapsed();

    println!(
        "{:<28} {:>10} {:>12}",
        "query", "selected", "selectivity"
    );
    for (q, m) in queries.iter().zip(&merged) {
        println!(
            "{:<28} {:>10} {:>11.1}%",
            format!("WHERE l_quantity > {}", q.quantity_threshold),
            m.records.len(),
            100.0 * m.records.len() as f64 / total_rows as f64
        );
    }

    // Verify against independent execution.
    let t = Instant::now();
    for (q, m) in queries.iter().zip(&merged) {
        let solo = run_job(q, &store, &cfg);
        assert_eq!(solo.records, m.records, "shared scan must be lossless");
    }
    let solo_time = t.elapsed();

    println!(
        "\none shared pass: {shared_time:?}; three independent passes: {solo_time:?}"
    );
    println!("all three result sets verified identical to standalone execution");
}
