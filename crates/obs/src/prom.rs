//! Dependency-free Prometheus text-format exporter.
//!
//! [`render_prometheus`] serializes a [`MetricsSnapshot`] into the
//! Prometheus exposition text format (version 0.0.4): dotted instrument
//! names become `s3_`-prefixed underscore names, counters and gauges map
//! directly, and histograms emit the conventional cumulative
//! `_bucket{le="…"}` series plus `_sum`/`_count` — with non-standard but
//! legal `_min`/`_max` lines so scrapers (like `s3top`) can re-derive
//! clamped windowed quantiles from bucket deltas.
//!
//! [`PromServer`] serves that render over plain HTTP/1.1 on a
//! `std::net::TcpListener` — no async runtime, no HTTP crate: one
//! non-blocking accept loop on a named thread that snapshots the registry
//! per request. Any GET path answers with the metrics body, so
//! `curl host:port/metrics` works as expected. Bind to port 0 to let the
//! OS pick (see [`PromServer::local_addr`]).
//!
//! [`parse_prometheus`] is the inverse of [`render_prometheus`] (modulo
//! name sanitization): it lets the `s3top` dashboard poll a *remote*
//! engine through the same `MetricsSnapshot` type it uses in-process.

use crate::metrics::{quantile_from_buckets, BucketCount, HistogramSnapshot, MetricsSnapshot};
use crate::Obs;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sanitize a dotted instrument name into a Prometheus metric name:
/// `engine.jobs_submitted` → `s3_engine_jobs_submitted`.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("s3_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for b in &h.buckets {
            cum += b.count;
            let le = if b.le == "+inf" { "+Inf".to_string() } else { b.le.clone() };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        if h.buckets.last().is_none_or(|b| b.le != "+inf") {
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        }
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
        // Non-standard extras: let scrapers clamp derived quantiles.
        out.push_str(&format!("{n}_min {}\n", h.min));
        out.push_str(&format!("{n}_max {}\n", h.max));
    }
    out
}

/// Parse a [`render_prometheus`]-style exposition back into a
/// [`MetricsSnapshot`] (names stay in their sanitized `s3_…` form;
/// histogram quantiles are re-estimated from the parsed buckets).
/// Unparseable lines are skipped — scraping is best-effort by nature.
pub fn parse_prometheus(text: &str) -> MetricsSnapshot {
    #[derive(Default)]
    struct H {
        cum: Vec<(String, u64)>,
        sum: u64,
        count: u64,
        min: u64,
        max: u64,
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut counters = BTreeMap::new();
    let mut gauges = BTreeMap::new();
    let mut hists: BTreeMap<String, H> = BTreeMap::new();

    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(n), Some(t)) = (it.next(), it.next()) {
                types.insert(n.to_string(), t.to_string());
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, val)) = line.rsplit_once(' ') else { continue };
        if let Some((base, rest)) = key.split_once("_bucket{le=\"") {
            let Some(le) = rest.strip_suffix("\"}") else { continue };
            let Ok(v) = val.parse::<u64>() else { continue };
            hists.entry(base.to_string()).or_default().cum.push((le.to_string(), v));
            continue;
        }
        let hist_part = ["_sum", "_count", "_min", "_max"]
            .iter()
            .find(|s| key.ends_with(**s))
            .filter(|s| {
                let base = &key[..key.len() - s.len()];
                types.get(base).is_some_and(|t| t == "histogram")
            })
            .copied();
        if let Some(suffix) = hist_part {
            let base = key[..key.len() - suffix.len()].to_string();
            let Ok(v) = val.parse::<u64>() else { continue };
            let h = hists.entry(base).or_default();
            match suffix {
                "_sum" => h.sum = v,
                "_count" => h.count = v,
                "_min" => h.min = v,
                _ => h.max = v,
            }
            continue;
        }
        match types.get(key).map(String::as_str) {
            Some("counter") => {
                if let Ok(v) = val.parse::<u64>() {
                    counters.insert(key.to_string(), v);
                }
            }
            Some("gauge") => {
                if let Ok(v) = val.parse::<i64>() {
                    gauges.insert(key.to_string(), v);
                }
            }
            _ => {}
        }
    }

    let histograms = hists
        .into_iter()
        .map(|(name, h)| {
            // De-cumulate the buckets back into per-bucket counts.
            let mut prev = 0u64;
            let mut buckets = Vec::new();
            let mut pairs = Vec::new();
            for (le, cum) in &h.cum {
                let c = cum.saturating_sub(prev);
                prev = *cum;
                let edge = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::INFINITY) };
                pairs.push((edge, c));
                if c > 0 {
                    buckets.push(BucketCount {
                        le: if le == "+Inf" { "+inf".to_string() } else { le.clone() },
                        count: c,
                    });
                }
            }
            let q = |p: f64| quantile_from_buckets(&pairs, h.min as f64, h.max as f64, p);
            let snap = HistogramSnapshot {
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                p50: q(0.50),
                p95: q(0.95),
                p99: q(0.99),
                buckets,
            };
            (name, snap)
        })
        .collect();

    MetricsSnapshot {
        schema: crate::metrics::SNAPSHOT_SCHEMA.to_string(),
        counters,
        gauges,
        histograms,
    }
}

/// A background thread serving [`render_prometheus`] over HTTP.
///
/// Stops (and joins the thread) on [`PromServer::stop`] or drop.
pub struct PromServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PromServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, or `"127.0.0.1:0"` for an
    /// OS-assigned port) and serve snapshots of `obs` until stopped. An
    /// [`Obs::off`] handle serves an empty exposition.
    ///
    /// # Errors
    /// Propagates bind errors (address in use, permission).
    pub fn serve(addr: &str, obs: Obs) -> std::io::Result<PromServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("s3-metrics-exporter".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let _ = answer(&mut stream, &obs);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(PromServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PromServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Answer one HTTP request on `stream` with the current exposition.
fn answer(stream: &mut TcpStream, obs: &Obs) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read (and discard) the request head; we serve one body regardless
    // of path, so only the terminating blank line matters.
    let mut head = [0u8; 1024];
    let mut seen = 0;
    loop {
        match stream.read(&mut head[seen..]) {
            Ok(0) => break,
            Ok(n) => {
                seen += n;
                if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") || seen == head.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let body = match obs.snapshot() {
        Some(snap) => render_prometheus(&snap),
        None => String::new(),
    };
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

/// Fetch the exposition text from a running exporter at `addr`
/// (`host:port`). A tiny blocking HTTP/1.1 GET — enough for dashboards
/// and CI smoke checks without an HTTP client dependency.
///
/// # Errors
/// Propagates connect/read errors; malformed responses come back as
/// `InvalidData`.
pub fn scrape_text(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let text = String::from_utf8_lossy(&buf);
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(ErrorKind::InvalidData, "no HTTP body in response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let r = crate::metrics::Registry::new();
        r.counter("engine.jobs_submitted").add(42);
        r.gauge("engine.active_jobs").set(-3);
        let h = r.histogram_with_bounds("engine.admission_latency_us", vec![10, 100]);
        for v in [5, 7, 50, 800] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn render_emits_conventional_series() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE s3_engine_jobs_submitted counter"));
        assert!(text.contains("s3_engine_jobs_submitted 42"));
        assert!(text.contains("s3_engine_active_jobs -3"));
        assert!(text.contains("s3_engine_admission_latency_us_bucket{le=\"10\"} 2"));
        // Buckets are cumulative.
        assert!(text.contains("s3_engine_admission_latency_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("s3_engine_admission_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("s3_engine_admission_latency_us_count 4"));
        assert!(text.contains("s3_engine_admission_latency_us_min 5"));
    }

    #[test]
    fn parse_round_trips_render() {
        let snap = sample();
        let back = parse_prometheus(&render_prometheus(&snap));
        assert_eq!(back.counter("s3_engine_jobs_submitted"), 42);
        assert_eq!(back.gauge("s3_engine_active_jobs"), -3);
        let h = &back.histograms["s3_engine_admission_latency_us"];
        assert_eq!(h.count, 4);
        assert_eq!((h.min, h.max), (5, 800));
        let orig = &snap.histograms["engine.admission_latency_us"];
        assert_eq!(h.sum, orig.sum);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn server_serves_scrapable_metrics() {
        let obs = Obs::new();
        obs.core().unwrap().metrics.counter("engine.jobs_submitted").add(7);
        let mut srv = PromServer::serve("127.0.0.1:0", obs).unwrap();
        let addr = srv.local_addr().to_string();
        let body = scrape_text(&addr).unwrap();
        assert!(body.contains("s3_engine_jobs_submitted 7"), "body: {body}");
        // Second scrape works (connection-per-request).
        assert!(scrape_text(&addr).is_ok());
        srv.stop();
        // Stopped server refuses new connections (eventually).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(&addr).is_err() || scrape_text(&addr).is_err());
    }

    #[test]
    fn off_handle_serves_empty_exposition() {
        let mut srv = PromServer::serve("127.0.0.1:0", Obs::off()).unwrap();
        let body = scrape_text(&srv.local_addr().to_string()).unwrap();
        assert!(body.is_empty());
        srv.stop();
    }
}
