//! `s3load` — open-loop SLO driver for the shared-scan server.
//!
//! Submits a Poisson stream of jobs at their scheduled arrival times
//! (open loop: a slow server does not slow the arrivals, so queueing
//! shows up as latency instead of being hidden by back-pressure), then
//! reconstructs per-job timelines from the drained trace via
//! [`JobJournal`] and reports sustained throughput plus windowed
//! tail-latency-over-time through [`WindowedHdr`]:
//!
//! - **admission_us** — submit → admit (the journal's `queue_us`);
//! - **completion_us** — submit → terminal, overall and per window;
//! - **windows** — fixed wall-clock windows over the run, each with its
//!   own HDR summary, so a latency regression that only bites under
//!   backlog is visible as a trend rather than averaged away.
//!
//! Results land in an `slo` section of `BENCH_engine.json` (read-modify-
//! write: the rest of the report is preserved). With `--listen` the
//! server exposes the live Prometheus endpoint and `s3load` self-scrapes
//! it once mid-run, so one process exercises the full export path.
//!
//! ```text
//! cargo run --release -p s3-bench --bin s3load -- \
//!     [--quick] [--jobs N] [--mean-gap-ms MS] [--seed S] [--window-ms MS]
//!     [--threads N] [--bps N] [--listen ADDR] [--journal PATH] [--out PATH]
//! ```

use s3_engine::{BlockStore, Obs, ServerConfig, SharedScanServer};
use s3_obs::hdr::{HdrHistogram, HdrSummary, WindowedHdr, DEFAULT_SUB_BUCKET_BITS};
use s3_obs::journal::{JobJournal, Outcome};
use s3_obs::prom::scrape_text;
use s3_sim::SimRng;
use s3_workloads::arrivals::ArrivalPattern;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::{Duration, Instant};

const BLOCK_BYTES: usize = 4 << 10;
/// Closed windows retained (and reported); older windows are evicted.
const MAX_WINDOWS: usize = 64;

struct Opts {
    jobs: usize,
    mean_gap_ms: f64,
    seed: u64,
    window_ms: u64,
    threads: usize,
    bps: usize,
    corpus_bytes: usize,
    listen: Option<String>,
    journal: Option<String>,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            jobs: 60,
            mean_gap_ms: 8.0,
            seed: 7,
            window_ms: 250,
            threads: 2,
            bps: 2,
            corpus_bytes: 1 << 20,
            listen: None,
            journal: None,
            out: "BENCH_engine.json".into(),
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("s3load: {msg}");
    eprintln!(
        "usage: s3load [--quick] [--jobs N] [--mean-gap-ms MS] [--seed S] [--window-ms MS] \
         [--threads N] [--bps N] [--listen ADDR] [--journal PATH] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                o.jobs = 24;
                o.mean_gap_ms = 4.0;
                o.window_ms = 100;
                o.corpus_bytes = 256 << 10;
            }
            "--jobs" => o.jobs = next("--jobs", &mut args).parse().unwrap_or_else(|_| fail("bad --jobs")),
            "--mean-gap-ms" => {
                o.mean_gap_ms = next("--mean-gap-ms", &mut args).parse().unwrap_or_else(|_| fail("bad --mean-gap-ms"))
            }
            "--seed" => o.seed = next("--seed", &mut args).parse().unwrap_or_else(|_| fail("bad --seed")),
            "--window-ms" => {
                o.window_ms = next("--window-ms", &mut args).parse().unwrap_or_else(|_| fail("bad --window-ms"))
            }
            "--threads" => o.threads = next("--threads", &mut args).parse().unwrap_or_else(|_| fail("bad --threads")),
            "--bps" => o.bps = next("--bps", &mut args).parse().unwrap_or_else(|_| fail("bad --bps")),
            "--listen" => o.listen = Some(next("--listen", &mut args)),
            "--journal" => o.journal = Some(next("--journal", &mut args)),
            "--out" => o.out = next("--out", &mut args),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if o.jobs == 0 || o.window_ms == 0 || o.mean_gap_ms <= 0.0 {
        fail("--jobs, --window-ms, and --mean-gap-ms must be positive");
    }
    o
}

fn prefix(i: usize) -> String {
    format!("{}a", (b'b' + (i % 20) as u8) as char)
}

fn summary_json(s: &HdrSummary) -> serde_json::Value {
    let text = serde_json::to_string(s).expect("summary serializes");
    serde_json::from_str(&text).expect("summary round-trips")
}

fn main() {
    let o = parse_opts();
    let times = ArrivalPattern::Poisson {
        n: o.jobs,
        mean_gap_s: o.mean_gap_ms / 1e3,
        seed: o.seed,
    }
    .times();

    eprintln!("s3load: building {} KiB corpus...", o.corpus_bytes >> 10);
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), o.corpus_bytes);
    let store = BlockStore::from_text(&text, BLOCK_BYTES);

    let mut cfg = ServerConfig::new(o.bps, o.threads);
    cfg.obs = Obs::new();
    cfg.metrics_addr = o.listen.clone();
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(store.clone(), cfg);
    if let Some(addr) = server.metrics_addr() {
        eprintln!("s3load: serving metrics at http://{addr}/metrics");
    }

    eprintln!(
        "s3load: {} jobs, Poisson mean gap {} ms (seed {}), {} blocks, bps={}, {} threads",
        o.jobs,
        o.mean_gap_ms,
        o.seed,
        store.num_blocks(),
        o.bps,
        o.threads
    );

    // ---- open-loop submission ----
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(o.jobs);
    let mut scrape_lines: Option<usize> = None;
    for (i, &at) in times.iter().enumerate() {
        let due = Duration::from_secs_f64(at);
        let now = t0.elapsed();
        if now < due {
            std::thread::sleep(due - now);
        }
        handles.push(server.submit(PatternWordCount::prefix(prefix(i))));
        // One self-scrape mid-burst proves the live endpoint end to end.
        if i == o.jobs / 2 {
            if let Some(addr) = server.metrics_addr() {
                let body = scrape_text(&addr.to_string()).expect("self-scrape succeeds");
                scrape_lines = Some(body.lines().count());
            }
        }
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    server.shutdown();
    if let Some(n) = scrape_lines {
        eprintln!("s3load: mid-run self-scrape returned {n} exposition lines");
    }

    // ---- journal reconstruction ----
    let core = obs.core().expect("Obs::new is on");
    let events = core.tracer.drain();
    let mut journal = JobJournal::from_events(&events);
    journal.dropped_events = core.tracer.dropped();
    if let Err(e) = journal.validate() {
        eprintln!("s3load: journal FAILED validation: {e}");
        std::process::exit(1);
    }
    let complete = |j: &&s3_obs::journal::JobRecord| j.admit_events == 1 && j.terminal_events == 1;
    if journal.dropped_events > 0 {
        let incomplete = journal.jobs.iter().filter(|j| !complete(j)).count();
        eprintln!(
            "s3load: WARNING: ring overwrote {} events; {incomplete} incomplete job timelines excluded from SLO stats",
            journal.dropped_events
        );
    }
    if let Some(path) = &o.journal {
        let text = serde_json::to_string_pretty(&journal).expect("journal serializes");
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create journal dir");
        }
        std::fs::write(path, text + "\n").expect("write journal");
        eprintln!("s3load: wrote journal {path} ({} jobs)", journal.jobs.len());
    }

    // ---- SLO aggregation: overall + windowed HDR summaries ----
    let admission = HdrHistogram::new();
    let completion = HdrHistogram::new();
    let windowed = WindowedHdr::new(DEFAULT_SUB_BUCKET_BITS, MAX_WINDOWS);
    let epoch =
        journal.jobs.iter().filter(&complete).map(|j| j.submit_us).min().unwrap_or(0);
    let window_us = o.window_ms * 1_000;

    let mut done: Vec<_> = journal
        .jobs
        .iter()
        .filter(|j| j.outcome == Outcome::Done)
        .filter(&complete)
        .collect();
    done.sort_by_key(|j| j.terminal_us);
    let mut window_starts: Vec<u64> = Vec::new();
    let mut cur_window = 0u64;
    for j in journal.jobs.iter().filter(&complete) {
        admission.record(j.queue_us);
    }
    for j in &done {
        let k = (j.terminal_us - epoch) / window_us;
        while cur_window < k {
            windowed.rotate();
            window_starts.push(cur_window * window_us);
            cur_window += 1;
        }
        completion.record(j.latency_us);
        windowed.record(j.latency_us);
    }
    windowed.rotate();
    window_starts.push(cur_window * window_us);
    let closed = windowed.windows();
    // Eviction keeps the most recent MAX_WINDOWS snapshots; align starts.
    let starts = &window_starts[window_starts.len() - closed.len()..];
    let windows_json: Vec<serde_json::Value> = closed
        .iter()
        .zip(starts)
        .map(|(snap, &start)| {
            serde_json::json!({
                "start_ms": (start as f64 / 1e3),
                "completed": (snap.count),
                "completion_us": (summary_json(&snap.summary())),
            })
        })
        .collect();

    let first_submit = epoch;
    let last_terminal = done.last().map(|j| j.terminal_us).unwrap_or(epoch);
    let active_s = ((last_terminal - first_submit) as f64 / 1e6).max(1e-9);
    let sustained = completed as f64 / active_s;
    let adm = admission.snapshot().summary();
    let cmp = completion.snapshot().summary();

    eprintln!("s3load: {completed} completed, {failed} failed in {wall_ms:.0} ms");
    eprintln!("  sustained             {sustained:>10.1} jobs/s");
    eprintln!(
        "  admission             p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs",
        adm.p50, adm.p95, adm.p99
    );
    eprintln!(
        "  completion            p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs",
        cmp.p50, cmp.p95, cmp.p99
    );
    eprintln!("  windows               {} × {} ms", windows_json.len(), o.window_ms);

    // ---- read-modify-write the slo section ----
    let slo = serde_json::json!({
        "schema": "s3slo/v1",
        "generated_by": "cargo run --release -p s3-bench --bin s3load",
        "config": {
            "jobs": (o.jobs),
            "mean_gap_ms": (o.mean_gap_ms),
            "seed": (o.seed),
            "window_ms": (o.window_ms),
            "threads": (o.threads),
            "blocks_per_segment": (o.bps),
            "corpus_bytes": (store.total_bytes()),
            "hdr_relative_error": (s3_obs::HdrSnapshot::empty(DEFAULT_SUB_BUCKET_BITS).relative_error()),
        },
        "submitted": (o.jobs),
        "completed": completed,
        "failed": failed,
        "wall_ms": wall_ms,
        "sustained_jobs_per_sec": sustained,
        "dropped_trace_events": (journal.dropped_events),
        "admission_us": (summary_json(&adm)),
        "completion_us": (summary_json(&cmp)),
        "windows": (serde_json::Value::Array(windows_json)),
    });
    let mut report: serde_json::Value = std::fs::read_to_string(&o.out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or_else(|| serde_json::json!({"schema": "s3bench-engine/v1"}));
    report["slo"] = slo;
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&o.out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&o.out, text + "\n").expect("write report");
    eprintln!("s3load: wrote slo section into {}", o.out);
}
