//! Fault-tolerance integration tests for the shared-scan server:
//!
//! - **quarantine containment** (property): any subset of jobs panicking
//!   at any segment fails individually, and every surviving job's output
//!   is byte-identical to running it solo with [`run_job`] — sharing a
//!   faulty scan never corrupts a healthy rider;
//! - **speculation**: an injected straggler worker triggers speculative
//!   re-execution, outputs stay exact (first-result-wins commit), and the
//!   recovery is visible in the metrics registry;
//! - **shutdown drains handles**: every submitted handle resolves at
//!   shutdown — with its output when the revolution completed, with
//!   [`JobError::Aborted`] otherwise — and a handle never hangs, even
//!   when the server is dropped without `shutdown()` or the submit races
//!   the shutdown flag.

use s3_engine::{
    run_job, BlockStore, EngineFault, ExecConfig, FaultPlan, FtConfig, JobError, MapReduceJob,
    Obs, ServerConfig, SharedScanServer,
};
use std::time::Duration;

/// Word count with a prefix filter (fold combiner + per-token map).
struct Count(String);

impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.0) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        true
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
    fn map_is_per_token(&self) -> bool {
        true
    }
    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.0) {
            emit(token.to_string(), 1);
        }
    }
}

fn store() -> BlockStore {
    let text = "alpha beta alpha gamma\nbeta delta alpha\nepsilon beta gamma delta\n".repeat(300);
    BlockStore::from_text(&text, 1024)
}

fn solo(prefix: &str, s: &BlockStore) -> std::collections::BTreeMap<String, i64> {
    run_job(
        &Count(prefix.to_string()),
        s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 4,
        },
    )
    .records
}

const PREFIXES: [&str; 4] = ["", "a", "be", "ga"];

/// Satellite (d) as a seeded sweep: for every seed, a random subset of the
/// jobs panics at a random point of its own revolution; every other job
/// must produce output byte-identical to its solo run, and the metrics
/// must account for exactly the panicked subset. Runs both scan paths.
#[test]
fn panicking_subset_never_corrupts_survivors() {
    let s = store();
    let num_segments = s.num_blocks().div_ceil(2) as u64; // bps = 2 below
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();

    for seed in 0u64..24 {
        // Cheap deterministic PRNG over the seed: pick the doomed subset
        // and each victim's panic segment without pulling in rand here.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let doomed_mask = (next() % 15) as usize; // 0..=14: never all 4 doomed
        let faults: Vec<EngineFault> = (0..PREFIXES.len())
            .filter(|i| doomed_mask & (1 << i) != 0)
            .map(|i| EngineFault::PanicMap {
                job: i as u64,
                after_segments: next() % num_segments,
            })
            .collect();
        let num_doomed = faults.len();

        for speculation in [false, true] {
            let mut cfg = ServerConfig::new(2, 3);
            cfg.obs = Obs::new();
            cfg.ft = if speculation {
                FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                }
            } else {
                FtConfig::default()
            };
            cfg.faults = Some(FaultPlan {
                faults: faults.clone(),
            });
            let obs = cfg.obs.clone();
            let server = SharedScanServer::with_config(s.clone(), cfg);
            let handles =
                server.submit_all(PREFIXES.iter().map(|p| Count(p.to_string())).collect());
            for (i, (h, reference)) in handles.into_iter().zip(&references).enumerate() {
                let doomed = doomed_mask & (1 << i) != 0;
                match h.wait() {
                    Ok(out) => {
                        assert!(!doomed, "seed {seed} spec {speculation}: job {i} survived");
                        assert_eq!(
                            &out.records, reference,
                            "seed {seed} spec {speculation}: job {i} differs from solo"
                        );
                    }
                    Err(JobError::Panicked(msg)) => {
                        assert!(doomed, "seed {seed} spec {speculation}: job {i} panicked");
                        assert!(msg.contains("injected map panic"), "{msg}");
                    }
                    Err(e) => panic!("seed {seed} spec {speculation}: job {i}: {e}"),
                }
            }
            server.shutdown();
            let snap = obs.snapshot().expect("observed");
            assert_eq!(
                snap.counter("engine.jobs_quarantined"),
                num_doomed as u64,
                "seed {seed} spec {speculation}"
            );
            assert_eq!(
                snap.counter("engine.jobs_completed"),
                (PREFIXES.len() - num_doomed) as u64,
                "seed {seed} spec {speculation}"
            );
        }
    }
}

/// An injected straggler makes its claims miss the deadline: rivals
/// speculatively re-execute the block, the first result wins, and the
/// output is still exact. The whole recovery is visible in the metrics.
#[test]
fn straggler_triggers_speculation_with_exact_output() {
    let s = store();
    let reference = solo("", &s);
    let mut cfg = ServerConfig::new(2, 3);
    cfg.obs = Obs::new();
    cfg.ft = FtConfig {
        deadline_floor: Duration::from_millis(2),
        deadline_slack: 1.5,
        ..FtConfig::resilient()
    };
    // Worker 0 sleeps 15 ms per block for the whole run: far past the
    // deadline, so every block it claims is re-executed by a rival.
    cfg.faults = Some(FaultPlan {
        faults: vec![EngineFault::SlowWorker {
            worker: 0,
            from_iter: 0,
            until_iter: u64::MAX,
            delay_us: 15_000,
        }],
    });
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(s, cfg);
    let out = server
        .submit(Count(String::new()))
        .wait()
        .expect("job completed despite the straggler");
    assert_eq!(out.records, reference, "speculation must not change output");
    server.shutdown();

    let snap = obs.snapshot().expect("observed");
    assert!(
        snap.counter("engine.tasks_speculated") > 0,
        "the straggler's claims must trigger speculation: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("engine.speculation_wins") > 0,
        "some rival re-execution must win: {:?}",
        snap.counters
    );
    assert_eq!(snap.counter("engine.jobs_quarantined"), 0);
}

/// Satellite (c): `shutdown()` resolves every outstanding handle. Jobs
/// whose revolution completes before the coordinator drains keep their
/// output; anything still pending when the server is gone aborts — and
/// `wait()` never hangs either way.
#[test]
fn shutdown_resolves_every_handle() {
    let s = store();
    let reference = solo("", &s);

    // Submitted before shutdown: the coordinator finishes their
    // revolutions, so they complete with exact output.
    let server = SharedScanServer::new(s.clone(), 2, 2);
    let handles: Vec<_> = (0..3).map(|_| server.submit(Count(String::new()))).collect();
    server.shutdown();
    for h in handles {
        let out = h.wait().expect("drained at shutdown");
        assert_eq!(out.records, reference);
    }

    // Dropped without shutdown(): same drain path, nothing hangs.
    let server = SharedScanServer::new(s.clone(), 2, 2);
    let h = server.submit(Count(String::new()));
    drop(server);
    assert_eq!(
        h.wait().expect("drained at drop").records,
        reference,
        "drop-without-shutdown must still drain"
    );

    // Submitted after the coordinator died (injected kill): the scan will
    // never run again, so the handle resolves to Aborted instead of
    // hanging forever.
    let mut cfg = ServerConfig::new(2, 2);
    cfg.faults = Some(FaultPlan {
        faults: vec![EngineFault::KillCoordinator { at_iter: 0 }],
    });
    let server = SharedScanServer::with_config(s, cfg);
    let early = server.submit(Count(String::new()));
    assert_eq!(early.wait(), Err(JobError::Aborted));
    // The kill has certainly happened once the first handle resolved.
    let late = server.submit(Count(String::new()));
    assert_eq!(late.wait(), Err(JobError::Aborted));
    server.shutdown();
}

/// Companion to [`shutdown_resolves_every_handle`] for the submit-racing-
/// shutdown window, via the public API only: shut down first, then verify
/// a clone-side submit aborts. `SharedScanServer::shutdown` consumes the
/// server, so the race is driven from a second thread holding the server.
#[test]
fn submit_racing_shutdown_aborts_instead_of_hanging() {
    for _ in 0..20 {
        let s = BlockStore::from_text("alpha beta\ngamma\n", 8);
        let server = SharedScanServer::new(s, 1, 1);
        let h = server.submit(Count(String::new()));
        // Shut down while the first job may still be mid-revolution, then
        // observe that its handle resolves either way.
        server.shutdown();
        match h.wait() {
            Ok(out) => assert!(out.records.contains_key("alpha")),
            Err(JobError::Aborted) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
