//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use s3_sim::stats::percentile;
use s3_sim::{Accumulator, EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Events pop in non-decreasing time order, and same-time events pop
    /// in insertion order, for any schedule.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(x) = q.pop() {
            popped.push(x);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The clock equals the time of the last popped event and never goes
    /// backwards, even with interleaved scheduling.
    #[test]
    fn clock_is_monotone(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut last = SimTime::ZERO;
        for &d in &delays {
            let Some((t, _)) = q.pop() else { break };
            prop_assert!(t >= last);
            last = t;
            q.schedule_in(SimDuration::from_micros(d), 1u32);
        }
    }

    /// SimTime arithmetic: (t + d) - d == t and (t + d) - t == d.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!(time.saturating_since(time + dur), SimDuration::ZERO);
    }

    /// Accumulator mean is bounded by min/max and matches a direct sum.
    #[test]
    fn accumulator_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((acc.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert!(acc.min().unwrap() <= acc.mean() + 1e-9);
        prop_assert!(acc.max().unwrap() >= acc.mean() - 1e-9);
        prop_assert_eq!(acc.count(), xs.len() as u64);
    }

    /// Percentiles are monotone in p and bracketed by the extremes.
    #[test]
    fn percentile_is_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                              p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&xs, lo);
        let v_hi = percentile(&xs, hi);
        prop_assert!(v_lo <= v_hi + 1e-9);
        prop_assert!(*xs.first().unwrap() <= v_lo + 1e-9);
        prop_assert!(*xs.last().unwrap() >= v_hi - 1e-9);
    }

    /// noise_factor stays within the clamp for any sigma/limit.
    #[test]
    fn noise_factor_is_clamped(seed in any::<u64>(), sigma in 0.0f64..2.0, limit in 1.0f64..8.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let f = rng.noise_factor(sigma, limit);
            prop_assert!(f >= 1.0 / limit - 1e-12 && f <= limit + 1e-12);
        }
    }

    /// Forked streams with equal salts from equal parents are equal;
    /// the parent's own stream stays deterministic.
    #[test]
    fn rng_forks_are_reproducible(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..10 {
            prop_assert_eq!(fa.unit().to_bits(), fb.unit().to_bits());
        }
        prop_assert_eq!(a.unit().to_bits(), b.unit().to_bits());
    }
}
