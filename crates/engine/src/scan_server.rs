//! A real, threaded S³ runtime: the paper's circular shared scan as a
//! long-running service.
//!
//! [`SharedScanServer`] owns a [`BlockStore`] organized into segments. Jobs
//! are submitted at any time from any thread; each job joins the scan at
//! the *next* segment boundary, shares every segment scan with whoever else
//! is active, wraps around the end of the file, and completes after exactly
//! one revolution — the S³ execution model (Sections IV-B/IV-C), executed
//! for real rather than simulated.
//!
//! ## Runtime shape
//!
//! The coordinator thread owns two persistent [`WorkerPool`]s created once
//! at server start:
//!
//! - a **scan pool** that executes every segment iteration (previously each
//!   iteration spawned and joined `num_threads` OS threads — a fixed cost
//!   per segment that punished small segments, exactly the configurations
//!   where S³'s responsiveness should shine);
//! - a **reduce pool** that runs job finalization (combine + reduce,
//!   sharded by key hash) *off* the coordinator, so one job finishing a
//!   heavy reduce never stalls the segment cadence of the jobs still
//!   scanning.
//!
//! Map-side state is **worker-persistent**: each pool worker keeps one
//! accumulator per active job across the whole revolution (streamed via
//! [`MapReduceJob::combine_fold`] when the job declares a fold combiner),
//! so segments no longer pay a merge-into-coordinator step.
//!
//! ## Fault tolerance
//!
//! User code is untrusted: a `map`/`combine`/`reduce` that panics fails
//! **its own job** — the handle resolves to
//! [`JobError::Panicked`](crate::JobError::Panicked) carrying the panic
//! message — while the shared scan and every co-riding job continue
//! (quarantine, always on). A server configured with
//! [`FtConfig::resilient`] additionally runs each segment as per-block
//! **claim/commit tasks** scheduled by a work-assisting loop: one packed
//! atomic per segment hands out fresh claims with a single `fetch_add`
//! each, and workers that drain the cursor immediately re-execute the
//! still-uncommitted tail (first result wins, idempotent commit) instead
//! of idling — a lost or straggling block is recovered in block-scan time
//! rather than after an EWMA deadline. The deadline machinery remains as
//! the crash-recovery fallback (and the sole tail trigger with
//! [`FtConfig::assist`] off): claims past `max(floor, ewma × slack)` mark
//! their owner slow, and workers that repeatedly miss deadlines are
//! excluded for a window of iterations then readmitted — the engine
//! analogue of the paper's periodic slot checking and slow-TaskTracker
//! exclusion (Section IV-D).
//! If the runtime itself dies (an injected [`FaultPlan`] coordinator kill,
//! or server shutdown racing a submit), every unresolved handle returns
//! [`JobError::Aborted`](crate::JobError::Aborted) — a handle never hangs
//! and a job is never silently lost.
//!
//! ```
//! use s3_engine::{BlockStore, MapReduceJob, SharedScanServer};
//!
//! struct Count;
//! impl MapReduceJob for Count {
//!     type K = String; type V = i64; type Out = i64;
//!     fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
//!         for w in line.split_whitespace() { emit(w.into(), 1); }
//!     }
//!     fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> { Some(v.iter().sum()) }
//! }
//!
//! let store = BlockStore::from_text("a b a\nc a b\n", 6);
//! let server = SharedScanServer::new(store, 1, 2);
//! let h = server.submit(Count);
//! let out = h.wait().expect("job ran to completion");
//! assert_eq!(out.records["a"], 3);
//! server.shutdown();
//! ```

use crate::arena::TokenMap;
use crate::exec::{JobOutput, ScanPath, ScanStats};
use crate::fault::{ArmedFaults, FaultPlan, FtConfig};
use crate::partition::{key_hash, shard_of_hash, KeySketch, PartitionPlan};
use crate::pool::{BlockClaims, WorkProgress, WorkerPool};
use crate::store::BlockStore;
use crate::types::{JobError, JobResult, MapReduceJob, PartitionMode};
use fxhash::FxHashMap;
use parking_lot::{Condvar, Mutex};
use s3_obs::trace::Ids;
use s3_obs::{Counter, Gauge, Histogram, Obs, TraceRecorder};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The server's pre-resolved instruments (all under `engine.*`; see the
/// README "Observability" section for the full catalog). Present only on
/// servers built with [`SharedScanServer::new_observed`], so the
/// unobserved hot path pays one `Option` check per instrumentation site.
struct ServerObs {
    obs: Obs,
    jobs_submitted: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    /// Jobs failed individually because their own map/combine/reduce
    /// panicked, while the scan continued for everyone else.
    jobs_quarantined: Arc<Counter>,
    /// Jobs failed because the runtime went away before they finished.
    jobs_aborted: Arc<Counter>,
    /// Jobs failed because their deadline passed mid-revolution.
    jobs_expired: Arc<Counter>,
    /// Tail blocks re-executed by another worker: work-assisting
    /// re-executions plus legacy deadline speculation.
    tasks_speculated: Arc<Counter>,
    /// Tail re-executions that won the first-result-wins commit.
    speculation_wins: Arc<Counter>,
    /// Blocks whose winning commit came from an **assisting** worker — one
    /// that drained the segment's claim cursor and re-executed the slow
    /// tail instead of waiting for a deadline.
    blocks_assisted: Arc<Counter>,
    /// Exclusion events (a worker may be excluded more than once).
    workers_excluded: Arc<Counter>,
    segments: Arc<Counter>,
    blocks: Arc<Counter>,
    bytes: Arc<Counter>,
    map_records: Arc<Counter>,
    fold_hits: Arc<Counter>,
    active_jobs: Arc<Gauge>,
    /// Workers currently sitting out an exclusion window.
    excluded_workers: Arc<Gauge>,
    /// Adaptive boundary recomputations that changed the segment size.
    segment_resizes: Arc<Counter>,
    /// Current effective blocks-per-segment of the circular scan.
    eff_bps: Arc<Gauge>,
    /// Assisted commits per 10 000 blocks scanned (basis points), updated
    /// at every segment boundary.
    assist_ratio: Arc<Gauge>,
    /// Gap between consecutive segment-scan starts while jobs are active.
    cadence: Arc<Histogram>,
    /// Duration of one segment scan.
    seg_scan: Arc<Histogram>,
    /// Submit → start of the first segment scan that includes the job.
    admission: Arc<Histogram>,
    /// Submit → output published.
    job_latency: Arc<Histogram>,
    /// Duration of the one-time split of a job's accumulated state into
    /// per-shard buckets. Phase-global work, kept out of `reduce_shard`
    /// so that histogram shows only per-shard reduce cost (the skew
    /// signal) instead of whichever task drew the split.
    shard_split: Arc<Histogram>,
    /// Duration of one reduce-pool finalization shard.
    reduce_shard: Arc<Histogram>,
    /// Records reduced by one finalization shard — the skew signal the
    /// weighted partitioner flattens.
    reduce_shard_records: Arc<Histogram>,
    /// Speculative claim → winning commit: how long a lost/stalled block
    /// took to recover once the deadline flagged it.
    recovery_us: Arc<Histogram>,
}

impl ServerObs {
    fn new(obs: &Obs) -> Option<Arc<ServerObs>> {
        let m = &obs.core()?.metrics;
        Some(Arc::new(ServerObs {
            obs: obs.clone(),
            jobs_submitted: m.counter("engine.jobs_submitted"),
            jobs_completed: m.counter("engine.jobs_completed"),
            jobs_quarantined: m.counter("engine.jobs_quarantined"),
            jobs_aborted: m.counter("engine.jobs_aborted"),
            jobs_expired: m.counter("engine.jobs_expired"),
            tasks_speculated: m.counter("engine.tasks_speculated"),
            speculation_wins: m.counter("engine.speculation_wins"),
            blocks_assisted: m.counter("engine.blocks_assisted"),
            workers_excluded: m.counter("engine.workers_excluded"),
            segments: m.counter("engine.segments_scanned"),
            blocks: m.counter("engine.blocks_scanned"),
            bytes: m.counter("engine.bytes_scanned"),
            map_records: m.counter("engine.map_records"),
            fold_hits: m.counter("engine.combiner_fold_hits"),
            active_jobs: m.gauge("engine.active_jobs"),
            excluded_workers: m.gauge("engine.excluded_workers"),
            segment_resizes: m.counter("engine.segment_resizes"),
            eff_bps: m.gauge("engine.effective_blocks_per_segment"),
            assist_ratio: m.gauge("engine.assist_ratio"),
            cadence: m.histogram("engine.segment_cadence_us"),
            seg_scan: m.histogram("engine.segment_scan_us"),
            admission: m.histogram("engine.admission_latency_us"),
            job_latency: m.histogram("engine.job_latency_us"),
            shard_split: m.histogram("engine.shard_split_us"),
            reduce_shard: m.histogram("engine.reduce_shard_us"),
            reduce_shard_records: m.histogram("engine.reduce_shard_records"),
            recovery_us: m.histogram("engine.recovery_us"),
        }))
    }

    fn tracer(&self) -> &TraceRecorder {
        &self.obs.core().expect("ServerObs only exists when on").tracer
    }
}

/// Map-side accumulator for one job on one worker: fold jobs stream into
/// one value per key, buffering jobs keep the runs for a later combine,
/// and token-identity fold jobs ([`MapReduceJob::map_emits_token`]) fold
/// under the raw token bytes in a [`TokenMap`] arena — no key is
/// materialized until the reduce shards call `token_key` once per distinct
/// token.
enum JobAcc<J: MapReduceJob> {
    Fold(FxHashMap<J::K, J::V>),
    Buf(FxHashMap<J::K, Vec<J::V>>),
    Tok(TokenMap<J::V>),
}

impl<J: MapReduceJob> JobAcc<J> {
    /// The accumulator kind is a pure function of the job's declared flags
    /// and the server's scan path, so every worker (and the speculative
    /// path's block-local accumulators) picks the same variant for a job.
    fn for_job(job: &J, scan_path: ScanPath) -> Self {
        if job.combine_is_fold() {
            if scan_path == ScanPath::Kernel && job.map_emits_token() {
                JobAcc::Tok(TokenMap::new())
            } else {
                JobAcc::Fold(FxHashMap::default())
            }
        } else {
            JobAcc::Buf(FxHashMap::default())
        }
    }

    fn push(&mut self, job: &J, k: J::K, v: J::V) {
        match self {
            JobAcc::Fold(map) => match map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    job.combine_fold(e.get_mut(), v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            },
            JobAcc::Buf(map) => map.entry(k).or_default().push(v),
            JobAcc::Tok(_) => unreachable!("token-identity jobs fold via push_token"),
        }
    }

    /// Fold one token occurrence into the arena (token-identity jobs only).
    /// `block` is the buffer the token borrows from (see
    /// [`TokenMap::upsert_within`]).
    fn push_token(&mut self, job: &J, block: &[u8], token: &[u8], v: J::V) {
        match self {
            JobAcc::Tok(map) => {
                map.upsert_within(block, token, v, |acc, next| job.combine_fold(acc, next))
            }
            _ => unreachable!("push_token requires a token-identity accumulator"),
        }
    }

    /// Merge a committed block-local accumulator into this (persistent)
    /// one — the speculative scan path's idempotent-commit step.
    fn merge(&mut self, job: &J, other: JobAcc<J>) {
        match (self, other) {
            (JobAcc::Fold(m), JobAcc::Fold(o)) => {
                for (k, v) in o {
                    match m.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            job.combine_fold(e.get_mut(), v);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
            }
            (JobAcc::Buf(m), JobAcc::Buf(o)) => {
                for (k, mut vs) in o {
                    m.entry(k).or_default().append(&mut vs);
                }
            }
            (JobAcc::Tok(m), JobAcc::Tok(o)) => {
                m.merge_from(o, |acc, next| job.combine_fold(acc, next));
            }
            _ => unreachable!("accumulator kinds are fixed per job"),
        }
    }
}

/// Run one job's map over one block into its accumulator.
///
/// Kernel path: byte slices through the SWAR iterators. `tokens`/`tokenized`
/// is the block's shared tokenization cache — filled lazily by the first
/// per-token job, reused by every other one (the cache must be cleared by
/// the caller at each new block). Token-identity jobs fold straight into the
/// arena accumulator.
///
/// Legacy path (the byte-equality oracle): lossy `&str` conversion, then
/// `str::lines` / `split_whitespace` into the `&str` entry points, exactly
/// as before the kernel existed.
///
/// User map code may panic; callers wrap this in their per-(job, block)
/// `catch_unwind`.
fn scan_block_for_job<'b, J: MapReduceJob>(
    job: &J,
    scan_path: ScanPath,
    block: &'b [u8],
    tokens: &mut Vec<&'b [u8]>,
    tokenized: &mut bool,
    emitted: &mut u64,
    acc: &mut JobAcc<J>,
) {
    match scan_path {
        ScanPath::Kernel => {
            if job.map_is_per_token() {
                if !*tokenized {
                    // One tokenization shared by every token job. Whole-block
                    // tokenization is exact: `\n`/`\r` are whitespace.
                    memchr::for_each_token(block, |t| tokens.push(t));
                    *tokenized = true;
                }
                if matches!(acc, JobAcc::Tok(_)) {
                    for tk in tokens.iter() {
                        if let Some(v) = job.token_value(tk) {
                            *emitted += 1;
                            acc.push_token(job, block, tk, v);
                        }
                    }
                } else {
                    for tk in tokens.iter() {
                        job.map_token_bytes(tk, &mut |k, v| {
                            *emitted += 1;
                            acc.push(job, k, v);
                        });
                    }
                }
            } else {
                for line in memchr::lines(block) {
                    job.map_bytes(line, &mut |k, v| {
                        *emitted += 1;
                        acc.push(job, k, v);
                    });
                }
            }
        }
        ScanPath::Legacy => {
            let text = String::from_utf8_lossy(block);
            if job.map_is_per_token() {
                for tk in text.split_whitespace() {
                    job.map_token(tk, &mut |k, v| {
                        *emitted += 1;
                        acc.push(job, k, v);
                    });
                }
            } else {
                for line in text.lines() {
                    job.map(line, &mut |k, v| {
                        *emitted += 1;
                        acc.push(job, k, v);
                    });
                }
            }
        }
    }
}

/// One worker's accumulated state for one job over the revolution so far.
struct JobPartial<J: MapReduceJob> {
    emitted: u64,
    acc: JobAcc<J>,
}

/// Per-worker slot: the partials of every job this worker has scanned for.
type Slot<J> = Vec<(u64, JobPartial<J>)>;

/// Sticky record of a job's own code having panicked. Shared between the
/// scan workers (who record), the coordinator (who quarantines), and the
/// reduce shards (who fail the finalization).
struct JobFailure {
    failed: AtomicBool,
    msg: Mutex<Option<String>>,
}

impl JobFailure {
    fn new() -> Arc<Self> {
        Arc::new(JobFailure {
            failed: AtomicBool::new(false),
            msg: Mutex::new(None),
        })
    }

    fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Record a panic payload; the first recorded message wins.
    fn record(&self, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload_to_string(payload);
        let mut guard = self.msg.lock();
        if guard.is_none() {
            *guard = Some(msg);
        }
        drop(guard);
        self.failed.store(true, Ordering::Release);
    }

    fn message(&self) -> String {
        self.msg.lock().clone().unwrap_or_else(|| "job panicked".into())
    }
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Shared completion slot a [`JobHandle`] waits on.
pub(crate) struct HandleState<K: Ord, Out> {
    done: Mutex<Option<JobResult<K, Out>>>,
    cv: Condvar,
}

impl<K: Ord, Out> HandleState<K, Out> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(HandleState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Resolve the slot directly (used by the service for jobs that never
    /// reach a server — shed, expired-in-queue, or drained at shutdown).
    /// First write wins; a later write is dropped.
    pub(crate) fn resolve(&self, result: JobResult<K, Out>) {
        let mut guard = self.done.lock();
        if guard.is_none() {
            *guard = Some(result);
            self.cv.notify_all();
        }
    }
}

/// How a [`Completion`] resolved — the summary handed to an
/// [`on_resolve`](SubmitOpts::on_resolve) observer (the multi-tenant
/// service uses it to keep its admission window and accounting identity
/// without polling handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolveKind {
    /// Published an output.
    Completed,
    /// Published [`JobError::Panicked`] (quarantine).
    Quarantined,
    /// Published [`JobError::Aborted`].
    Aborted,
    /// Published [`JobError::DeadlineExpired`].
    Expired,
}

/// Observer invoked exactly once when a job's completion publishes.
pub(crate) type ResolveHook = Arc<dyn Fn(ResolveKind) + Send + Sync>;

/// Per-job options for the service-routed submit path
/// ([`SharedScanServer::submit_routed`]).
pub(crate) struct SubmitOpts<K: Ord, Out> {
    /// Caller-created completion slot (the client already holds a
    /// [`JobHandle`] over it).
    pub state: Arc<HandleState<K, Out>>,
    /// Absolute deadline enforced by the coordinator's expiry sweep.
    pub expires_at: Option<Instant>,
    /// Resolve observer, invoked exactly once when the job publishes.
    pub on_resolve: Option<ResolveHook>,
}

/// Publish-once guard for one job's result. Whoever ends the job —
/// the last reduce shard (success), the quarantine sweep (panic), the
/// deadline sweep (expiry), or the coordinator's exit path (abort) —
/// publishes through it; if it is dropped without a publish (coordinator
/// unwound, accumulator lost), its `Drop` publishes
/// [`JobError::Aborted`], so a [`JobHandle`] can never hang on a job the
/// runtime forgot.
struct Completion<K: Ord, Out> {
    state: Arc<HandleState<K, Out>>,
    published: AtomicBool,
    /// Invoked exactly once, after the result is visible to the handle.
    on_resolve: Option<ResolveHook>,
}

impl<K: Ord, Out> Completion<K, Out> {
    fn with_hook(state: Arc<HandleState<K, Out>>, on_resolve: Option<ResolveHook>) -> Self {
        Completion {
            state,
            published: AtomicBool::new(false),
            on_resolve,
        }
    }

    /// First publish wins; later calls (including the `Drop` fallback) are
    /// no-ops.
    fn publish(&self, result: JobResult<K, Out>) {
        if self.published.swap(true, Ordering::AcqRel) {
            return;
        }
        let kind = match &result {
            Ok(_) => ResolveKind::Completed,
            Err(JobError::Panicked(_)) => ResolveKind::Quarantined,
            Err(JobError::DeadlineExpired) => ResolveKind::Expired,
            // Rejected never reaches a server-side completion; fold any
            // stray into the abort bucket rather than inventing a kind.
            Err(JobError::Aborted) | Err(JobError::Rejected { .. }) => ResolveKind::Aborted,
        };
        // Run the hook BEFORE waking the handle (and with no locks held):
        // service accounting updated by the hook is then causally visible
        // to whoever `wait()`s on this job — a client that sees its job
        // complete also sees it counted.
        if let Some(hook) = &self.on_resolve {
            hook(kind);
        }
        let mut guard = self.state.done.lock();
        *guard = Some(result);
        self.state.cv.notify_all();
    }
}

impl<K: Ord, Out> Drop for Completion<K, Out> {
    fn drop(&mut self) {
        self.publish(Err(JobError::Aborted));
    }
}

/// State of one job inside the server.
struct ActiveJob<J: MapReduceJob> {
    id: u64,
    job: Arc<J>,
    completion: Completion<J::K, J::Out>,
    failure: Arc<JobFailure>,
    /// Blocks of this job's revolution still to scan (counts down from the
    /// store's block count). Block-denominated because adaptive resizing
    /// means segments are not all the same size: each segment consumes
    /// `min(segment_len, blocks_remaining)` and the job finishes when it
    /// hits zero — exactly one revolution regardless of how boundaries
    /// moved while it ran.
    blocks_remaining: usize,
    /// Segments of this job's own revolution already completed (keys
    /// injected map panics deterministically, independent of admission
    /// timing).
    segments_done: u64,
    /// Blocks this job's revolution has actually covered.
    blocks_seen: u64,
    /// Bytes this job's revolution has actually covered.
    bytes_seen: u64,
    /// Submission instant in tracer microseconds (0 when unobserved).
    submitted_us: u64,
    /// Whether the admission latency has been recorded yet.
    admitted: bool,
    /// Absolute deadline: at the first segment boundary past this instant
    /// the job is removed from the scan and its handle resolves to the
    /// sticky [`JobError::DeadlineExpired`]. `None` means no deadline.
    expires_at: Option<Instant>,
}

/// Returned by [`JobHandle::wait_timeout`] when the timeout elapsed before
/// the job resolved. The job is still running (or queued) — the handle
/// remains valid and can be waited on again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout;

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timed out waiting for the job to resolve")
    }
}

impl std::error::Error for WaitTimeout {}

/// A ticket for a submitted job; [`JobHandle::wait`] blocks until the
/// job's revolution completes (or fails) and returns the result.
pub struct JobHandle<K: Ord, Out> {
    state: Arc<HandleState<K, Out>>,
}

impl<K: Ord, Out> std::fmt::Debug for JobHandle<K, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("resolved", &self.state.done.lock().is_some())
            .finish()
    }
}

impl<K: Ord, Out> JobHandle<K, Out> {
    pub(crate) fn from_state(state: Arc<HandleState<K, Out>>) -> Self {
        JobHandle { state }
    }

    /// Block until the job resolves: its output relation and stats on
    /// success, or the [`JobError`] that ended it. Never hangs — a job
    /// whose runtime disappears resolves to [`JobError::Aborted`].
    pub fn wait(self) -> JobResult<K, Out> {
        let mut guard = self.state.done.lock();
        loop {
            if let Some(out) = guard.take() {
                return out;
            }
            self.state.cv.wait(&mut guard);
        }
    }

    /// Block until the job resolves or `timeout` elapses, whichever comes
    /// first. Non-consuming: on [`WaitTimeout`] the handle is untouched
    /// and a later `wait`/`wait_timeout`/`try_take` still observes the
    /// eventual result. A poll with `Duration::ZERO` is `try_take` with a
    /// typed miss.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<JobResult<K, Out>, WaitTimeout> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.state.done.lock();
        loop {
            if let Some(out) = guard.take() {
                return Ok(out);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WaitTimeout);
            }
            // Re-check after every wakeup (spurious or not) against the
            // absolute deadline, so total blocking never exceeds `timeout`.
            self.state.cv.wait_for(&mut guard, deadline - now);
        }
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<JobResult<K, Out>> {
        self.state.done.lock().take()
    }
}

/// Runtime segment-boundary adaptation — the live-engine port of the
/// paper's *dynamic sub-job adjustment* (Section IV-B): one segment should
/// fill one map wave, so when measured scan cost or the usable worker
/// count drifts, the effective blocks-per-segment is recomputed at the
/// next segment boundary instead of staying frozen at construction.
///
/// The coordinator keeps an EWMA of per-block worker cost (alpha 1/8,
/// measured around each segment scan) and sizes the next segment as
/// `workers * target_cadence / cost`, clamped to
/// `[min_blocks_per_segment, max_blocks_per_segment]`. `workers` is the
/// current non-excluded worker count, so a slot exclusion shrinks the
/// wave and a readmission re-grows it. Every change bumps
/// `engine.segment_resizes`, moves `engine.effective_blocks_per_segment`,
/// and emits a `segment_resized` trace instant (new size in `ids.seg`,
/// old size in `ids.n`).
///
/// Disabled by default: a server with `enabled == false` scans fixed
/// segments of `blocks_per_segment` blocks, byte-identical to the
/// pre-adaptive engine.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Turn runtime resizing on.
    pub enabled: bool,
    /// Target wall-clock duration of one segment scan (one map wave).
    pub target_cadence: Duration,
    /// Lower clamp on the effective blocks-per-segment.
    pub min_blocks_per_segment: usize,
    /// Upper clamp on the effective blocks-per-segment.
    pub max_blocks_per_segment: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            target_cadence: Duration::from_millis(20),
            min_blocks_per_segment: 1,
            max_blocks_per_segment: 64,
        }
    }
}

/// Full construction parameters of a [`SharedScanServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Blocks per segment of the circular scan (the initial effective
    /// size when [`AdaptiveConfig::enabled`] is set).
    pub blocks_per_segment: usize,
    /// Scan-pool width (the reduce pool matches it).
    pub num_threads: usize,
    /// Telemetry handle; [`Obs::off`] disables all recording.
    pub obs: Obs,
    /// Fault-tolerance parameters (speculation, deadlines, exclusion).
    pub ft: FtConfig,
    /// Deterministic fault injection, for tests and the chaos fuzzer.
    pub faults: Option<FaultPlan>,
    /// Adaptive segment sizing (off by default).
    pub adaptive: AdaptiveConfig,
    /// Which scan implementation walks the blocks:
    /// [`ScanPath::Kernel`] (default) or the legacy `&str` oracle path.
    pub scan_path: ScanPath,
    /// Bind address (`"127.0.0.1:9184"`, port 0 for OS-assigned) for a
    /// Prometheus text-format metrics endpoint served for this server's
    /// lifetime. Ignored unless [`obs`](ServerConfig::obs) is on; see
    /// [`SharedScanServer::metrics_addr`] for the resolved address.
    pub metrics_addr: Option<String>,
    /// How finalization routes keys to reduce shards:
    /// [`PartitionMode::Hash`] (default, bit-compatible) or
    /// [`PartitionMode::Weighted`] (skew-aware, sketch-driven).
    pub partition: PartitionMode,
}

impl ServerConfig {
    /// The default configuration: unobserved, quarantine only (no
    /// speculation), no injected faults, fixed segment boundaries, kernel
    /// scan path.
    pub fn new(blocks_per_segment: usize, num_threads: usize) -> Self {
        ServerConfig {
            blocks_per_segment,
            num_threads,
            obs: Obs::off(),
            ft: FtConfig::default(),
            faults: None,
            adaptive: AdaptiveConfig::default(),
            scan_path: ScanPath::Kernel,
            metrics_addr: None,
            partition: PartitionMode::Hash,
        }
    }
}

struct ServerShared<J: MapReduceJob> {
    store: BlockStore,
    /// Configured blocks-per-segment: the fixed segment size, or the
    /// initial effective size when adaptive sizing is on. Segments are
    /// `[cursor, min(cursor + eff, num_blocks))` — computed from a block
    /// cursor rather than precomputed cuts, so boundaries can move at
    /// runtime.
    base_bps: usize,
    /// Adaptive segment sizing parameters.
    adaptive: AdaptiveConfig,
    /// Current effective blocks-per-segment (coordinator-written mirror
    /// for [`SharedScanServer::effective_blocks_per_segment`]).
    eff_blocks: AtomicUsize,
    /// Boundary recomputations that changed the effective segment size.
    segment_resizes: AtomicU64,
    /// Byte prefix sums: blocks `a..b` hold `byte_cuts[b] - byte_cuts[a]`
    /// bytes — per-job byte accounting without re-touching the data.
    byte_cuts: Vec<u64>,
    pending: Mutex<Vec<ActiveJob<J>>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    next_job_id: AtomicU64,
    // The three counters below are pure instrumentation: monotonic totals
    // that synchronize nothing and order nothing. Every access is
    // `Ordering::Relaxed` — readers may observe a total that is a few
    // in-flight increments stale, never a torn or decreasing one.
    /// Total block scans performed (shared scans count once).
    blocks_scanned: AtomicU64,
    /// Total segment iterations executed.
    iterations: AtomicU64,
    /// Worker threads the coordinator's pools have spawned (set once at
    /// startup; never grows, which is the point).
    pool_threads_spawned: AtomicU64,
    /// Atomic claim operations issued by segment claim cursors — the
    /// coordination cost of block scheduling. Stays 0 while every segment
    /// runs the solo-worker fast path.
    claim_ops: AtomicU64,
    /// Blocks whose winning commit came from an assisting worker.
    blocks_assisted: AtomicU64,
    /// Fault-tolerance parameters.
    ft: FtConfig,
    /// Injected faults, armed for this server's lifetime.
    faults: Option<Arc<ArmedFaults>>,
    /// Which scan implementation walks the blocks (kernel or legacy).
    scan_path: ScanPath,
    /// How finalization routes keys to reduce shards.
    partition: PartitionMode,
    /// EWMA of block-scan time (µs); drives the speculative deadline.
    ewma_block_us: AtomicU64,
    /// Consecutive deadline misses per virtual worker; reset by an
    /// in-deadline commit, drives exclusion.
    misses: Vec<AtomicU32>,
    /// Telemetry, when built via [`SharedScanServer::new_observed`].
    obs: Option<Arc<ServerObs>>,
}

/// A long-running shared-scan service over one block store.
///
/// All jobs must be of one concrete [`MapReduceJob`] type `J` (as with
/// [`crate::run_merged`], merged jobs must agree on their intermediate
/// schema). The server runs a coordinator thread that performs one merged
/// sub-job per segment iteration on a persistent pool of `num_threads`
/// scan workers, plus `num_threads` reduce workers for job finalization.
pub struct SharedScanServer<J: MapReduceJob + 'static> {
    shared: Arc<ServerShared<J>>,
    coordinator: Option<JoinHandle<()>>,
    /// Prometheus endpoint ([`ServerConfig::metrics_addr`]); stops with
    /// the server.
    exporter: Option<s3_obs::PromServer>,
}

impl<J: MapReduceJob + 'static> SharedScanServer<J> {
    /// Start a server over `store` with segments of `blocks_per_segment`
    /// blocks and `num_threads` scan workers.
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn new(store: BlockStore, blocks_per_segment: usize, num_threads: usize) -> Self {
        SharedScanServer::with_config(store, ServerConfig::new(blocks_per_segment, num_threads))
    }

    /// Start an **observed** server: every submit/admission/segment
    /// scan/reduce shard/completion records into `obs`'s metrics registry
    /// and trace recorder (see the README "Observability" section for the
    /// instrument and span catalog). Passing [`Obs::off`] is exactly
    /// [`SharedScanServer::new`].
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn new_observed(
        store: BlockStore,
        blocks_per_segment: usize,
        num_threads: usize,
        obs: &Obs,
    ) -> Self {
        let mut cfg = ServerConfig::new(blocks_per_segment, num_threads);
        cfg.obs = obs.clone();
        SharedScanServer::with_config(store, cfg)
    }

    /// Start a server from a full [`ServerConfig`] — the entry point for
    /// speculative execution ([`FtConfig::resilient`]) and deterministic
    /// fault injection ([`FaultPlan`]).
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn with_config(store: BlockStore, config: ServerConfig) -> Self {
        assert!(config.blocks_per_segment > 0, "segments need at least one block");
        assert!(config.num_threads > 0, "need at least one worker");
        if config.adaptive.enabled {
            assert!(
                config.adaptive.min_blocks_per_segment > 0,
                "adaptive segments need at least one block"
            );
            assert!(
                config.adaptive.min_blocks_per_segment <= config.adaptive.max_blocks_per_segment,
                "adaptive clamp bounds must be ordered"
            );
        }
        let num_threads = config.num_threads;
        let n = store.num_blocks();
        let mut byte_cuts = Vec::with_capacity(n + 1);
        byte_cuts.push(0u64);
        for i in 0..n {
            byte_cuts.push(byte_cuts[i] + store.block(i).len() as u64);
        }
        let eff0 = if config.adaptive.enabled {
            config.blocks_per_segment.clamp(
                config.adaptive.min_blocks_per_segment,
                config.adaptive.max_blocks_per_segment,
            )
        } else {
            config.blocks_per_segment
        };

        let shared = Arc::new(ServerShared {
            store,
            base_bps: config.blocks_per_segment,
            adaptive: config.adaptive,
            eff_blocks: AtomicUsize::new(eff0),
            segment_resizes: AtomicU64::new(0),
            byte_cuts,
            pending: Mutex::new(Vec::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job_id: AtomicU64::new(0),
            blocks_scanned: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            pool_threads_spawned: AtomicU64::new(0),
            claim_ops: AtomicU64::new(0),
            blocks_assisted: AtomicU64::new(0),
            ft: config.ft,
            faults: config.faults.as_ref().map(|p| p.arm()),
            scan_path: config.scan_path,
            partition: config.partition,
            ewma_block_us: AtomicU64::new(0),
            misses: (0..num_threads).map(|_| AtomicU32::new(0)).collect(),
            obs: ServerObs::new(&config.obs),
        });

        let coord_shared = Arc::clone(&shared);
        let coordinator = std::thread::Builder::new()
            .name("s3-scan-coordinator".into())
            .spawn(move || coordinator_loop(coord_shared, num_threads))
            .expect("spawning the coordinator thread");

        // Live introspection: serve this server's registry over HTTP for
        // as long as the server runs. A bind failure (port in use) is not
        // worth killing the server over — scans work fine unobserved.
        let exporter = match (&config.metrics_addr, config.obs.is_on()) {
            (Some(addr), true) => match s3_obs::PromServer::serve(addr, config.obs.clone()) {
                Ok(srv) => Some(srv),
                Err(e) => {
                    eprintln!("s3-engine: metrics endpoint {addr} failed to bind: {e}");
                    None
                }
            },
            _ => None,
        };

        SharedScanServer {
            shared,
            coordinator: Some(coordinator),
            exporter,
        }
    }

    /// The bound address of the Prometheus metrics endpoint, when
    /// [`ServerConfig::metrics_addr`] was set (and bound successfully) on
    /// an observed server. Resolves port 0 to the OS-assigned port.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(|e| e.local_addr())
    }

    /// Number of segments one revolution takes at the *configured*
    /// blocks-per-segment (0 for an empty store). With adaptive sizing on,
    /// the live segment count varies as boundaries move;
    /// [`SharedScanServer::iterations`] counts what actually ran.
    pub fn num_segments(&self) -> usize {
        self.shared.store.num_blocks().div_ceil(self.shared.base_bps)
    }

    /// Current effective blocks-per-segment. Equals the configured
    /// `blocks_per_segment` on a fixed-boundary server; moves within the
    /// [`AdaptiveConfig`] clamp bounds when adaptive sizing is on.
    pub fn effective_blocks_per_segment(&self) -> usize {
        self.shared.eff_blocks.load(Ordering::Relaxed)
    }

    /// Boundary recomputations that changed the effective segment size so
    /// far (always 0 on a fixed-boundary server).
    pub fn segment_resizes(&self) -> u64 {
        self.shared.segment_resizes.load(Ordering::Relaxed)
    }

    /// Total block scans performed so far (a scan shared by k jobs counts
    /// once — that is the point). Speculative re-executions are not
    /// counted either; `engine.tasks_speculated` tracks those.
    pub fn blocks_scanned(&self) -> u64 {
        self.shared.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Segment iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.shared.iterations.load(Ordering::Relaxed)
    }

    /// Atomic claim operations segment scans have issued so far — the
    /// coordination cost of block scheduling in one number. A segment
    /// scanned by a single worker takes the solo fast path and issues
    /// none, so this stays 0 for one-thread servers, one-block segments,
    /// and stores no larger than a segment (the degenerate-store tests
    /// pin exactly that).
    pub fn claim_ops(&self) -> u64 {
        self.shared.claim_ops.load(Ordering::Relaxed)
    }

    /// Blocks whose winning commit came from a work-assisting tail
    /// re-execution (0 unless [`FtConfig::resilient`] with
    /// [`assist`](FtConfig::assist) on ever had a slow tail).
    pub fn blocks_assisted(&self) -> u64 {
        self.shared.blocks_assisted.load(Ordering::Relaxed)
    }

    /// Worker threads this server's pools have spawned over the server's
    /// whole lifetime (0 until the coordinator finishes starting up).
    /// Always `2 * num_threads` — scan pool plus reduce pool — no matter
    /// how many jobs or segment iterations the server executes; the
    /// instrumentation tests assert thread creation is O(servers).
    pub fn pool_threads_spawned(&self) -> u64 {
        self.shared.pool_threads_spawned.load(Ordering::Relaxed)
    }

    /// Submit a job; it joins the scan at the next segment boundary.
    pub fn submit(&self, job: J) -> JobHandle<J::K, J::Out> {
        self.submit_all(vec![job])
            .pop()
            .expect("one job in, one handle out")
    }

    /// Submit a batch of jobs under one pending-queue lock, so the whole
    /// batch is admitted at the *same* segment boundary. Individual
    /// [`SharedScanServer::submit`] calls in a loop may split across
    /// boundaries depending on scan timing; gang submission makes
    /// admission — and therefore a faulted run's outcome — deterministic,
    /// which the chaos fuzzer's byte-identical replay relies on.
    pub fn submit_all(&self, jobs: Vec<J>) -> Vec<JobHandle<J::K, J::Out>> {
        let mut handles = Vec::with_capacity(jobs.len());
        let mut batch = Vec::with_capacity(jobs.len());
        for job in jobs {
            let state = HandleState::new();
            batch.push(self.build_active(job, Arc::clone(&state), None, None));
            handles.push(JobHandle { state });
        }
        self.shared.pending.lock().append(&mut batch);
        self.shared.wakeup.notify_all();
        if self.shared.shutdown.load(Ordering::SeqCst) {
            // The coordinator may already be gone (e.g. killed by an
            // injected fault). Fail anything it will never pick up rather
            // than letting the handles hang.
            Self::drain_pending(&self.shared);
        }
        handles
    }

    /// Submit one job whose [`HandleState`] was created by the caller —
    /// the [`crate::ScanService`] admission path. The service hands the
    /// handle to the client at enqueue time (so a queued job can be
    /// resolved without ever reaching a server), then routes the job here
    /// on dispatch with its remaining deadline and a resolve observer.
    pub(crate) fn submit_routed(&self, job: J, opts: SubmitOpts<J::K, J::Out>) {
        let SubmitOpts {
            state,
            expires_at,
            on_resolve,
        } = opts;
        let active = self.build_active(job, state, expires_at, on_resolve);
        self.shared.pending.lock().push(active);
        self.shared.wakeup.notify_all();
        if self.shared.shutdown.load(Ordering::SeqCst) {
            Self::drain_pending(&self.shared);
        }
    }

    fn build_active(
        &self,
        job: J,
        state: Arc<HandleState<J::K, J::Out>>,
        expires_at: Option<Instant>,
        on_resolve: Option<ResolveHook>,
    ) -> ActiveJob<J> {
        let id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        let submitted_us = match &self.shared.obs {
            Some(o) => {
                o.jobs_submitted.inc();
                o.tracer().instant("submit", Ids::job(id));
                o.tracer().now_us()
            }
            None => 0,
        };
        ActiveJob {
            id,
            job: Arc::new(job),
            completion: Completion::with_hook(state, on_resolve),
            failure: JobFailure::new(),
            blocks_remaining: self.shared.store.num_blocks(),
            segments_done: 0,
            blocks_seen: 0,
            bytes_seen: 0,
            submitted_us,
            admitted: false,
            expires_at,
        }
    }

    /// Stop accepting useful work and join the coordinator once all
    /// submitted jobs have resolved. Finalization tasks already queued on
    /// the reduce pool are drained before this returns, so every submitted
    /// job's handle resolves — with its output, or with the [`JobError`]
    /// that ended it. Never panics, even if the coordinator died.
    pub fn shutdown(mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            // A coordinator killed by an injected fault (or a runtime bug)
            // must not take the caller down with it; its jobs were already
            // failed with `JobError::Aborted`.
            let _ = h.join();
        }
        Self::drain_pending(&self.shared);
    }

    /// Set the shutdown flag and wake the coordinator without losing the
    /// wakeup: taking the pending lock before notifying guarantees the
    /// coordinator is either before its shutdown check (it will see the
    /// flag) or already parked in `wait` (it will receive the notify) —
    /// never in between.
    fn signal_shutdown(shared: &ServerShared<J>) {
        shared.shutdown.store(true, Ordering::SeqCst);
        let _pending = shared.pending.lock();
        shared.wakeup.notify_all();
    }

    /// Abort any jobs still sitting in the pending queue (a submit that
    /// raced coordinator death); their handles resolve to
    /// [`JobError::Aborted`] instead of hanging.
    fn drain_pending(shared: &Arc<ServerShared<J>>) {
        let orphans = std::mem::take(&mut *shared.pending.lock());
        for a in orphans {
            abort_job(a, &shared.obs);
        }
    }
}

impl<J: MapReduceJob + 'static> Drop for SharedScanServer<J> {
    fn drop(&mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            let _ = h.join();
        }
        Self::drain_pending(&self.shared);
    }
}

/// Resolve a job's handle with [`JobError::Aborted`].
fn abort_job<J: MapReduceJob>(job: ActiveJob<J>, obs: &Option<Arc<ServerObs>>) {
    job.completion.publish(Err(JobError::Aborted));
    if let Some(o) = obs {
        o.jobs_aborted.inc();
        o.tracer().instant("job_aborted", Ids::job(job.id));
    }
}

/// Coordinator exit: whatever the cause (clean shutdown, injected kill),
/// mark the server dead and resolve every job it will never finish.
fn coordinator_exit<J: MapReduceJob>(shared: &ServerShared<J>, active: Vec<ActiveJob<J>>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    for a in active {
        abort_job(a, &shared.obs);
    }
    let pending = std::mem::take(&mut *shared.pending.lock());
    for a in pending {
        abort_job(a, &shared.obs);
    }
}

fn coordinator_loop<J: MapReduceJob + 'static>(shared: Arc<ServerShared<J>>, num_threads: usize) {
    // Both pools live exactly as long as the coordinator: when this
    // function returns, their Drop impls drain any queued finalization
    // tasks before joining the workers, so shutdown never loses outputs.
    let obs_handle = shared
        .obs
        .as_ref()
        .map(|o| o.obs.clone())
        .unwrap_or_default();
    let scan_pool = WorkerPool::new_observed(num_threads, "scan", &obs_handle);
    let reduce_pool = WorkerPool::new_observed(num_threads, "reduce", &obs_handle);
    shared.pool_threads_spawned.store(
        scan_pool.threads_spawned() + reduce_pool.threads_spawned(),
        Ordering::Relaxed,
    );
    // One slot per scan worker: each worker's per-job accumulators persist
    // across every segment of a job's revolution, so there is no
    // merge-into-coordinator step at segment end. Arc'd because the
    // speculative scan path hands detached (`'static`) tasks to the pool.
    let slots: Arc<Vec<Mutex<Slot<J>>>> =
        Arc::new((0..num_threads).map(|_| Mutex::new(Vec::new())).collect());
    // Exclusion windows: `Some(iter)` means the worker sits out until that
    // global iteration (speculative mode only).
    let mut excluded_until: Vec<Option<u64>> = vec![None; num_threads];

    let n = shared.store.num_blocks();
    // Effective blocks-per-segment: fixed at `base_bps`, or re-derived at
    // segment boundaries when adaptive sizing is on (already clamped by
    // `with_config`).
    let mut eff = shared.eff_blocks.load(Ordering::Relaxed);
    // EWMA of the measured per-block worker cost (µs of one worker's time
    // per block), the paper's dynamic sub-job adjustment signal. 0.0 means
    // no measurement yet.
    let mut ewma_cost_us = 0.0f64;
    let mut cursor = 0usize; // next block to scan
    if let Some(o) = &shared.obs {
        o.eff_bps.set(eff as i64);
    }
    let mut active: Vec<ActiveJob<J>> = Vec::new();
    // Start of the previous segment scan, for the cadence histogram; reset
    // across idle periods so waiting for work never counts as a gap.
    let mut last_seg_start_us: Option<u64> = None;

    loop {
        // Admit newly submitted jobs at this segment boundary (the paper's
        // alignment: a job starts at the next segment to be processed).
        {
            let mut pending = shared.pending.lock();
            active.append(&mut pending);
            if active.is_empty() {
                if let Some(o) = &shared.obs {
                    o.active_jobs.set(0);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(pending);
                    coordinator_exit(&shared, active);
                    return;
                }
                last_seg_start_us = None;
                // Idle: park until a submission or shutdown.
                shared.wakeup.wait(&mut pending);
                active.append(&mut pending);
                continue;
            }
        }

        // Degenerate store: there is nothing to scan, so a revolution is
        // vacuously complete. Resolve each job immediately with an empty
        // output through the normal reduce path — never hang, never
        // divide by the zero segment count.
        if n == 0 {
            for mut a in active.drain(..) {
                if let Some(o) = &shared.obs {
                    let now = o.tracer().now_us();
                    a.admitted = true;
                    o.admission.record(now.saturating_sub(a.submitted_us));
                    o.tracer().instant("admit", Ids::job(a.id).jobs(0));
                }
                finish_job(&slots, &reduce_pool, a, &shared);
            }
            continue;
        }

        let iter = shared.iterations.load(Ordering::Relaxed);
        // Injected coordinator death: the worst case quarantine cannot
        // contain. Every unresolved job aborts; no handle hangs.
        if let Some(f) = &shared.faults {
            if f.kills_coordinator(iter) {
                if let Some(o) = &shared.obs {
                    o.tracer().instant("coordinator_killed", Ids::none().jobs(iter));
                }
                coordinator_exit(&shared, std::mem::take(&mut active));
                return;
            }
        }
        if shared.ft.speculation {
            refresh_exclusions(&shared, iter, &mut excluded_until);
        }

        // Deadline sweep: a job whose deadline passed is removed from the
        // scan at this segment boundary — per-worker partial state purged
        // like a quarantine — and its handle resolves to the sticky
        // `DeadlineExpired`. Checked before the segment scan so an
        // expired job never pays for (or slows) another wave.
        if active.iter().any(|a| a.expires_at.is_some()) {
            let now = Instant::now();
            let mut i = 0;
            while i < active.len() {
                if active[i].expires_at.is_some_and(|t| t <= now) {
                    let expired = active.swap_remove(i);
                    for slot in slots.iter() {
                        slot.lock().retain(|(id, _)| *id != expired.id);
                    }
                    if let Some(o) = &shared.obs {
                        o.jobs_expired.inc();
                        o.tracer().instant("job_expired", Ids::job(expired.id));
                    }
                    expired.completion.publish(Err(JobError::DeadlineExpired));
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                continue;
            }
        }

        // One iteration of Algorithm 1: merged sub-job over the cursor's
        // segment for every active job.
        let seg_t0 = shared.obs.as_ref().map(|o| {
            let now = o.tracer().now_us();
            if let Some(prev) = last_seg_start_us {
                o.cadence.record(now.saturating_sub(prev));
            }
            last_seg_start_us = Some(now);
            // Admission: the job's revolution starts with this segment.
            for a in active.iter_mut().filter(|a| !a.admitted) {
                a.admitted = true;
                o.admission.record(now.saturating_sub(a.submitted_us));
                o.tracer().instant("admit", Ids::job(a.id).jobs(cursor as u64));
            }
            o.active_jobs.set(active.len() as i64);
            now
        });
        // This iteration's segment: `eff` blocks from the cursor, clipped
        // at the end of the file (the wrap happens at the next boundary,
        // so a segment is always one contiguous block range).
        let (start, end) = (cursor, (cursor + eff).min(n));
        let seg_len = end - start;
        // Per-job scan limit: a job admitted mid-revolution may need fewer
        // blocks than the segment holds once boundaries have moved — its
        // unseen region is always the contiguous run starting at `start`,
        // so capping at `start + min(seg_len, blocks_remaining)` scans
        // each of its blocks exactly once and never re-scans past its
        // admission point.
        let limits: Vec<usize> = active
            .iter()
            .map(|a| start + a.blocks_remaining.min(seg_len))
            .collect();
        // Workers this wave can actually use, for the cost model below.
        let avail_workers = if shared.ft.speculation {
            excluded_until.iter().filter(|e| e.is_none()).count().max(1)
        } else {
            num_threads
        };
        let scan_t0 = Instant::now();
        let claims = if shared.ft.speculation {
            scan_segment_resilient(
                &shared,
                &active,
                &slots,
                start,
                end,
                &limits,
                &scan_pool,
                iter,
                &excluded_until,
            )
        } else {
            scan_segment(&shared, &active, &slots, start, end, &limits, &scan_pool, iter)
        };
        let scan_elapsed_us = scan_t0.elapsed().as_micros() as u64;
        let seg_blocks = seg_len as u64;
        let seg_bytes = shared.byte_cuts[end] - shared.byte_cuts[start];
        shared.blocks_scanned.fetch_add(seg_blocks, Ordering::Relaxed);
        shared.iterations.fetch_add(1, Ordering::Relaxed);
        shared.claim_ops.fetch_add(claims.claim_ops, Ordering::Relaxed);
        if let (Some(o), Some(t0)) = (&shared.obs, seg_t0) {
            // Segment spans carry their block range — start in `ids.seg`,
            // length in `ids.n` — so the trace invariants can prove the
            // (possibly resized) boundaries still partition the file.
            o.tracer()
                .span("segment", t0, Ids::seg(start as u64).jobs(seg_len as u64));
            // Claim-protocol accounting for the same segment: block-range
            // start in `ids.job`, blocks claimed in `ids.seg`, blocks
            // completed in `ids.n`. `check_engine_events` pairs each
            // segment span with this instant to prove every block was
            // claimed and completed exactly once.
            o.tracer().instant(
                "segment_claims",
                Ids {
                    job: start as u64,
                    seg: claims.claimed,
                    n: claims.completed,
                        ..Ids::none()
                },
            );
            o.seg_scan.record(o.tracer().now_us().saturating_sub(t0));
            o.segments.inc();
            o.blocks.add(seg_blocks);
            o.bytes.add(seg_bytes);
            let assisted = shared.blocks_assisted.load(Ordering::Relaxed);
            let scanned = shared.blocks_scanned.load(Ordering::Relaxed).max(1);
            o.assist_ratio.set((assisted.saturating_mul(10_000) / scanned) as i64);
        }
        for (a, &limit) in active.iter_mut().zip(&limits) {
            let take = limit - start;
            a.blocks_remaining -= take;
            a.blocks_seen += take as u64;
            a.bytes_seen += shared.byte_cuts[limit] - shared.byte_cuts[start];
        }
        cursor = end % n;

        // Dynamic sub-job adjustment (paper Section IV-B), live: fold this
        // segment's measured cost into the EWMA and re-derive the segment
        // size that makes one segment fill one `target_cadence` map wave
        // on the workers currently available.
        if shared.adaptive.enabled {
            let used_workers = avail_workers.min(seg_len).max(1);
            let cost = (scan_elapsed_us.max(1) as f64) * used_workers as f64 / seg_len as f64;
            ewma_cost_us = if ewma_cost_us <= 0.0 {
                cost
            } else {
                (ewma_cost_us * 7.0 + cost) / 8.0
            };
            let new = next_segment_size(eff, ewma_cost_us, avail_workers, &shared.adaptive);
            if new != eff {
                let old = eff;
                eff = new;
                shared.eff_blocks.store(new, Ordering::Relaxed);
                shared.segment_resizes.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &shared.obs {
                    o.segment_resizes.inc();
                    o.eff_bps.set(new as i64);
                    // New size in `ids.seg`, old size in `ids.n`.
                    o.tracer()
                        .instant("segment_resized", Ids::seg(new as u64).jobs(old as u64));
                }
            }
        }

        // Quarantine sweep: jobs whose own code panicked this segment fail
        // individually — partial state purged, handle resolved with the
        // panic message — while everyone else keeps scanning.
        let mut i = 0;
        while i < active.len() {
            if active[i].failure.failed() {
                let failed = active.swap_remove(i);
                for slot in slots.iter() {
                    slot.lock().retain(|(id, _)| *id != failed.id);
                }
                if let Some(o) = &shared.obs {
                    o.jobs_quarantined.inc();
                    o.tracer().instant("quarantine", Ids::job(failed.id));
                }
                failed
                    .completion
                    .publish(Err(JobError::Panicked(failed.failure.message())));
            } else {
                i += 1;
            }
        }

        // Jobs that completed a full revolution: hand their accumulated
        // state to the reduce pool and keep scanning without waiting.
        // (`blocks_remaining` was decremented above, before the quarantine
        // sweep could reorder `active` relative to `limits`.)
        let mut i = 0;
        while i < active.len() {
            active[i].segments_done += 1;
            if active[i].blocks_remaining == 0 {
                let finished = active.swap_remove(i);
                finish_job(&slots, &reduce_pool, finished, &shared);
            } else {
                i += 1;
            }
        }
    }
}

/// The adaptive sizing policy, pure so the clamp/shrink/re-grow behavior
/// can be unit-tested without a live server: the segment size that makes
/// one segment scan take [`AdaptiveConfig::target_cadence`] given the
/// EWMA per-block worker cost and the workers available, clamped to the
/// configured bounds. With no measurement yet the current size is kept
/// (clamped).
fn next_segment_size(
    current: usize,
    ewma_cost_us: f64,
    workers: usize,
    cfg: &AdaptiveConfig,
) -> usize {
    let lo = cfg.min_blocks_per_segment;
    let hi = cfg.max_blocks_per_segment;
    if ewma_cost_us <= 0.0 || workers == 0 {
        return current.clamp(lo, hi);
    }
    let target_us = cfg.target_cadence.as_micros() as f64;
    let ideal = (workers as f64 * target_us / ewma_cost_us).round();
    (ideal.max(1.0) as usize).clamp(lo, hi)
}

/// Readmit workers whose exclusion window expired; exclude workers whose
/// consecutive deadline misses crossed the threshold. Never excludes the
/// last active worker — the scan must always be able to make progress.
fn refresh_exclusions<J: MapReduceJob>(
    shared: &ServerShared<J>,
    iter: u64,
    excluded_until: &mut [Option<u64>],
) {
    for (wi, window) in excluded_until.iter_mut().enumerate() {
        if let Some(until) = *window {
            if iter >= until {
                *window = None;
                shared.misses[wi].store(0, Ordering::Relaxed);
                if let Some(o) = &shared.obs {
                    o.excluded_workers.add(-1);
                    o.tracer().instant("slot_readmitted", Ids::none().jobs(wi as u64));
                }
            }
        }
    }
    let mut active_workers = excluded_until.iter().filter(|e| e.is_none()).count();
    for (wi, window) in excluded_until.iter_mut().enumerate() {
        if active_workers <= 1 {
            break;
        }
        if window.is_none()
            && shared.misses[wi].load(Ordering::Relaxed) >= shared.ft.exclusion_threshold
        {
            *window = Some(iter + shared.ft.exclusion_window_iters);
            active_workers -= 1;
            if let Some(o) = &shared.obs {
                o.workers_excluded.inc();
                o.excluded_workers.add(1);
                o.tracer().instant("slot_excluded", Ids::none().jobs(wi as u64));
            }
        }
    }
}

/// Claim accounting of one segment scan, reported by both scan paths:
/// blocks claimed and completed (for the `segment_claims` trace instant
/// the exactly-once invariant checks) and the raw atomic claim operations
/// issued (for [`SharedScanServer::claim_ops`] — 0 on the solo fast path).
struct SegClaims {
    claimed: u64,
    completed: u64,
    claim_ops: u64,
}

/// Scan one segment once, running every active job's map over each block
/// on the persistent scan pool (the cooperative path: a shared
/// [`WorkProgress`] claim cursor, no retry). Jobs declaring
/// [`map_is_per_token`](MapReduceJob::map_is_per_token) share one
/// tokenization of each block. Each job's work on each block runs under
/// `catch_unwind`, so a panicking map marks **that job** failed and the
/// scan continues for the rest. `limits[pos]` is the first block index
/// job `pos` must *not* see (its revolution ends inside this segment).
#[allow(clippy::too_many_arguments)]
fn scan_segment<J: MapReduceJob + 'static>(
    shared: &ServerShared<J>,
    active: &[ActiveJob<J>],
    slots: &[Mutex<Slot<J>>],
    start: usize,
    end: usize,
    limits: &[usize],
    pool: &WorkerPool,
    iter: u64,
) -> SegClaims {
    if active.is_empty() || start == end {
        return SegClaims { claimed: 0, completed: 0, claim_ops: 0 };
    }
    let nblocks = end - start;
    let store = &shared.store;
    let faults = shared.faults.as_deref();
    // A one-block segment runs inline on the coordinator (fan_out 1 —
    // zero cross-thread handoff); wider segments fan out over the pool.
    let fan_out = pool.num_threads().min(nblocks);
    // A lone worker scans from a private cursor — the shared progress word
    // is only touched when siblings actually race for blocks, so the solo
    // fast path takes zero claim coordination.
    let solo = fan_out == 1;
    let progress = WorkProgress::new(nblocks);

    pool.broadcast(fan_out, &|wi| {
        let mut claims = if solo {
            BlockClaims::solo(nblocks)
        } else {
            BlockClaims::shared(&progress)
        };
        let mut slot = slots[wi].lock();
        // Index of each active job's partial in this worker's slot,
        // creating partials for jobs this worker has not seen yet.
        let idxs: Vec<usize> = active
            .iter()
            .map(|a| {
                if let Some(p) = slot.iter().position(|(id, _)| *id == a.id) {
                    p
                } else {
                    slot.push((
                        a.id,
                        JobPartial {
                            emitted: 0,
                            acc: JobAcc::for_job(&*a.job, shared.scan_path),
                        },
                    ));
                    slot.len() - 1
                }
            })
            .collect();
        let mut tokens: Vec<&[u8]> = Vec::new();
        while let Some(li) = claims.claim() {
            let idx = start + li;
            if let Some(f) = faults {
                let d = f.map_delay_us(wi, iter);
                if d > 0 {
                    std::thread::sleep(Duration::from_micros(d));
                }
            }
            let block = store.block(idx);
            tokens.clear();
            let mut tokenized = false;
            for (pos, a) in active.iter().enumerate() {
                // Past this job's per-segment limit: the block belongs to
                // the segment but not to this job's revolution.
                if idx >= limits[pos] {
                    continue;
                }
                if a.failure.failed() {
                    continue;
                }
                let job = &*a.job;
                let JobPartial { emitted, acc } = &mut slot[idxs[pos]].1;
                // Quarantine granularity: one (job, block) unit. A panic
                // may leave this job's partial half-updated for the block;
                // that is fine — a failed job's state is purged, never
                // published.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(f) = faults {
                        if f.panics_map(a.id, a.segments_done) {
                            panic!("injected map panic (job {})", a.id);
                        }
                    }
                    scan_block_for_job(
                        job,
                        shared.scan_path,
                        block,
                        &mut tokens,
                        &mut tokenized,
                        emitted,
                        acc,
                    );
                }));
                if let Err(p) = result {
                    a.failure.record(p);
                }
            }
            if !solo {
                progress.complete();
            }
        }
    });
    if solo {
        // The lone worker provably covered every block; report the full
        // count without ever having touched the shared word.
        SegClaims {
            claimed: nblocks as u64,
            completed: nblocks as u64,
            claim_ops: 0,
        }
    } else {
        SegClaims {
            claimed: progress.claimed(),
            completed: progress.completed(),
            claim_ops: progress.claim_attempts(),
        }
    }
}

/// Per-block commit state for the resilient path. `claim` records the
/// most recent claim for recovery accounting: 0 = not yet claimed,
/// otherwise `((worker + 1) << 48) | timestamp_µs` — an assisting worker
/// reads the victim and the claim's age from the one word. `committed` is
/// the first-result-wins commit flag: exactly one `swap(true)` ever
/// returns `false`, so each block's results enter the accumulators
/// exactly once no matter how many workers re-executed it.
struct BlockTask {
    claim: AtomicU64,
    committed: AtomicBool,
}

const TS_MASK: u64 = (1 << 48) - 1;

/// Pack a claim word: owner in the high bits (`+1` so the word is never 0,
/// which means "not yet claimed"), timestamp in the low 48.
fn claim_word(wi: usize, now_us: u64) -> u64 {
    ((wi as u64 + 1) << 48) | (now_us & TS_MASK)
}

/// One job's snapshot inside a speculative segment run.
struct SegJob<J: MapReduceJob> {
    id: u64,
    job: Arc<J>,
    failure: Arc<JobFailure>,
    segments_done: u64,
    /// First block index this job must *not* see (its revolution ends
    /// inside this segment).
    limit: usize,
}

/// Everything a resilient segment's detached worker tasks share.
struct SegmentRun<J: MapReduceJob> {
    shared: Arc<ServerShared<J>>,
    slots: Arc<Vec<Mutex<Slot<J>>>>,
    jobs: Vec<SegJob<J>>,
    /// Packed (claim cursor, completed count): fresh claims come off this
    /// word with one `fetch_add` each, and the worker whose commit
    /// completes the segment observes `all_done` here and owns the
    /// end-of-segment notification.
    progress: WorkProgress,
    tasks: Vec<BlockTask>,
    /// First block index of the segment.
    start: usize,
    iter: u64,
    /// Claim-expiry deadline (µs). Atomic because workers refresh it from
    /// the block-time EWMA as commits land — on the very first segment the
    /// EWMA starts empty and the deadline opens at `deadline_floor`, so
    /// without the refresh a revolution-one straggler would be judged
    /// against the floor alone (the cold-start bug); the first committed
    /// block tightens it to `max(floor, ewma * slack)` for every claim
    /// check that follows. With assist on the deadline no longer gates
    /// tail re-execution — it only drives the miss accounting that feeds
    /// worker exclusion.
    deadline_us: AtomicU64,
    epoch: Instant,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// How a worker came to execute a block, for the commit-side accounting.
enum BlockAttempt {
    /// Claimed fresh off the segment's cursor.
    Fresh,
    /// Re-executed from the uncommitted tail (work-assist or legacy
    /// deadline speculation); carries the claim word being raced.
    Reexec(u64),
}

impl<J: MapReduceJob> SegmentRun<J> {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Pick an uncommitted tail block for an idle worker to re-execute, or
    /// `None` if nothing is eligible right now.
    ///
    /// Work-assisting mode (`ft.assist`): any claimed, uncommitted block
    /// qualifies immediately — the idle worker races the original owner,
    /// first result wins. The deadline is still consulted, but only for
    /// the exclusion policy: an expired claim marks its owner slow (once
    /// per expiry, via a CAS restamp of the claim word).
    ///
    /// Legacy mode (`assist` off): only claims past the deadline qualify —
    /// the paper's slot-checking recovery, per block — and the CAS restamp
    /// doubles as the race guard, so each expiry is speculated once.
    fn next_tail_block(&self, wi: usize, hint: usize, assist: bool) -> Option<(usize, u64)> {
        let n = self.tasks.len();
        let deadline_us = self.deadline_us.load(Ordering::Relaxed);
        for off in 0..n {
            let ti = (hint + off) % n;
            let t = &self.tasks[ti];
            if t.committed.load(Ordering::Acquire) {
                continue;
            }
            let claim = t.claim.load(Ordering::Acquire);
            if claim == 0 {
                // Claimed off the cursor but the claim word is not stored
                // yet — the owner is demonstrably live; re-check later.
                continue;
            }
            let now = self.now_us();
            let expired = now.saturating_sub(claim & TS_MASK) > deadline_us;
            if !assist && !expired {
                continue;
            }
            let restamped = if expired {
                // One miss per expiry window: whoever restamps the claim
                // word charges the victim; concurrent racers skip.
                t.claim
                    .compare_exchange(claim, claim_word(wi, now), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            } else {
                false
            };
            if !assist && !restamped {
                continue; // legacy path: the restamp *is* the claim
            }
            let victim = ((claim >> 48) as usize - 1).min(self.shared.misses.len() - 1);
            if restamped {
                self.shared.misses[victim].fetch_add(1, Ordering::Relaxed);
            }
            if let Some(o) = &self.shared.obs {
                o.tasks_speculated.inc();
                o.tracer().instant(
                    if assist { "assist" } else { "speculate" },
                    Ids::seg((self.start + ti) as u64).jobs(victim as u64),
                );
            }
            return Some((ti, claim));
        }
        None
    }
}

/// Scan one segment with retryable per-block tasks: claim → process →
/// first-result-wins commit. Fresh claims come off one packed
/// [`WorkProgress`] word; workers that drain it **assist** the slow tail
/// immediately ([`FtConfig::assist`]) or fall back to deadline-based
/// speculation. The coordinator waits for every block to **commit**, not
/// for every worker to return — a stalled worker never wedges the segment
/// cadence; its blocks get re-executed and it exits on its own once it
/// notices the segment is done.
#[allow(clippy::too_many_arguments)]
fn scan_segment_resilient<J: MapReduceJob + 'static>(
    shared: &Arc<ServerShared<J>>,
    active: &[ActiveJob<J>],
    slots: &Arc<Vec<Mutex<Slot<J>>>>,
    start: usize,
    end: usize,
    limits: &[usize],
    pool: &WorkerPool,
    iter: u64,
    excluded_until: &[Option<u64>],
) -> SegClaims {
    if active.is_empty() || start == end {
        return SegClaims { claimed: 0, completed: 0, claim_ops: 0 };
    }
    let nblocks = end - start;
    let ewma = shared.ewma_block_us.load(Ordering::Relaxed);
    let floor = shared.ft.deadline_floor.as_micros() as u64;
    let deadline_us = if ewma == 0 {
        floor
    } else {
        floor.max((ewma as f64 * shared.ft.deadline_slack) as u64)
    };
    let run = Arc::new(SegmentRun {
        shared: Arc::clone(shared),
        slots: Arc::clone(slots),
        jobs: active
            .iter()
            .zip(limits)
            .map(|(a, &limit)| SegJob {
                id: a.id,
                job: Arc::clone(&a.job),
                failure: Arc::clone(&a.failure),
                segments_done: a.segments_done,
                limit,
            })
            .collect(),
        progress: WorkProgress::new(nblocks),
        tasks: (0..nblocks)
            .map(|_| BlockTask {
                claim: AtomicU64::new(0),
                committed: AtomicBool::new(false),
            })
            .collect(),
        start,
        iter,
        deadline_us: AtomicU64::new(deadline_us),
        epoch: Instant::now(),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    // Excluded workers sit this segment out entirely; `refresh_exclusions`
    // guarantees at least one worker stays in.
    let workers: Vec<usize> = (0..pool.num_threads())
        .filter(|&wi| excluded_until[wi].is_none())
        .take(nblocks)
        .collect();
    debug_assert!(!workers.is_empty());
    for &wi in &workers {
        let run = Arc::clone(&run);
        pool.execute(move || seg_worker(run, wi));
    }
    let mut done = run.done.lock();
    while !*done {
        run.done_cv.wait(&mut done);
    }
    drop(done);
    // Every block committed exactly once: claimed is provably `nblocks`
    // (the cursor was drained) and completed counts one winning commit per
    // block. `claim_attempts` additionally carries the bounded overshoot
    // of workers discovering the cursor was dry.
    SegClaims {
        claimed: run.progress.claimed(),
        completed: run.progress.completed(),
        claim_ops: run.progress.claim_attempts(),
    }
}

/// One virtual worker of a resilient segment run: drain fresh claims off
/// the shared cursor, then work-assist (or deadline-speculate on) the
/// uncommitted tail until the segment is done.
fn seg_worker<J: MapReduceJob + 'static>(run: Arc<SegmentRun<J>>, wi: usize) {
    // Phase A — fresh claims: one fetch_add per block, no CAS loops.
    while let Some(ti) = run.progress.claim() {
        // Armed map panics fire here, synchronous with the claim, not
        // inside `process_block`: with work-assisting duplicates in
        // flight, an in-map check could be consumed by a *losing*
        // execution that records the failure only after the segment's
        // last commit, letting the doomed job's publish race its
        // quarantine. A claim strictly precedes every execution of its
        // block, so the failure is always recorded before the segment can
        // report done.
        fire_armed_map_panics(&run);
        run.tasks[ti]
            .claim
            .store(claim_word(wi, run.now_us()), Ordering::Release);
        execute_block(&run, wi, ti, BlockAttempt::Fresh);
    }
    // Phase B — the cursor is dry; only a claimed-but-uncommitted tail can
    // remain. Assist it immediately, or (legacy mode) wait for deadlines
    // to expire. Every pass either executes a real block or parks on the
    // done condvar, so this never busy-spins.
    let assist = run.shared.ft.assist;
    let mut hint = wi;
    loop {
        if run.progress.is_done() {
            break;
        }
        match run.next_tail_block(wi, hint, assist) {
            Some((ti, claim)) => {
                hint = ti + 1;
                execute_block(&run, wi, ti, BlockAttempt::Reexec(claim));
            }
            None => {
                // Nothing eligible right now: the in-flight owners are
                // live (or, legacy mode, not yet past deadline) — wait a
                // beat and re-check. Recomputed each pass because commits
                // tighten the deadline as the EWMA warms up.
                let wait_step = Duration::from_micros(
                    (run.deadline_us.load(Ordering::Relaxed) / 4).clamp(200, 2_000),
                );
                let mut done = run.done.lock();
                if *done {
                    break;
                }
                run.done_cv.wait_for(&mut done, wait_step);
            }
        }
    }
}

/// Fire any injected map panics that are armed for this segment. The
/// panic is raised and caught right here so the recorded payload is the
/// same `"injected map panic (job N)"` unwind the cooperative path
/// produces from inside the map closure.
fn fire_armed_map_panics<J: MapReduceJob + 'static>(run: &SegmentRun<J>) {
    let Some(f) = &run.shared.faults else { return };
    for sj in &run.jobs {
        if !sj.failure.failed() && f.panics_map(sj.id, sj.segments_done) {
            let payload = catch_unwind(AssertUnwindSafe(|| -> () {
                panic!("injected map panic (job {})", sj.id)
            }))
            .unwrap_err();
            sj.failure.record(payload);
        }
    }
}

/// Execute one block attempt end to end: injected delay, map, injected
/// drop, first-result-wins commit, accumulator merge, EWMA/deadline
/// refresh, and the win-side accounting for assists and speculation.
fn execute_block<J: MapReduceJob + 'static>(
    run: &Arc<SegmentRun<J>>,
    wi: usize,
    ti: usize,
    attempt: BlockAttempt,
) {
    if let Some(f) = &run.shared.faults {
        let d = f.map_delay_us(wi, run.iter);
        if d > 0 {
            std::thread::sleep(Duration::from_micros(d));
        }
    }
    let t_start = run.now_us();
    let locals = process_block(run, run.start + ti);
    // An armed drop only fires on a *fresh claim* — "the first block the
    // worker claims" means off the cursor. A re-execution consuming the
    // one-shot would neutralize it (its result is racing an intact owner
    // anyway), leaving nothing for the recovery path to prove.
    if matches!(attempt, BlockAttempt::Fresh) {
        if let Some(f) = &run.shared.faults {
            if f.drops_task(wi, run.iter) {
                // A lost task: the work happened but is never committed.
                // The tail loop — another worker's, or this one's on a
                // later pass — recovers the block; with assist on it does
                // so without waiting out a deadline. Recovery works even
                // with a single worker.
                return;
            }
        }
    }
    // First-result-wins, idempotent commit: exactly one swap ever returns
    // false, so each block's results enter the accumulators exactly once
    // however many workers raced to re-execute it.
    if run.tasks[ti].committed.swap(true, Ordering::AcqRel) {
        return; // someone else's result landed first; discard ours
    }
    merge_locals(run, wi, locals);
    let now = run.now_us();
    let elapsed = now.saturating_sub(t_start);
    let prev = run.shared.ewma_block_us.load(Ordering::Relaxed);
    let next = if prev == 0 { elapsed.max(1) } else { (prev * 7 + elapsed) / 8 };
    run.shared.ewma_block_us.store(next.max(1), Ordering::Relaxed);
    // Refresh the segment's deadline from the updated EWMA. On the first
    // revolution this is what seeds the deadline at all: the segment
    // opened at the bare floor (EWMA empty), so the first commit
    // immediately makes stragglers detectable instead of leaving the
    // whole segment on the cold-start floor.
    let floor = run.shared.ft.deadline_floor.as_micros() as u64;
    run.deadline_us.store(
        floor.max((next.max(1) as f64 * run.shared.ft.deadline_slack) as u64),
        Ordering::Relaxed,
    );
    match attempt {
        BlockAttempt::Reexec(claim) => {
            if run.shared.ft.assist {
                run.shared.blocks_assisted.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(o) = &run.shared.obs {
                o.speculation_wins.inc();
                if run.shared.ft.assist {
                    o.blocks_assisted.inc();
                }
                let recovered_us = now.saturating_sub(claim & TS_MASK);
                o.recovery_us.record(recovered_us);
                // Recovered block in `ids.seg`, recovery latency in
                // `ids.n`: the journal sums these inside each job's scan
                // window to attribute re-execution latency per job.
                o.tracer().instant(
                    "recovered",
                    Ids::seg((run.start + ti) as u64).jobs(recovered_us),
                );
            }
        }
        BlockAttempt::Fresh => {
            if elapsed <= run.deadline_us.load(Ordering::Relaxed) {
                // An in-deadline commit clears the worker's miss streak.
                run.shared.misses[wi].store(0, Ordering::Relaxed);
            }
        }
    }
    let (_, all_done) = run.progress.complete();
    if all_done {
        let mut done = run.done.lock();
        *done = true;
        run.done_cv.notify_all();
    }
}

/// Run every (non-failed) job's map over one block into block-local
/// accumulators. Per-(job, block) `catch_unwind`, same as the cooperative
/// path. Returns one partial per job (`None` = job already failed, or
/// failed here).
fn process_block<J: MapReduceJob + 'static>(
    run: &SegmentRun<J>,
    block_idx: usize,
) -> Vec<Option<JobPartial<J>>> {
    let block = run.shared.store.block(block_idx);
    let mut tokens: Vec<&[u8]> = Vec::new();
    let mut tokenized = false;
    let mut out = Vec::with_capacity(run.jobs.len());
    for sj in &run.jobs {
        // Past this job's per-segment limit: the block belongs to the
        // segment but not to this job's revolution.
        if block_idx >= sj.limit {
            out.push(None);
            continue;
        }
        if sj.failure.failed() {
            out.push(None);
            continue;
        }
        let job = &*sj.job;
        let mut partial = JobPartial {
            emitted: 0,
            acc: JobAcc::for_job(job, run.shared.scan_path),
        };
        let result = {
            let partial = &mut partial;
            catch_unwind(AssertUnwindSafe(|| {
                scan_block_for_job(
                    job,
                    run.shared.scan_path,
                    block,
                    &mut tokens,
                    &mut tokenized,
                    &mut partial.emitted,
                    &mut partial.acc,
                );
            }))
        };
        match result {
            Ok(()) => out.push(Some(partial)),
            Err(p) => {
                sj.failure.record(p);
                out.push(None);
            }
        }
    }
    out
}

/// Fold a committed block's local accumulators into the worker's
/// persistent slot. Runs user `combine_fold`, so it is caught per job too.
fn merge_locals<J: MapReduceJob + 'static>(
    run: &SegmentRun<J>,
    wi: usize,
    locals: Vec<Option<JobPartial<J>>>,
) {
    let mut slot = run.slots[wi].lock();
    for (sj, local) in run.jobs.iter().zip(locals) {
        let Some(local) = local else { continue };
        if sj.failure.failed() {
            continue;
        }
        let p = match slot.iter().position(|(id, _)| *id == sj.id) {
            Some(p) => p,
            None => {
                slot.push((
                    sj.id,
                    JobPartial {
                        emitted: 0,
                        acc: JobAcc::for_job(&*sj.job, run.shared.scan_path),
                    },
                ));
                slot.len() - 1
            }
        };
        let entry = &mut slot[p].1;
        entry.emitted += local.emitted;
        let result = catch_unwind(AssertUnwindSafe(|| entry.acc.merge(&*sj.job, local.acc)));
        if let Err(p) = result {
            sj.failure.record(p);
        }
    }
}

/// Finalization context shared by one finished job's reduce-pool tasks.
struct FinishCtx<J: MapReduceJob> {
    job: Arc<J>,
    job_id: u64,
    submitted_us: u64,
    completion: Completion<J::K, J::Out>,
    failure: Arc<JobFailure>,
    faults: Option<Arc<ArmedFaults>>,
    /// Weighted routing plan, merged from the workers' key sketches at
    /// finish time. `None` runs the hash path.
    plan: Option<PartitionPlan>,
    state: Mutex<FinishState<J>>,
    remaining: AtomicUsize,
    stats: ScanStats,
    obs: Option<Arc<ServerObs>>,
}

/// One shard's reduced output: unordered (key, output) pairs.
type ReducedPart<J> = Vec<(<J as MapReduceJob>::K, <J as MapReduceJob>::Out)>;

struct FinishState<J: MapReduceJob> {
    sharded: bool,
    /// Per-worker accumulators, as collected by the coordinator.
    partials: Vec<JobAcc<J>>,
    /// Key-hash shards, built lazily by the first shard task to run.
    buckets: Vec<Option<JobAcc<J>>>,
    /// Reduce-input records routed into each shard, filled at split time.
    bin_records: Vec<u64>,
    /// Reduced output of each shard.
    parts: Vec<Option<ReducedPart<J>>>,
}

/// Collect the finished job's worker partials (cheap: map moves, no record
/// touches) and queue its combine+reduce on the reduce pool, sharded by
/// key hash. The coordinator returns to scanning immediately; the last
/// shard task to finish publishes the result and wakes the handle.
fn finish_job<J: MapReduceJob + 'static>(
    slots: &[Mutex<Slot<J>>],
    reduce_pool: &WorkerPool,
    job: ActiveJob<J>,
    shared: &Arc<ServerShared<J>>,
) {
    let mut partials: Vec<JobAcc<J>> = Vec::new();
    let mut map_output_records = 0u64;
    let mut distinct_fold_keys = 0u64;
    let mut folded = false;
    for slot in slots {
        let mut slot = slot.lock();
        if let Some(p) = slot.iter().position(|(id, _)| *id == job.id) {
            let (_, partial) = slot.swap_remove(p);
            map_output_records += partial.emitted;
            match &partial.acc {
                JobAcc::Fold(m) => {
                    distinct_fold_keys += m.len() as u64;
                    folded = true;
                }
                JobAcc::Tok(m) => {
                    distinct_fold_keys += m.len() as u64;
                    folded = true;
                }
                JobAcc::Buf(_) => {}
            }
            partials.push(partial.acc);
        }
    }
    let obs = shared.obs.clone();
    if let Some(o) = &obs {
        o.map_records.add(map_output_records);
        if folded {
            // A fold combiner collapses every repeat of a key into the
            // worker's single accumulator, so hits are simply the emitted
            // records the accumulators absorbed: emitted − distinct keys.
            // Counted here, post hoc, for zero cost on the map hot path.
            o.fold_hits
                .add(map_output_records.saturating_sub(distinct_fold_keys));
        }
    }

    // A zero-thread reduce pool degenerates to one shard; never a
    // div-by-zero mid-reduce.
    let nshards = reduce_pool.num_threads().max(1);

    // Weighted mode: sketch each worker accumulator's combiner-output key
    // distribution (weight = reduce-input records it will contribute),
    // merge the per-worker sketches, and build the routing plan. The plan's
    // estimates sum exactly to the records the split will route, which is
    // the `partition_plan`/`reduce_shard` trace invariant.
    let plan = shared.partition.is_weighted().then(|| {
        let mut merged = KeySketch::new().finish();
        for acc in &partials {
            let mut s = KeySketch::new();
            match acc {
                JobAcc::Fold(m) => {
                    for k in m.keys() {
                        s.observe(key_hash(k), 1);
                    }
                }
                // Hash the *materialized* key — `token_key` may collapse
                // distinct tokens — so the sketch agrees with the split.
                JobAcc::Tok(m) => m.for_each(|tok, _| {
                    s.observe(key_hash(&job.job.token_key(tok)), 1);
                }),
                JobAcc::Buf(m) => {
                    for (k, vs) in m {
                        s.observe(key_hash(k), vs.len() as u64);
                    }
                }
            }
            merged.merge(s.finish());
        }
        let p = PartitionPlan::build(&merged, nshards, shared.partition.split_factor_x1000());
        debug_assert_eq!(p.estimates().iter().sum::<u64>(), merged.total());
        p
    });
    if let (Some(o), Some(p)) = (&obs, &plan) {
        // One instant per bin: shard index in its id field, estimated
        // weight in `n`. check_engine_events sums these against the
        // `reduce_shard` record counts.
        for (b, &w) in p.estimates().iter().enumerate() {
            o.tracer()
                .instant("partition_plan", Ids::job(job.id).shard(b as u64).jobs(w));
        }
    }
    let nbins = plan.as_ref().map_or(nshards, PartitionPlan::nbins);

    let ctx = Arc::new(FinishCtx {
        job: job.job,
        job_id: job.id,
        submitted_us: job.submitted_us,
        completion: job.completion,
        failure: job.failure,
        faults: shared.faults.clone(),
        plan,
        state: Mutex::new(FinishState {
            sharded: false,
            partials,
            buckets: (0..nbins).map(|_| None).collect(),
            bin_records: vec![0; nbins],
            parts: (0..nbins).map(|_| None).collect(),
        }),
        remaining: AtomicUsize::new(nbins),
        stats: ScanStats {
            blocks_scanned: job.blocks_seen,
            bytes_scanned: job.bytes_seen,
            map_output_records,
            reduce_output_records: 0, // filled at publish
        },
        obs,
    });
    // Split bins past the pool width simply queue: the reduce pool drains
    // bins in submission order, so extras land on whichever worker frees
    // up first — exactly the idle-worker spreading the split is for.
    for s in 0..nbins {
        let ctx = Arc::clone(&ctx);
        reduce_pool.execute(move || run_finish_shard(ctx, s, nbins));
    }
}

/// The combine+reduce work of one finalization shard, running user code
/// (combine / combine_fold via bucket merging, reduce): extracted so
/// [`run_finish_shard`] can run it under `catch_unwind`.
/// One-time split of a job's accumulated state into per-shard buckets —
/// off the coordinator, performed by whichever shard task gets there
/// first (later tasks see `sharded` set and skip). Returns whether this
/// call did the split, so the caller can attribute the cost to its own
/// `shard_split` span rather than polluting that shard's `reduce_shard`
/// measurement.
fn ensure_sharded<J: MapReduceJob + 'static>(ctx: &FinishCtx<J>, nbins: usize) -> bool {
    let mut st = ctx.state.lock();
    if st.sharded {
        return false;
    }
    // The weighted plan routes heavy keys explicitly; the hash path uses
    // the bias-free reduction over the base shard count.
    let route = |k: &J::K| match &ctx.plan {
        Some(p) => p.bin_of_hash(key_hash(k)),
        None => shard_of_hash(key_hash(k), nbins),
    };
    let partials = std::mem::take(&mut st.partials);
    let fold = ctx.job.combine_is_fold();
    // Buckets hold materialized keys, so token-identity partials shard
    // into plain Fold buckets (the fast path implies fold).
    let mut buckets: Vec<JobAcc<J>> = (0..nbins)
        .map(|_| {
            if fold {
                JobAcc::Fold(FxHashMap::default())
            } else {
                JobAcc::Buf(FxHashMap::default())
            }
        })
        .collect();
    let mut bin_records = vec![0u64; nbins];
    for acc in partials {
        match acc {
            JobAcc::Fold(map) => {
                for (k, v) in map {
                    let b = route(&k);
                    bin_records[b] += 1;
                    // Fold-merges values of keys seen by several workers.
                    buckets[b].push(&*ctx.job, k, v);
                }
            }
            JobAcc::Tok(map) => {
                // The one place the fast path builds real keys: once per
                // distinct token per worker accumulator.
                map.drain_into(|tok, v| {
                    let k = ctx.job.token_key(tok);
                    let b = route(&k);
                    bin_records[b] += 1;
                    buckets[b].push(&*ctx.job, k, v);
                });
            }
            JobAcc::Buf(map) => {
                for (k, mut vs) in map {
                    let b = route(&k);
                    bin_records[b] += vs.len() as u64;
                    match &mut buckets[b] {
                        JobAcc::Buf(m) => m.entry(k).or_default().append(&mut vs),
                        _ => unreachable!("bucket kind matches job kind"),
                    }
                }
            }
        }
    }
    st.buckets = buckets.into_iter().map(Some).collect();
    st.bin_records = bin_records;
    st.sharded = true;
    true
}

fn finish_shard_inner<J: MapReduceJob + 'static>(ctx: &FinishCtx<J>, s: usize) -> Vec<(J::K, J::Out)> {
    if let Some(f) = &ctx.faults {
        let d = f.reduce_delay_us(ctx.job_id, s);
        if d > 0 {
            std::thread::sleep(Duration::from_micros(d));
        }
        if f.panics_reduce(ctx.job_id, s) {
            panic!("injected reduce panic (job {} shard {s})", ctx.job_id);
        }
    }
    // `get_mut` (not indexing): if the split itself panicked, the bucket
    // vector was never built — this shard then reduces nothing and the
    // recorded failure quarantines the job at publish time.
    let bucket = ctx.state.lock().buckets.get_mut(s).and_then(Option::take);

    // Reduce this shard outside the lock so shards run in parallel. The
    // part stays unordered — the publisher sorts all shards in one pass.
    let mut part = Vec::new();
    if let Some(acc) = bucket {
        match acc {
            JobAcc::Fold(map) => {
                for (k, v) in map {
                    if let Some(o) = ctx.job.reduce(&k, std::slice::from_ref(&v)) {
                        part.push((k, o));
                    }
                }
            }
            JobAcc::Buf(map) => {
                for (k, vs) in map {
                    let folded = ctx.job.combine(&k, vs);
                    if let Some(o) = ctx.job.reduce(&k, &folded) {
                        part.push((k, o));
                    }
                }
            }
            JobAcc::Tok(_) => unreachable!("buckets hold materialized keys"),
        }
    }
    part
}

fn run_finish_shard<J: MapReduceJob + 'static>(ctx: Arc<FinishCtx<J>>, s: usize, nbins: usize) {
    // Phase-global split into per-shard buckets, charged to its own
    // `shard_split` span: leaving it inside whichever `reduce_shard` span
    // ran first made that histogram's tail show the split cost instead of
    // the per-shard reduce skew. A panic inside user merge code during
    // the split quarantines the job like any reduce panic.
    let split_t0 = ctx.obs.as_ref().map(|o| o.tracer().now_us());
    match catch_unwind(AssertUnwindSafe(|| ensure_sharded(&ctx, nbins))) {
        Ok(true) => {
            if let (Some(o), Some(t0)) = (&ctx.obs, split_t0) {
                o.tracer().span("shard_split", t0, Ids::job(ctx.job_id));
                o.shard_split.record(o.tracer().now_us().saturating_sub(t0));
            }
        }
        Ok(false) => {}
        Err(p) => ctx.failure.record(p),
    }
    let shard_t0 = ctx.obs.as_ref().map(|o| o.tracer().now_us());
    // A panicking combine/reduce fails this job alone: the shard still
    // completes (with an empty part), `remaining` still counts down, and
    // the last shard publishes the failure instead of an output.
    let part = match catch_unwind(AssertUnwindSafe(|| finish_shard_inner(&ctx, s))) {
        Ok(part) => part,
        Err(p) => {
            ctx.failure.record(p);
            Vec::new()
        }
    };
    let shard_records = {
        let mut st = ctx.state.lock();
        st.parts[s] = Some(part);
        st.bin_records.get(s).copied().unwrap_or(0)
    };
    if let (Some(o), Some(t0)) = (&ctx.obs, shard_t0) {
        // The shard index rides in its own id field — packing it into the
        // job or count fields misattributed slices across concurrent jobs.
        // `n` carries the records this shard reduced.
        o.tracer().span(
            "reduce_shard",
            t0,
            Ids::job(ctx.job_id).shard(s as u64).jobs(shard_records),
        );
        o.reduce_shard.record(o.tracer().now_us().saturating_sub(t0));
        o.reduce_shard_records.record(shard_records);
    }

    if ctx.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last shard to finish merges and publishes.
        if ctx.failure.failed() {
            if let Some(o) = &ctx.obs {
                o.jobs_quarantined.inc();
                o.tracer().instant("quarantine", Ids::job(ctx.job_id));
            }
            ctx.completion
                .publish(Err(JobError::Panicked(ctx.failure.message())));
            return;
        }
        let parts = std::mem::take(&mut ctx.state.lock().parts);
        // Shards hold disjoint key sets (split by key hash), so the
        // concatenation is duplicate-free: sort once, bulk-build the tree.
        let mut flat: Vec<(J::K, J::Out)> = Vec::new();
        for p in parts {
            flat.extend(p.expect("every shard stored its part"));
        }
        flat.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let records = BTreeMap::from_iter(flat);
        let mut stats = ctx.stats;
        stats.reduce_output_records = records.len() as u64;
        let blocks_scanned = stats.blocks_scanned;
        let output = JobOutput { records, stats };
        ctx.completion.publish(Ok(output));
        if let Some(o) = &ctx.obs {
            o.jobs_completed.inc();
            o.job_latency
                .record(o.tracer().now_us().saturating_sub(ctx.submitted_us));
            // Blocks this job's revolution covered ride in `ids.n`, so the
            // journal can prove its segment slices add up (flight-recorder
            // coverage invariant).
            o.tracer()
                .instant("job_done", Ids::job(ctx.job_id).jobs(blocks_scanned));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_job, ExecConfig};
    use crate::fault::EngineFault;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        // Large enough that one revolution comfortably outlasts a burst of
        // submissions, so concurrency tests are not racy.
        let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(2000);
        BlockStore::from_text(&text, 2048)
    }

    #[test]
    fn single_job_matches_run_job() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 2, 3);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait().expect("job completed");
        let solo = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.records, solo.records);
        assert_eq!(out.stats.map_output_records, solo.stats.map_output_records);
        server.shutdown();
    }

    #[test]
    fn concurrent_jobs_share_the_scan() {
        let s = store();
        let n_blocks = s.num_blocks() as u64;
        let server = SharedScanServer::new(s.clone(), 1, 4);
        // Submit several jobs quickly: they should ride the same revolution.
        let handles: Vec<_> = ["a", "b", "g", "d", ""]
            .iter()
            .map(|p| server.submit(PrefixCount { prefix: p.to_string() }))
            .collect();
        for (p, h) in ["a", "b", "g", "d", ""].iter().zip(handles) {
            let out = h.wait().expect("job completed");
            let solo = run_job(
                &PrefixCount { prefix: p.to_string() },
                &s,
                &ExecConfig::default(),
            );
            assert_eq!(out.records, solo.records, "prefix {p:?}");
        }
        let scanned = server.blocks_scanned();
        // Five jobs, but far fewer than five full scans (they overlap).
        assert!(
            scanned < 3 * n_blocks,
            "expected shared scanning: {scanned} block scans for 5 jobs over {n_blocks} blocks"
        );
        assert!(scanned >= n_blocks);
        server.shutdown();
    }

    #[test]
    fn wait_timeout_polls_then_delivers_without_consuming() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 2, 2);
        let h = server.submit(PrefixCount { prefix: "al".into() });
        // A zero-duration wait is a typed non-blocking poll; whatever the
        // timing, a miss leaves the handle intact.
        let mut result = h.wait_timeout(Duration::ZERO);
        while result.is_err() {
            result = h.wait_timeout(Duration::from_millis(50));
        }
        let out = result.unwrap().expect("job completed");
        let solo = run_job(&PrefixCount { prefix: "al".into() }, &s, &ExecConfig::default());
        assert_eq!(out.records, solo.records);
        // The slot was consumed by the successful wait.
        assert!(h.try_take().is_none());
        server.shutdown();
    }

    #[test]
    fn wait_timeout_times_out_promptly_on_a_stuck_job() {
        // A server with no threads scanning nothing... simplest stuck job:
        // a handle whose runtime never resolves it within the window. Use
        // a fresh HandleState with no publisher.
        let h: JobHandle<String, i64> = JobHandle::from_state(HandleState::new());
        let t0 = Instant::now();
        assert_eq!(h.wait_timeout(Duration::from_millis(20)), Err(WaitTimeout));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // Still waitable: resolve it and observe the value.
        h.state.resolve(Err(JobError::Aborted));
        assert_eq!(h.wait_timeout(Duration::ZERO), Ok(Err(JobError::Aborted)));
    }

    #[test]
    fn routed_deadline_expires_sticky_at_a_segment_boundary() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 1, 2);
        // Keep the revolution busy so the expiring job is mid-flight.
        let rider = server.submit(PrefixCount { prefix: "".into() });
        let state = HandleState::new();
        let expired_flag = Arc::new(AtomicBool::new(false));
        let hook: ResolveHook = {
            let f = Arc::clone(&expired_flag);
            Arc::new(move |kind| {
                if kind == ResolveKind::Expired {
                    f.store(true, Ordering::SeqCst);
                }
            })
        };
        server.submit_routed(
            PrefixCount { prefix: "x".into() },
            SubmitOpts {
                state: Arc::clone(&state),
                // Already in the past: the first boundary sweep expires it.
                expires_at: Some(Instant::now() - Duration::from_millis(1)),
                on_resolve: Some(hook),
            },
        );
        let h: JobHandle<String, i64> = JobHandle::from_state(state);
        let res = h
            .wait_timeout(Duration::from_secs(10))
            .expect("expiry resolves well within the bound");
        assert_eq!(res, Err(JobError::DeadlineExpired));
        // The hook runs before the handle publishes, so the flag is
        // already visible here.
        assert!(expired_flag.load(Ordering::SeqCst), "hook saw Expired");
        rider.wait().expect("co-riding job unaffected");
        server.shutdown();
    }

    #[test]
    fn late_job_joins_mid_scan_and_wraps() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 1, 2);
        let first = server.submit(PrefixCount { prefix: "".into() });
        // Give the scan a moment to advance before the second job arrives.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let second = server.submit(PrefixCount { prefix: "ga".into() });
        let out1 = first.wait().expect("job completed");
        let out2 = second.wait().expect("job completed");
        let solo2 = run_job(
            &PrefixCount { prefix: "ga".into() },
            &s,
            &ExecConfig::default(),
        );
        // The wrapped job still sees every block exactly once.
        assert_eq!(out2.records, solo2.records);
        assert!(out1.records.len() >= out2.records.len());
        server.shutdown();
    }

    #[test]
    fn submissions_from_many_threads() {
        let s = store();
        let server = Arc::new(SharedScanServer::new(s.clone(), 2, 2));
        let mut joins = Vec::new();
        for i in 0..6 {
            let server = Arc::clone(&server);
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                let prefix = ["a", "b", "g"][i % 3].to_string();
                let h = server.submit(PrefixCount { prefix: prefix.clone() });
                let out = h.wait().expect("job completed");
                let solo = run_job(&PrefixCount { prefix }, &s, &ExecConfig::default());
                assert_eq!(out.records, solo.records);
            }));
        }
        for j in joins {
            j.join().expect("submitter thread panicked");
        }
        Arc::try_unwrap(server)
            .unwrap_or_else(|_| panic!("all submitters joined"))
            .shutdown();
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let s = store();
        let server = SharedScanServer::new(s, 1, 2);
        let h = server.submit(PrefixCount { prefix: "".into() });
        // Eventually completes; poll until it does.
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(out) = h.try_take() {
                got = Some(out.expect("job completed"));
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(got.is_some(), "job should complete");
        server.shutdown();
    }

    #[test]
    fn rapid_create_shutdown_cycles_do_not_hang() {
        // Regression: shutdown used to set the flag and notify without
        // holding the pending lock, racing the coordinator's
        // check-then-wait and losing the wakeup (observed as a hang under
        // benchmark repetition).
        let s = BlockStore::from_text("a b\n", 16);
        for _ in 0..300 {
            let server: SharedScanServer<PrefixCount> = SharedScanServer::new(s.clone(), 1, 2);
            server.shutdown();
        }
    }

    #[test]
    fn shutdown_with_no_jobs_is_clean() {
        let server: SharedScanServer<PrefixCount> = SharedScanServer::new(store(), 4, 2);
        assert_eq!(server.blocks_scanned(), 0);
        server.shutdown();
    }

    #[test]
    fn stats_report_the_job_revolution() {
        let s = store();
        let total_bytes = s.total_bytes() as u64;
        let total_blocks = s.num_blocks() as u64;
        let server = SharedScanServer::new(s, 3, 2);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait().expect("job completed");
        // One full revolution covers exactly the store, summed per segment.
        assert_eq!(out.stats.bytes_scanned, total_bytes);
        assert_eq!(out.stats.blocks_scanned, total_blocks);
        server.shutdown();
    }

    #[test]
    fn speculative_path_matches_run_job() {
        let s = store();
        let mut cfg = ServerConfig::new(2, 3);
        cfg.ft = FtConfig::resilient();
        cfg.ft.deadline_floor = Duration::from_millis(3);
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let handles = server.submit_all(vec![
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "".into() },
            PrefixCount { prefix: "ga".into() },
        ]);
        for (p, h) in ["a", "", "ga"].iter().zip(handles) {
            let out = h.wait().expect("job completed");
            let solo = run_job(
                &PrefixCount { prefix: p.to_string() },
                &s,
                &ExecConfig::default(),
            );
            assert_eq!(out.records, solo.records, "prefix {p:?}");
            assert_eq!(out.stats.map_output_records, solo.stats.map_output_records);
        }
        server.shutdown();
    }

    #[test]
    fn injected_map_panic_quarantines_that_job_alone() {
        let s = store();
        let obs = Obs::new();
        let mut cfg = ServerConfig::new(2, 3);
        cfg.obs = obs.clone();
        cfg.faults = Some(FaultPlan {
            faults: vec![EngineFault::PanicMap {
                job: 0,
                after_segments: 1,
            }],
        });
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let handles = server.submit_all(vec![
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
        ]);
        let mut it = handles.into_iter();
        let doomed = it.next().unwrap().wait();
        let survivor = it.next().unwrap().wait().expect("co-rider unaffected");
        match doomed {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("injected map panic")),
            other => panic!("expected quarantine, got {other:?}"),
        }
        let solo = run_job(
            &PrefixCount { prefix: "b".into() },
            &s,
            &ExecConfig::default(),
        );
        assert_eq!(survivor.records, solo.records);
        server.shutdown();
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("engine.jobs_quarantined"), 1);
        assert_eq!(snap.counter("engine.jobs_completed"), 1);
    }

    #[test]
    fn injected_reduce_panic_fails_only_that_job() {
        let s = store();
        let obs = Obs::new();
        let mut cfg = ServerConfig::new(4, 2);
        cfg.obs = obs.clone();
        cfg.faults = Some(FaultPlan {
            faults: vec![EngineFault::PanicReduce { job: 1, shard: 0 }],
        });
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let handles = server.submit_all(vec![
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
        ]);
        let mut it = handles.into_iter();
        let ok = it.next().unwrap().wait().expect("unfaulted job completes");
        let failed = it.next().unwrap().wait();
        let solo = run_job(
            &PrefixCount { prefix: "a".into() },
            &s,
            &ExecConfig::default(),
        );
        assert_eq!(ok.records, solo.records);
        match failed {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("injected reduce panic")),
            other => panic!("expected reduce quarantine, got {other:?}"),
        }
        server.shutdown();
        assert_eq!(obs.snapshot().unwrap().counter("engine.jobs_quarantined"), 1);
    }

    #[test]
    fn killed_coordinator_aborts_every_job_without_hanging() {
        let s = store();
        let obs = Obs::new();
        let mut cfg = ServerConfig::new(1, 2);
        cfg.obs = obs.clone();
        cfg.faults = Some(FaultPlan {
            faults: vec![EngineFault::KillCoordinator { at_iter: 1 }],
        });
        let server = SharedScanServer::with_config(s, cfg);
        let handles = server.submit_all(vec![
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
            PrefixCount { prefix: "".into() },
        ]);
        for h in handles {
            assert_eq!(h.wait(), Err(JobError::Aborted));
        }
        // Shutdown after coordinator death must not panic or hang.
        server.shutdown();
        assert_eq!(obs.snapshot().unwrap().counter("engine.jobs_aborted"), 3);
    }

    #[test]
    fn next_segment_size_clamps_shrinks_and_regrows() {
        let cfg = AdaptiveConfig {
            enabled: true,
            target_cadence: Duration::from_micros(1_000),
            min_blocks_per_segment: 2,
            max_blocks_per_segment: 16,
        };
        // No measurement yet: keep the current size, clamped into bounds.
        assert_eq!(next_segment_size(4, 0.0, 3, &cfg), 4);
        assert_eq!(next_segment_size(1, 0.0, 3, &cfg), 2);
        assert_eq!(next_segment_size(64, 0.0, 3, &cfg), 16);
        // 250µs/block on 2 workers against a 1ms wave: 8 blocks.
        assert_eq!(next_segment_size(4, 250.0, 2, &cfg), 8);
        // Losing a worker halves the wave.
        assert_eq!(next_segment_size(8, 250.0, 1, &cfg), 4);
        // Very slow blocks shrink to the min clamp; very fast blocks
        // re-grow to the max clamp — never outside either bound.
        assert_eq!(next_segment_size(8, 1_000_000.0, 2, &cfg), 2);
        assert_eq!(next_segment_size(2, 1.0, 2, &cfg), 16);
        // Degenerate worker count: keep the current size.
        assert_eq!(next_segment_size(8, 250.0, 0, &cfg), 8);
    }

    #[test]
    fn oversized_segment_reports_exact_stats() {
        // blocks_per_segment > num_blocks: one short segment per
        // revolution, with stats covering exactly the store.
        let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(20);
        let s = BlockStore::from_text(&text, 256);
        let n = s.num_blocks();
        assert!(n > 1);
        let server = SharedScanServer::new(s.clone(), n + 7, 2);
        assert_eq!(server.num_segments(), 1);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait().expect("job completed");
        assert_eq!(out.stats.blocks_scanned, n as u64);
        assert_eq!(out.stats.bytes_scanned, s.total_bytes() as u64);
        let solo = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.records, solo.records);
        server.shutdown();
    }

    #[test]
    fn adaptive_shrinks_from_an_oversized_segment_and_stays_exact() {
        // Start oversized (eff > num_blocks, so the first segment clips to
        // the whole store) with a sub-microsecond-impossible cadence
        // target, so the policy must shrink; outputs stay byte-identical
        // throughout and the effective size never leaves the clamp.
        let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(200);
        let s = BlockStore::from_text(&text, 512);
        let n = s.num_blocks();
        let mut cfg = ServerConfig::new(n + 3, 2);
        cfg.adaptive = AdaptiveConfig {
            enabled: true,
            target_cadence: Duration::from_micros(1),
            min_blocks_per_segment: 1,
            max_blocks_per_segment: n + 10,
        };
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let solo = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        for _ in 0..4 {
            let h = server.submit(PrefixCount { prefix: "".into() });
            let out = h.wait().expect("job completed");
            assert_eq!(out.records, solo.records);
            assert_eq!(out.stats.blocks_scanned, n as u64);
            let eff = server.effective_blocks_per_segment();
            assert!((1..=n + 10).contains(&eff), "eff {eff} escaped the clamp");
        }
        assert!(
            server.segment_resizes() >= 1,
            "an unreachable cadence target must force at least one shrink"
        );
        server.shutdown();
    }

    #[test]
    fn user_map_panic_is_quarantined() {
        // A genuinely panicking user job (no fault injection): the panic
        // payload flows through to the handle.
        struct Bomb {
            arm: bool,
        }
        impl MapReduceJob for Bomb {
            type K = String;
            type V = i64;
            type Out = i64;
            fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
                if self.arm && line.contains("gamma") {
                    panic!("boom on gamma");
                }
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            }
            fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
                Some(v.iter().sum())
            }
        }
        let s = store();
        let server = SharedScanServer::new(s.clone(), 2, 3);
        let handles = server.submit_all(vec![Bomb { arm: true }, Bomb { arm: false }]);
        let mut it = handles.into_iter();
        match it.next().unwrap().wait() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom on gamma"), "{msg}"),
            other => panic!("expected panic quarantine, got {other:?}"),
        }
        let survivor = it.next().unwrap().wait().expect("co-rider survives");
        let solo = run_job(&Bomb { arm: false }, &s, &ExecConfig::default());
        assert_eq!(survivor.records, solo.records);
        server.shutdown();
    }
}
