//! Single-job execution: map over blocks in parallel, shuffle by key hash,
//! reduce partitions in parallel.

use crate::store::BlockStore;
use crate::types::MapReduceJob;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Execution parameters.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads for the map and reduce phases.
    pub num_threads: usize,
    /// Number of reduce partitions.
    pub num_reducers: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            num_reducers: 8,
        }
    }
}

/// Counters from one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks read from the store.
    pub blocks_scanned: u64,
    /// Bytes read from the store.
    pub bytes_scanned: u64,
    /// Intermediate records emitted by map functions (pre-combiner).
    pub map_output_records: u64,
    /// Final output records.
    pub reduce_output_records: u64,
}

/// The result of one job: its output relation plus counters.
#[derive(Debug, Clone)]
pub struct JobOutput<K: Ord, Out> {
    /// Final key → output value, totally ordered for easy comparison.
    pub records: BTreeMap<K, Out>,
    /// Execution counters.
    pub stats: ScanStats,
}

pub(crate) fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % num_reducers as u64) as usize
}

/// Run one job over the whole store.
///
/// # Panics
/// Panics if `cfg` has zero threads or reducers.
pub fn run_job<J: MapReduceJob>(job: &J, store: &BlockStore, cfg: &ExecConfig) -> JobOutput<J::K, J::Out> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    assert!(cfg.num_reducers > 0, "need at least one reducer");

    let next_block = AtomicUsize::new(0);
    let num_blocks = store.num_blocks();

    // ---- map phase ----
    type MapOut<K, V> = (Vec<Vec<(K, V)>>, u64, u64);
    let worker_outputs: Vec<MapOut<J::K, J::V>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..cfg.num_threads)
            .map(|_| {
                let next_block = &next_block;
                s.spawn(move |_| {
                    let mut partitions: Vec<Vec<(J::K, J::V)>> =
                        (0..cfg.num_reducers).map(|_| Vec::new()).collect();
                    let mut emitted = 0u64;
                    let mut bytes = 0u64;
                    loop {
                        let idx = next_block.fetch_add(1, Ordering::Relaxed);
                        if idx >= num_blocks {
                            break;
                        }
                        let block = store.block(idx);
                        bytes += block.len() as u64;
                        // Block-local grouping so the combiner can fold.
                        let mut local: HashMap<J::K, Vec<J::V>> = HashMap::new();
                        for line in block.lines() {
                            job.map(line, &mut |k, v| {
                                emitted += 1;
                                local.entry(k).or_default().push(v);
                            });
                        }
                        for (k, vs) in local {
                            let folded = job.combine(&k, vs);
                            let p = partition_of(&k, cfg.num_reducers);
                            for v in folded {
                                partitions[p].push((k.clone(), v));
                            }
                        }
                    }
                    (partitions, emitted, bytes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    })
    .expect("map scope panicked");

    // ---- shuffle: merge worker partitions ----
    let mut shuffled: Vec<Vec<(J::K, J::V)>> =
        (0..cfg.num_reducers).map(|_| Vec::new()).collect();
    let mut map_output_records = 0u64;
    let mut bytes_scanned = 0u64;
    for (parts, emitted, bytes) in worker_outputs {
        map_output_records += emitted;
        bytes_scanned += bytes;
        for (p, mut recs) in parts.into_iter().enumerate() {
            shuffled[p].append(&mut recs);
        }
    }

    // ---- reduce phase ----
    let next_partition = AtomicUsize::new(0);
    let shuffled = &shuffled;
    let reduced: Vec<BTreeMap<J::K, J::Out>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..cfg.num_threads)
            .map(|_| {
                let next_partition = &next_partition;
                s.spawn(move |_| {
                    let mut out = BTreeMap::new();
                    loop {
                        let p = next_partition.fetch_add(1, Ordering::Relaxed);
                        if p >= shuffled.len() {
                            break;
                        }
                        let mut grouped: BTreeMap<&J::K, Vec<J::V>> = BTreeMap::new();
                        for (k, v) in &shuffled[p] {
                            grouped.entry(k).or_default().push(v.clone());
                        }
                        for (k, vs) in grouped {
                            if let Some(o) = job.reduce(k, &vs) {
                                out.insert(k.clone(), o);
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    })
    .expect("reduce scope panicked");

    let mut records = BTreeMap::new();
    for part in reduced {
        records.extend(part);
    }
    let stats = ScanStats {
        blocks_scanned: num_blocks as u64,
        bytes_scanned,
        map_output_records,
        reduce_output_records: records.len() as u64,
    };
    JobOutput { records, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        let text = "apple banana apple\ncherry apple banana\napricot cherry\n".repeat(50);
        BlockStore::from_text(&text, 200)
    }

    #[test]
    fn wordcount_is_correct() {
        let out = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 4,
                num_reducers: 4,
            },
        );
        assert_eq!(out.records["apple"], 150);
        assert_eq!(out.records["banana"], 100);
        assert_eq!(out.records["cherry"], 100);
        assert_eq!(out.records["apricot"], 50);
        assert_eq!(out.stats.map_output_records, 400);
        assert_eq!(out.stats.reduce_output_records, 4);
    }

    #[test]
    fn prefix_filter_restricts_output() {
        let out = run_job(
            &PrefixCount { prefix: "ap".into() },
            &store(),
            &ExecConfig::default(),
        );
        assert_eq!(out.records.len(), 2); // apple, apricot
        assert_eq!(out.records["apple"], 150);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 1,
                num_reducers: 3,
            },
        );
        for threads in [2, 4, 8] {
            let out = run_job(
                &PrefixCount { prefix: "".into() },
                &store(),
                &ExecConfig {
                    num_threads: threads,
                    num_reducers: 3,
                },
            );
            assert_eq!(out.records, base.records, "threads={threads}");
        }
    }

    #[test]
    fn reducer_count_does_not_change_results() {
        let base = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 4,
                num_reducers: 1,
            },
        );
        for reducers in [2, 7, 16] {
            let out = run_job(
                &PrefixCount { prefix: "".into() },
                &store(),
                &ExecConfig {
                    num_threads: 4,
                    num_reducers: reducers,
                },
            );
            assert_eq!(out.records, base.records, "reducers={reducers}");
        }
    }

    #[test]
    fn stats_count_all_bytes() {
        let s = store();
        let out = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.stats.bytes_scanned as usize, s.total_bytes());
        assert_eq!(out.stats.blocks_scanned as usize, s.num_blocks());
    }
}
