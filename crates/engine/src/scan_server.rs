//! A real, threaded S³ runtime: the paper's circular shared scan as a
//! long-running service.
//!
//! [`SharedScanServer`] owns a [`BlockStore`] organized into segments. Jobs
//! are submitted at any time from any thread; each job joins the scan at
//! the *next* segment boundary, shares every segment scan with whoever else
//! is active, wraps around the end of the file, and completes after exactly
//! one revolution — the S³ execution model (Sections IV-B/IV-C), executed
//! for real rather than simulated:
//!
//! ```
//! use s3_engine::{BlockStore, MapReduceJob, SharedScanServer};
//!
//! struct Count;
//! impl MapReduceJob for Count {
//!     type K = String; type V = i64; type Out = i64;
//!     fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
//!         for w in line.split_whitespace() { emit(w.into(), 1); }
//!     }
//!     fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> { Some(v.iter().sum()) }
//! }
//!
//! let store = BlockStore::from_text("a b a\nc a b\n", 6);
//! let server = SharedScanServer::new(store, 1, 2);
//! let h = server.submit(Count);
//! let out = h.wait();
//! assert_eq!(out.records["a"], 3);
//! server.shutdown();
//! ```

use crate::exec::{partition_of, JobOutput, ScanStats};
use crate::store::BlockStore;
use crate::types::MapReduceJob;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// State of one job inside the server.
struct ActiveJob<J: MapReduceJob> {
    job: Arc<J>,
    handle: Arc<HandleState<J::K, J::Out>>,
    /// Segments still to process (counts down from the segment count).
    segments_remaining: usize,
    /// Accumulated (combined) map output, grouped by key.
    acc: HashMap<J::K, Vec<J::V>>,
    /// Map records emitted for this job.
    map_output_records: u64,
}

/// Shared completion slot a [`JobHandle`] waits on.
struct HandleState<K: Ord, Out> {
    done: Mutex<Option<JobOutput<K, Out>>>,
    cv: Condvar,
}

/// A ticket for a submitted job; [`JobHandle::wait`] blocks until the job's
/// revolution completes and returns its output.
pub struct JobHandle<K: Ord, Out> {
    state: Arc<HandleState<K, Out>>,
}

impl<K: Ord, Out> JobHandle<K, Out> {
    /// Block until the job finishes; returns its output relation and stats.
    pub fn wait(self) -> JobOutput<K, Out> {
        let mut guard = self.state.done.lock();
        loop {
            if let Some(out) = guard.take() {
                return out;
            }
            self.state.cv.wait(&mut guard);
        }
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<JobOutput<K, Out>> {
        self.state.done.lock().take()
    }
}

struct ServerShared<J: MapReduceJob> {
    store: BlockStore,
    /// Segment boundaries: segment `s` covers blocks `cuts[s]..cuts[s+1]`.
    cuts: Vec<usize>,
    pending: Mutex<Vec<ActiveJob<J>>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Total block scans performed (shared scans count once).
    blocks_scanned: AtomicU64,
    /// Total segment iterations executed.
    iterations: AtomicU64,
}

/// A long-running shared-scan service over one block store.
///
/// All jobs must be of one concrete [`MapReduceJob`] type `J` (as with
/// [`crate::run_merged`], merged jobs must agree on their intermediate
/// schema). The server runs a coordinator thread that performs one merged
/// sub-job per segment iteration, using `num_threads` workers for the scan.
pub struct SharedScanServer<J: MapReduceJob + 'static> {
    shared: Arc<ServerShared<J>>,
    coordinator: Option<JoinHandle<()>>,
}

impl<J: MapReduceJob + 'static> SharedScanServer<J> {
    /// Start a server over `store` with segments of `blocks_per_segment`
    /// blocks and `num_threads` scan workers.
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn new(store: BlockStore, blocks_per_segment: usize, num_threads: usize) -> Self {
        assert!(blocks_per_segment > 0, "segments need at least one block");
        assert!(num_threads > 0, "need at least one worker");
        let n = store.num_blocks();
        let mut cuts: Vec<usize> = (0..n).step_by(blocks_per_segment).collect();
        cuts.push(n);

        let shared = Arc::new(ServerShared {
            store,
            cuts,
            pending: Mutex::new(Vec::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            blocks_scanned: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
        });

        let coord_shared = Arc::clone(&shared);
        let coordinator = std::thread::Builder::new()
            .name("s3-scan-coordinator".into())
            .spawn(move || coordinator_loop(coord_shared, num_threads))
            .expect("spawning the coordinator thread");

        SharedScanServer {
            shared,
            coordinator: Some(coordinator),
        }
    }

    /// Number of segments in the circular scan.
    pub fn num_segments(&self) -> usize {
        self.shared.cuts.len() - 1
    }

    /// Total block scans performed so far (a scan shared by k jobs counts
    /// once — that is the point).
    pub fn blocks_scanned(&self) -> u64 {
        self.shared.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Segment iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.shared.iterations.load(Ordering::Relaxed)
    }

    /// Submit a job; it joins the scan at the next segment boundary.
    pub fn submit(&self, job: J) -> JobHandle<J::K, J::Out> {
        let state = Arc::new(HandleState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let active = ActiveJob {
            job: Arc::new(job),
            handle: Arc::clone(&state),
            segments_remaining: self.num_segments(),
            acc: HashMap::new(),
            map_output_records: 0,
        };
        self.shared.pending.lock().push(active);
        self.shared.wakeup.notify_all();
        JobHandle { state }
    }

    /// Stop accepting useful work and join the coordinator once all
    /// submitted jobs have completed.
    pub fn shutdown(mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            h.join().expect("coordinator panicked");
        }
    }

    /// Set the shutdown flag and wake the coordinator without losing the
    /// wakeup: taking the pending lock before notifying guarantees the
    /// coordinator is either before its shutdown check (it will see the
    /// flag) or already parked in `wait` (it will receive the notify) —
    /// never in between.
    fn signal_shutdown(shared: &ServerShared<J>) {
        shared.shutdown.store(true, Ordering::SeqCst);
        let _pending = shared.pending.lock();
        shared.wakeup.notify_all();
    }
}

impl<J: MapReduceJob + 'static> Drop for SharedScanServer<J> {
    fn drop(&mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            let _ = h.join();
        }
    }
}

fn coordinator_loop<J: MapReduceJob + 'static>(shared: Arc<ServerShared<J>>, num_threads: usize) {
    let num_segments = shared.cuts.len() - 1;
    let mut cursor = 0usize; // next segment to scan
    let mut active: Vec<ActiveJob<J>> = Vec::new();

    loop {
        // Admit newly submitted jobs at this segment boundary (the paper's
        // alignment: a job starts at the next segment to be processed).
        {
            let mut pending = shared.pending.lock();
            active.append(&mut pending);
            if active.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Idle: park until a submission or shutdown.
                shared.wakeup.wait(&mut pending);
                active.append(&mut pending);
                continue;
            }
        }

        // One iteration of Algorithm 1: merged sub-job over the cursor's
        // segment for every active job.
        let (start, end) = (shared.cuts[cursor], shared.cuts[cursor + 1]);
        scan_segment(&shared, &mut active, start, end, num_threads);
        shared
            .blocks_scanned
            .fetch_add((end - start) as u64, Ordering::Relaxed);
        shared.iterations.fetch_add(1, Ordering::Relaxed);
        cursor = (cursor + 1) % num_segments;

        // Jobs that completed a full revolution: reduce and publish.
        let mut i = 0;
        while i < active.len() {
            active[i].segments_remaining -= 1;
            if active[i].segments_remaining == 0 {
                let finished = active.swap_remove(i);
                finish_job(&shared, finished);
            } else {
                i += 1;
            }
        }
    }
}

/// Scan one segment once, running every active job's map over each record.
fn scan_segment<J: MapReduceJob + 'static>(
    shared: &Arc<ServerShared<J>>,
    active: &mut [ActiveJob<J>],
    start: usize,
    end: usize,
    num_threads: usize,
) {
    if active.is_empty() || start == end {
        return;
    }
    let jobs: Vec<Arc<J>> = active.iter().map(|a| Arc::clone(&a.job)).collect();
    let next = AtomicUsize::new(start);
    let store = &shared.store;

    type WorkerOut<K, V> = (Vec<HashMap<K, Vec<V>>>, Vec<u64>);
    let results: Vec<WorkerOut<J::K, J::V>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..num_threads)
            .map(|_| {
                let jobs = &jobs;
                let next = &next;
                s.spawn(move |_| {
                    let mut acc: Vec<HashMap<J::K, Vec<J::V>>> =
                        (0..jobs.len()).map(|_| HashMap::new()).collect();
                    let mut emitted = vec![0u64; jobs.len()];
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= end {
                            break;
                        }
                        let block = store.block(idx);
                        for line in block.lines() {
                            for (ji, job) in jobs.iter().enumerate() {
                                let slot = &mut acc[ji];
                                job.map(line, &mut |k, v| {
                                    emitted[ji] += 1;
                                    slot.entry(k).or_default().push(v);
                                });
                            }
                        }
                    }
                    // Combine per worker before merging into the job state.
                    for (ji, slot) in acc.iter_mut().enumerate() {
                        let combined: HashMap<J::K, Vec<J::V>> = slot
                            .drain()
                            .map(|(k, vs)| {
                                let folded = jobs[ji].combine(&k, vs);
                                (k, folded)
                            })
                            .collect();
                        *slot = combined;
                    }
                    (acc, emitted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
    .expect("scan scope panicked");

    for (worker_acc, emitted) in results {
        for ((job_state, mut job_acc), e) in active.iter_mut().zip(worker_acc).zip(emitted) {
            job_state.map_output_records += e;
            for (k, mut vs) in job_acc.drain() {
                job_state.acc.entry(k).or_default().append(&mut vs);
            }
        }
    }
}

/// Run the job's combiner+reduce over its accumulated map output and wake
/// its handle.
fn finish_job<J: MapReduceJob + 'static>(shared: &Arc<ServerShared<J>>, mut job: ActiveJob<J>) {
    let mut records = BTreeMap::new();
    // Deterministic reduce order (BTreeMap over partitioned keys is not
    // needed here: reduce is per key and the output map is ordered).
    for (k, vs) in job.acc.drain() {
        // partition_of is only needed by the distributed layout; compute it
        // to mirror run_job's structure and keep partitioning exercised.
        let _p = partition_of(&k, 16);
        let folded = job.job.combine(&k, vs);
        if let Some(out) = job.job.reduce(&k, &folded) {
            records.insert(k, out);
        }
    }
    let stats = ScanStats {
        blocks_scanned: shared.store.num_blocks() as u64,
        bytes_scanned: shared.store.total_bytes() as u64,
        map_output_records: job.map_output_records,
        reduce_output_records: records.len() as u64,
    };
    let output = JobOutput { records, stats };
    let mut guard = job.handle.done.lock();
    *guard = Some(output);
    job.handle.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_job, ExecConfig};
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        // Large enough that one revolution comfortably outlasts a burst of
        // submissions, so concurrency tests are not racy.
        let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(2000);
        BlockStore::from_text(&text, 2048)
    }

    #[test]
    fn single_job_matches_run_job() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 2, 3);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait();
        let solo = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.records, solo.records);
        assert_eq!(out.stats.map_output_records, solo.stats.map_output_records);
        server.shutdown();
    }

    #[test]
    fn concurrent_jobs_share_the_scan() {
        let s = store();
        let n_blocks = s.num_blocks() as u64;
        let server = SharedScanServer::new(s.clone(), 1, 4);
        // Submit several jobs quickly: they should ride the same revolution.
        let handles: Vec<_> = ["a", "b", "g", "d", ""]
            .iter()
            .map(|p| server.submit(PrefixCount { prefix: p.to_string() }))
            .collect();
        for (p, h) in ["a", "b", "g", "d", ""].iter().zip(handles) {
            let out = h.wait();
            let solo = run_job(
                &PrefixCount { prefix: p.to_string() },
                &s,
                &ExecConfig::default(),
            );
            assert_eq!(out.records, solo.records, "prefix {p:?}");
        }
        let scanned = server.blocks_scanned();
        // Five jobs, but far fewer than five full scans (they overlap).
        assert!(
            scanned < 3 * n_blocks,
            "expected shared scanning: {scanned} block scans for 5 jobs over {n_blocks} blocks"
        );
        assert!(scanned >= n_blocks);
        server.shutdown();
    }

    #[test]
    fn late_job_joins_mid_scan_and_wraps() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 1, 2);
        let first = server.submit(PrefixCount { prefix: "".into() });
        // Give the scan a moment to advance before the second job arrives.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let second = server.submit(PrefixCount { prefix: "ga".into() });
        let out1 = first.wait();
        let out2 = second.wait();
        let solo2 = run_job(
            &PrefixCount { prefix: "ga".into() },
            &s,
            &ExecConfig::default(),
        );
        // The wrapped job still sees every block exactly once.
        assert_eq!(out2.records, solo2.records);
        assert!(out1.records.len() >= out2.records.len());
        server.shutdown();
    }

    #[test]
    fn submissions_from_many_threads() {
        let s = store();
        let server = Arc::new(SharedScanServer::new(s.clone(), 2, 2));
        let mut joins = Vec::new();
        for i in 0..6 {
            let server = Arc::clone(&server);
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                let prefix = ["a", "b", "g"][i % 3].to_string();
                let h = server.submit(PrefixCount { prefix: prefix.clone() });
                let out = h.wait();
                let solo = run_job(&PrefixCount { prefix }, &s, &ExecConfig::default());
                assert_eq!(out.records, solo.records);
            }));
        }
        for j in joins {
            j.join().expect("submitter thread panicked");
        }
        Arc::try_unwrap(server)
            .unwrap_or_else(|_| panic!("all submitters joined"))
            .shutdown();
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let s = store();
        let server = SharedScanServer::new(s, 1, 2);
        let h = server.submit(PrefixCount { prefix: "".into() });
        // Eventually completes; poll until it does.
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(out) = h.try_take() {
                got = Some(out);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(got.is_some(), "job should complete");
        server.shutdown();
    }

    #[test]
    fn rapid_create_shutdown_cycles_do_not_hang() {
        // Regression: shutdown used to set the flag and notify without
        // holding the pending lock, racing the coordinator's
        // check-then-wait and losing the wakeup (observed as a hang under
        // benchmark repetition).
        let s = BlockStore::from_text("a b\n", 16);
        for _ in 0..300 {
            let server: SharedScanServer<PrefixCount> = SharedScanServer::new(s.clone(), 1, 2);
            server.shutdown();
        }
    }

    #[test]
    fn shutdown_with_no_jobs_is_clean() {
        let server: SharedScanServer<PrefixCount> = SharedScanServer::new(store(), 4, 2);
        assert_eq!(server.blocks_scanned(), 0);
        server.shutdown();
    }
}
