//! The S³ shared scan scheduler (Sections IV-B through IV-D).
//!
//! ## How it maps to the paper
//!
//! - **Round-robin data scan** (IV-B): each input file gets a scan state
//!   holding a circular *block cursor*. Sub-jobs always cover the next run
//!   of blocks; after the last block the cursor wraps to the first. A job
//!   admitted mid-scan starts at the cursor and finishes when the cursor
//!   has swept one full revolution past its entry point.
//! - **Job Queue Manager** (IV-C, Algorithm 1): the set of active jobs per
//!   file is the Job Queue. Every iteration, all queued jobs that still
//!   need data are merged into one batch over the next segment — the
//!   merged sub-job — and submitted.
//! - **Partial job initialization** (IV-D): exactly one merged sub-job per
//!   scan is in its map phase at any time; its reduces overlap the next
//!   sub-job's maps on the separate reduce slots. New arrivals join the
//!   *next* iteration (dynamic sub-job adjustment); a per-sub-job
//!   submission overhead models runtime sub-job initialization.
//! - **Periodic slot checking** (IV-D-1): with a check period configured,
//!   the scheduler samples every node's effective speed on a timer,
//!   excludes slow nodes from assignment, and — under
//!   [`SubJobSizing::Dynamic`] — recomputes the next sub-job's size from
//!   the healthy slot count.
//!
//! ## Example
//!
//! Two overlapping jobs over one file share most of the scan:
//!
//! ```
//! use s3_cluster::{ClusterTopology, SlowdownSchedule};
//! use s3_core::S3Scheduler;
//! use s3_mapreduce::{job::requests_from_arrivals, simulate, CostModel, EngineConfig};
//! use s3_workloads::{per_node_file, wordcount_normal};
//!
//! let cluster = ClusterTopology::paper_cluster();
//! let dataset = per_node_file(&cluster, "in", 1, 64); // 40 GB, 640 blocks
//! let workload = requests_from_arrivals(&wordcount_normal(), dataset.file, &[0.0, 10.0]);
//! let metrics = simulate(
//!     &cluster, &SlowdownSchedule::none(), &dataset.dfs, &CostModel::default(),
//!     &workload, &mut S3Scheduler::default(), &EngineConfig::default(),
//! ).unwrap();
//! assert_eq!(metrics.outcomes.len(), 2);
//! // Far fewer than two full scans were needed.
//! assert!(metrics.blocks_read < 2 * 640);
//! assert!(metrics.mb_saved() > 0.0);
//! ```

use s3_cluster::NodeId;
use s3_dfs::{BlockId, FileId};
use s3_mapreduce::{
    Batch, BatchKey, JobId, MapTaskSpec, Priority, ReduceTaskSpec, SchedCtx, Scheduler,
};
use s3_sim::SimDuration;
use std::collections::BTreeMap;

/// How large each merged sub-job (segment) is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubJobSizing {
    /// A fixed number of blocks per sub-job.
    FixedBlocks(u32),
    /// `waves` full waves of the cluster's map slots per sub-job
    /// (the paper's `m` blocks — one wave — times a wave multiplier).
    Waves(u32),
    /// Like [`SubJobSizing::Waves`], but sized from the *healthy* slot
    /// count sampled by periodic slot checking instead of the static total
    /// (the paper's dynamic segment-size computation).
    Dynamic {
        /// Waves per sub-job.
        waves: u32,
    },
}

/// Configuration of the S³ scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct S3Config {
    /// Sub-job (segment) sizing policy.
    pub sizing: SubJobSizing,
    /// Period of the slot-checking timer, seconds; `None` disables it.
    pub slot_check_period_s: Option<f64>,
    /// Nodes whose effective speed falls below this multiple of nominal
    /// are excluded from the next round (requires slot checking).
    pub slow_node_threshold: f64,
    /// Per-iteration Job Queue Manager latency, seconds: analyzing the
    /// queue, aligning the new sub-jobs, and assembling the merged sub-job
    /// (Algorithm 1 lines 1–3) before submission. This recurring cost is
    /// why a single MRShare batch beats S³ when all jobs arrive together
    /// (Figure 4(b)): the paper attributes it to the communication cost of
    /// the many sub-jobs (13 in that experiment).
    pub jqm_latency_s: f64,
    /// Priority-aware admission — the paper's future-work extension
    /// ("more scheduling policies, such as ... job priorities, can be
    /// added to S³"). `None` reproduces the baseline priority-oblivious
    /// behaviour.
    pub priority_policy: Option<PriorityPolicy>,
    /// How a job's per-sub-job partial outputs are collected into its
    /// final result (Section V-G's closing discussion).
    pub output_collection: OutputCollection,
}

/// Output-collection schemes for S³'s per-sub-job partial results.
///
/// A job split into `k` sub-jobs leaves `k` partial reduce outputs behind.
/// The paper's closing discussion (Section V-G, detailed in the authors'
/// tech report) studies how to stitch them together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputCollection {
    /// Leave the `k` partial files in place; consumers read them like any
    /// multi-reducer output directory. No extra cost — the default, and
    /// the right choice for selection-style jobs whose output is large and
    /// order-free.
    #[default]
    PartialFiles,
    /// A client-side merge pass at job end: read all partials and write
    /// one result. Costs time proportional to the job's total reduce
    /// output plus a per-partial overhead — negligible for wordcount's
    /// 1.5 MB, prohibitive for selection's 40 GB.
    ClientMerge,
    /// The refined scheme: each sub-job's reduce folds the previous
    /// partial aggregate in, so the final result is ready when the last
    /// sub-job finishes ("the final aggregation of all output can be
    /// started earlier without introducing a significant overhead").
    /// Modeled as a small constant finalization latency.
    Incremental,
}

/// Policy of the priority-aware S³ variant.
///
/// High- and normal-priority jobs are merged into every sub-job as usual.
/// Low-priority jobs are admitted only while the merged width stays below
/// the cap; otherwise they are deferred an iteration. Deferral is safe
/// under the circular scan: a deferred job's missed segments simply come
/// around again on the next revolution, so it still reads every block
/// exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityPolicy {
    /// Maximum merged width (number of jobs) at which low-priority jobs
    /// may still join a sub-job.
    pub low_priority_width_cap: u32,
}

impl Default for S3Config {
    fn default() -> Self {
        S3Config {
            // Five waves per sub-job: on the paper cluster (40 slots) over
            // the 2560-block dataset this yields 13 sub-jobs per job,
            // matching the sub-job count reported for Figure 4(b).
            sizing: SubJobSizing::Waves(5),
            slot_check_period_s: None,
            slow_node_threshold: 0.5,
            jqm_latency_s: 1.8,
            priority_policy: None,
            output_collection: OutputCollection::PartialFiles,
        }
    }
}

/// An active job inside a scan's Job Queue.
#[derive(Debug, Clone)]
struct ActiveJob {
    id: JobId,
    /// Scheduling priority (used only by the priority-aware extension).
    priority: Priority,
    /// Blocks this job still needs scheduled (starts at the file's block
    /// count and reaches zero when its circular sweep completes).
    blocks_remaining: u32,
    /// Sub-job batches containing this job that have not fully completed.
    outstanding_batches: u32,
    /// Sub-jobs created for this job (diagnostics; the paper's "number of
    /// rounds required to complete the job").
    subjobs_created: u32,
}

/// Per-file circular scan state.
#[derive(Debug)]
struct ScanState {
    blocks: Vec<BlockId>,
    /// Index into `blocks` of the next block to schedule.
    cursor: u32,
    /// The Job Queue: jobs currently being served by this scan.
    queue: Vec<ActiveJob>,
    /// Jobs that finished scanning but still have reduces outstanding.
    draining: Vec<ActiveJob>,
    /// Key of the batch currently in its map phase, if any.
    current: Option<BatchKey>,
}

/// The S³ scheduler.
#[derive(Debug)]
pub struct S3Scheduler {
    config: S3Config,
    scans: BTreeMap<FileId, ScanState>,
    batches: BTreeMap<BatchKey, (FileId, Batch)>,
    next_key: u64,
    /// Nodes currently considered healthy (all, until slot checking runs).
    unhealthy: Vec<NodeId>,
    healthy_slots: Option<u32>,
    slot_check_armed: bool,
    total_subjobs: u64,
    /// Jobs whose partial outputs are being merged: `(job, due time)`.
    finalizing: Vec<(JobId, s3_sim::SimTime)>,
    /// Round-robin cursor over concurrent per-file scans (fair slot
    /// sharing between files).
    scan_rotation: u64,
}

impl Default for S3Scheduler {
    fn default() -> Self {
        Self::new(S3Config::default())
    }
}

impl S3Scheduler {
    /// Create with the given configuration.
    pub fn new(config: S3Config) -> Self {
        assert!(
            config.slow_node_threshold > 0.0 && config.slow_node_threshold <= 1.0,
            "slow-node threshold must be in (0, 1]"
        );
        S3Scheduler {
            config,
            scans: BTreeMap::new(),
            batches: BTreeMap::new(),
            next_key: 0,
            unhealthy: Vec::new(),
            healthy_slots: None,
            slot_check_armed: false,
            total_subjobs: 0,
            finalizing: Vec::new(),
            scan_rotation: 0,
        }
    }

    /// Number of merged sub-jobs submitted so far (diagnostics).
    pub fn total_subjobs(&self) -> u64 {
        self.total_subjobs
    }

    fn subjob_blocks(&self, ctx: &SchedCtx<'_>) -> u32 {
        let slots = ctx.map_slots().max(1);
        match self.config.sizing {
            SubJobSizing::FixedBlocks(b) => b.max(1),
            SubJobSizing::Waves(w) => w.max(1) * slots,
            SubJobSizing::Dynamic { waves } => {
                let healthy = self.healthy_slots.unwrap_or(slots).max(1);
                waves.max(1) * healthy
            }
        }
    }

    /// Algorithm 1, one iteration: if the scan has no sub-job in its map
    /// phase and jobs are waiting, merge them over the next segment and
    /// submit the merged sub-job.
    fn try_launch(&mut self, ctx: &mut SchedCtx<'_>, file: FileId) {
        let size = self.subjob_blocks(ctx);
        let scan = self.scans.get_mut(&file).expect("scan exists");
        if scan.current.is_some() || scan.queue.is_empty() {
            return;
        }

        // Select the jobs merged into this sub-job. Baseline S3 merges
        // everyone in the queue; the priority-aware extension admits
        // high/normal jobs always and low-priority jobs only while the
        // merged width stays under the cap (deferred jobs catch the missed
        // segments on the scan's next revolution).
        let participants: Vec<usize> = match self.config.priority_policy {
            None => (0..scan.queue.len()).collect(),
            Some(policy) => {
                let mut chosen: Vec<usize> = (0..scan.queue.len())
                    .filter(|&i| scan.queue[i].priority >= Priority::Normal)
                    .collect();
                for i in 0..scan.queue.len() {
                    if scan.queue[i].priority == Priority::Low
                        && (chosen.len() as u32) < policy.low_priority_width_cap.max(1)
                    {
                        chosen.push(i);
                    }
                }
                if chosen.is_empty() {
                    // Starvation guard: with only low-priority jobs queued
                    // and a zero cap, still admit the oldest one.
                    chosen.push(0);
                }
                chosen.sort_unstable();
                chosen
            }
        };

        // Alignment constraint: a sub-job may not overrun any member job's
        // remaining span, otherwise that job would rescan data it already
        // processed after the cursor wraps past its entry point.
        let min_remaining = participants
            .iter()
            .map(|&i| scan.queue[i].blocks_remaining)
            .min()
            .expect("non-empty participant set");
        debug_assert!(min_remaining > 0, "finished job left in queue");
        let n = scan.blocks.len() as u32;
        let take = size.min(min_remaining).min(n);

        // The segment: `take` consecutive blocks from the cursor, circular.
        let seg_blocks: Vec<BlockId> = (0..take)
            .map(|i| scan.blocks[((scan.cursor + i) % n) as usize])
            .collect();
        scan.cursor = (scan.cursor + take) % n;

        let jobs: Vec<JobId> = participants.iter().map(|&i| scan.queue[i].id).collect();
        for &i in &participants {
            let job = &mut scan.queue[i];
            job.blocks_remaining -= take;
            job.outstanding_batches += 1;
            job.subjobs_created += 1;
        }

        let key = BatchKey(self.next_key);
        self.next_key += 1;
        self.total_subjobs += 1;
        // Record dynamic sub-job adjustment in the trace: this launch was
        // sized from the sampled healthy slot count, not the static total.
        if matches!(self.config.sizing, SubJobSizing::Dynamic { .. })
            && self.healthy_slots.is_some_and(|h| h != ctx.map_slots())
        {
            ctx.note_subjob_adjusted(key, jobs.clone());
        }
        // Runtime sub-job initialization (Section IV-D-3): the JQM holds a
        // persistent job context and pre-stages the next batch while the
        // current one runs, so a merged sub-job pays only per-task
        // initialization — not the full job-submission base cost a fresh
        // Hadoop job (FIFO job or MRShare batch) pays.
        let ready = ctx.now
            + SimDuration::from_secs_f64(
                self.config.jqm_latency_s
                    + ctx.cost.task_init_s_per_task * seg_blocks.len() as f64,
            );
        let batch = Batch::new(key, jobs, &seg_blocks, ctx.jobs, ctx.dfs, ready, ctx.map_slots());
        scan.current = Some(key);

        // Jobs whose sweep just completed leave the queue and drain their
        // outstanding reduces.
        let (done, still): (Vec<ActiveJob>, Vec<ActiveJob>) = scan
            .queue
            .drain(..)
            .partition(|j| j.blocks_remaining == 0);
        scan.queue = still;
        scan.draining.extend(done);

        self.batches.insert(key, (file, batch));
    }

    /// Handle a fully completed batch: decrement outstanding counts and
    /// report jobs whose work is entirely done.
    fn on_batch_complete(&mut self, ctx: &mut SchedCtx<'_>, key: BatchKey) {
        let (file, batch) = self.batches.remove(&key).expect("unknown batch");
        let scan = self.scans.get_mut(&file).expect("scan exists");
        let mut finished_jobs = Vec::new();
        for &job in batch.jobs() {
            if let Some(j) = scan.queue.iter_mut().find(|j| j.id == job) {
                j.outstanding_batches -= 1;
            } else if let Some(pos) = scan.draining.iter().position(|j| j.id == job) {
                scan.draining[pos].outstanding_batches -= 1;
                if scan.draining[pos].outstanding_batches == 0 {
                    finished_jobs.push(scan.draining.remove(pos));
                }
            } else {
                unreachable!("job in batch but not tracked by its scan");
            }
        }
        for finished in finished_jobs {
            self.finish_with_output_collection(ctx, file, finished);
        }
    }

    /// Apply the configured output-collection scheme before declaring the
    /// job complete: the `k` per-sub-job partial outputs may need a final
    /// merge (Section V-G).
    fn finish_with_output_collection(
        &mut self,
        ctx: &mut SchedCtx<'_>,
        file: FileId,
        finished: ActiveJob,
    ) {
        let finalize_s = match self.config.output_collection {
            OutputCollection::PartialFiles => 0.0,
            OutputCollection::Incremental => 0.5,
            OutputCollection::ClientMerge => {
                let profile = &ctx.jobs.get(finished.id).profile;
                let file_mb = ctx.dfs.file(file).size_bytes as f64 / s3_dfs::MB as f64;
                let out_mb = profile.reduce_output_mb(profile.map_output_mb(file_mb));
                // Open each partial, stream everything over the network,
                // write the merged result once.
                0.1 * finished.subjobs_created as f64
                    + 2.0 * out_mb / ctx.cost.shuffle_mb_s(ctx.cluster.network())
            }
        };
        if finalize_s <= 0.0 {
            ctx.complete_job(finished.id);
        } else {
            let due = ctx.now + SimDuration::from_secs_f64(finalize_s);
            self.finalizing.push((finished.id, due));
            ctx.request_wakeup(due);
        }
    }

    fn arm_slot_check(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.slot_check_armed {
            return;
        }
        if let Some(period) = self.config.slot_check_period_s {
            ctx.request_wakeup(ctx.now + SimDuration::from_secs_f64(period));
            self.slot_check_armed = true;
        }
    }
}

impl Scheduler for S3Scheduler {
    fn name(&self) -> String {
        "S3".into()
    }

    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
        self.arm_slot_check(ctx);
        let req = ctx.jobs.get(job);
        let file = req.file;
        let blocks = ctx.dfs.file(file).blocks.clone();
        let num_blocks = blocks.len() as u32;
        let scan = self.scans.entry(file).or_insert_with(|| ScanState {
            blocks,
            cursor: 0,
            queue: Vec::new(),
            draining: Vec::new(),
            current: None,
        });
        // The job enters the Job Queue at the *next* segment to be
        // scheduled (the cursor): alignment is automatic.
        scan.queue.push(ActiveJob {
            id: job,
            priority: req.priority,
            blocks_remaining: num_blocks,
            outstanding_batches: 0,
            subjobs_created: 0,
        });
        self.try_launch(ctx, file);
    }

    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec> {
        if self.unhealthy.contains(&node) {
            return None; // excluded by periodic slot checking
        }
        // Walk each scan's current sub-job. With several files being
        // scanned concurrently, rotate the starting scan per assignment so
        // slots are shared fairly between files instead of always feeding
        // the lowest file id first — the paper's closing suggestion of
        // integrating shared-scan scheduling with partial (fair) resource
        // utilization.
        let keys: Vec<BatchKey> = self
            .scans
            .values()
            .filter_map(|scan| scan.current)
            .collect();
        if keys.is_empty() {
            return None;
        }
        let start = (self.scan_rotation as usize) % keys.len();
        self.scan_rotation = self.scan_rotation.wrapping_add(1);
        for i in 0..keys.len() {
            let key = keys[(start + i) % keys.len()];
            let (_, batch) = self.batches.get_mut(&key).expect("current batch exists");
            if let Some(spec) = batch.next_map_for(node, ctx.now, ctx.dfs, ctx.cluster) {
                return Some(spec);
            }
        }
        None
    }

    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<ReduceTaskSpec> {
        if self.unhealthy.contains(&node) {
            return None;
        }
        self.batches
            .values_mut()
            .find_map(|(_, b)| b.next_reduce(ctx.now))
    }

    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        let key = spec.batch;
        let maps_complete = {
            let (_, batch) = self.batches.get_mut(&key).expect("unknown batch");
            batch.on_map_done();
            batch.maps_complete()
        };
        if maps_complete {
            // This sub-job leaves its map phase: the next iteration of
            // Algorithm 1 can launch while its reduces drain.
            let (file, _) = self.batches[&key];
            let scan = self.scans.get_mut(&file).expect("scan exists");
            if scan.current == Some(key) {
                scan.current = None;
            }
            if self.batches[&key].1.is_complete() {
                // Map-only batches finish right here.
                self.on_batch_complete(ctx, key);
            }
            self.try_launch(ctx, file);
        }
    }

    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        let key = spec.batch;
        let complete = {
            let (_, batch) = self.batches.get_mut(&key).expect("unknown batch");
            batch.on_reduce_done()
        };
        if complete {
            self.on_batch_complete(ctx, key);
        }
    }

    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        // The merged sub-job is still in its map phase (a lost map means
        // its maps were not complete), so it is still the scan's current
        // batch and the block will be re-handed to a surviving node.
        let (_, batch) = self.batches.get_mut(&spec.batch).expect("unknown batch");
        batch.requeue_map(spec.block);
    }

    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        let (_, batch) = self.batches.get_mut(&spec.batch).expect("unknown batch");
        batch.requeue_reduce(spec.partition);
    }

    fn on_wakeup(&mut self, ctx: &mut SchedCtx<'_>) {
        // Output-collection finalizations that have come due.
        let now = ctx.now;
        let mut i = 0;
        while i < self.finalizing.len() {
            if self.finalizing[i].1 <= now {
                let (job, _) = self.finalizing.swap_remove(i);
                ctx.complete_job(job);
            } else {
                i += 1;
            }
        }

        let Some(period) = self.config.slot_check_period_s else {
            return;
        };
        // Periodic slot checking: sample every node's effective speed and
        // exclude the slow ones from the next round of computation. State
        // *changes* (a node newly excluded, or a previously slow node
        // recovering and being re-admitted) are recorded in the trace so
        // the invariant checker can prove no excluded slot got work.
        let previously = std::mem::take(&mut self.unhealthy);
        let mut healthy_slots = 0u32;
        for node in ctx.cluster.nodes() {
            let nominal = node.spec.speed_factor.max(f64::MIN_POSITIVE);
            let effective = ctx.effective_speed(node.id);
            if effective / nominal < self.config.slow_node_threshold {
                self.unhealthy.push(node.id);
                if !previously.contains(&node.id) {
                    ctx.note_slot_excluded(node.id);
                }
            } else {
                healthy_slots += node.spec.map_slots;
                if previously.contains(&node.id) {
                    ctx.note_slot_readmitted(node.id);
                }
            }
        }
        self.healthy_slots = Some(healthy_slots.max(1));
        ctx.request_wakeup(ctx.now + SimDuration::from_secs_f64(period));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_cluster::{ClusterTopology, SlowdownSchedule, SpeedProfile};
    use s3_dfs::{Dfs, RoundRobinPlacement, MB};
    use s3_mapreduce::{simulate, CostModel, EngineConfig, JobProfile, RunMetrics};
    use s3_sim::SimTime;
    use std::sync::Arc;

    fn world(blocks: u64) -> (ClusterTopology, Dfs, FileId) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        (cluster, dfs, file)
    }

    fn wc_profile() -> Arc<JobProfile> {
        Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        })
    }

    fn run_with(
        sched: &mut S3Scheduler,
        blocks: u64,
        arrivals: &[f64],
        slowdowns: &SlowdownSchedule,
    ) -> RunMetrics {
        let (cluster, dfs, file) = world(blocks);
        let workload = s3_mapreduce::job::requests_from_arrivals(&wc_profile(), file, arrivals);
        simulate(
            &cluster,
            slowdowns,
            &dfs,
            &CostModel::deterministic(),
            &workload,
            sched,
            &EngineConfig::default(),
        )
        .unwrap()
    }

    fn run(blocks: u64, arrivals: &[f64]) -> RunMetrics {
        run_with(
            &mut S3Scheduler::default(),
            blocks,
            arrivals,
            &SlowdownSchedule::none(),
        )
    }

    #[test]
    fn single_job_scans_file_once() {
        let m = run(80, &[0.0]);
        assert_eq!(m.outcomes.len(), 1);
        assert_eq!(m.blocks_read, 80);
        assert!(m.tet().as_secs_f64() > 5.0);
    }

    #[test]
    fn overlapping_jobs_share_most_of_the_scan() {
        // Job 2 arrives early in job 1's scan: most blocks are read once
        // for both jobs.
        let m = run(400, &[0.0, 5.0]);
        // Total reads must be far less than two full scans, but at least
        // one full scan plus what job 1 did alone.
        assert!(m.blocks_read > 400, "blocks {}", m.blocks_read);
        assert!(m.blocks_read < 650, "blocks {}", m.blocks_read);
        assert!(m.mb_saved() > 0.0);
        // Both jobs' responses are near the single-job time: neither waited.
        let r: Vec<f64> = m.outcomes.iter().map(|o| o.response().as_secs_f64()).collect();
        let single = run(400, &[0.0]).tet().as_secs_f64();
        for resp in &r {
            assert!(
                *resp < 1.6 * single,
                "response {resp} vs single-job {single}"
            );
        }
    }

    #[test]
    fn late_job_starts_mid_scan_and_wraps() {
        // With 400 blocks (2 sub-jobs of 200 under Waves(5) on 40 slots),
        // a job arriving during sub-job 1 starts at the cursor and wraps.
        let mut sched = S3Scheduler::default();
        let m = run_with(&mut sched, 400, &[0.0, 8.0], &SlowdownSchedule::none());
        assert_eq!(m.outcomes.len(), 2);
        // Job 1's response is not delayed by a full extra scan.
        let r1 = m.outcomes[1].response().as_secs_f64();
        let r0 = m.outcomes[0].response().as_secs_f64();
        assert!(r1 < r0 * 2.0, "r0={r0} r1={r1}");
    }

    #[test]
    fn subjob_count_matches_geometry() {
        // 400 blocks / (5 waves x 40 slots) = 2 sub-jobs for a lone job.
        let mut sched = S3Scheduler::default();
        run_with(&mut sched, 400, &[0.0], &SlowdownSchedule::none());
        assert_eq!(sched.total_subjobs(), 2);
    }

    #[test]
    fn fixed_block_sizing() {
        let mut sched = S3Scheduler::new(S3Config {
            sizing: SubJobSizing::FixedBlocks(40),
            ..S3Config::default()
        });
        run_with(&mut sched, 200, &[0.0], &SlowdownSchedule::none());
        assert_eq!(sched.total_subjobs(), 5);
    }

    #[test]
    fn every_job_sees_every_block_exactly_once() {
        // Three staggered jobs over a small file: each job's total scanned
        // block count must equal the file size (no skips, no rescans).
        // logical_mb_scanned counts block_mb x jobs per scan, so the sum
        // equals jobs x file_mb exactly when each job covers the file once.
        let m = run(120, &[0.0, 3.0, 6.0]);
        let file_mb = 120.0 * 64.0;
        assert!(
            (m.logical_mb_scanned - 3.0 * file_mb).abs() < 1e-6,
            "each job must scan the file exactly once: {} vs {}",
            m.logical_mb_scanned,
            3.0 * file_mb
        );
    }

    #[test]
    fn slot_checking_excludes_slow_nodes() {
        // Node 7 runs at 10% speed from t=0: with slot checking on, S3
        // must flag and exclude it and still finish; the no-stall case is
        // implicit in simulate() returning Ok.
        let slowdowns = SlowdownSchedule::none().with(
            NodeId(7),
            SpeedProfile::nominal().change_at(SimTime::ZERO, 0.1),
        );
        let mut sched = S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Dynamic { waves: 5 },
            slot_check_period_s: Some(5.0),
            slow_node_threshold: 0.5,
            ..S3Config::default()
        });
        let m = run_with(&mut sched, 200, &[0.0], &slowdowns);
        assert_eq!(m.outcomes.len(), 1);
        assert!(!sched.unhealthy.is_empty(), "node 7 should be flagged");
        assert_eq!(sched.healthy_slots, Some(39));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(200, &[0.0, 10.0]);
        let b = run(200, &[0.0, 10.0]);
        assert_eq!(a.tet(), b.tet());
        assert_eq!(a.art(), b.art());
        assert_eq!(a.blocks_read, b.blocks_read);
    }

    #[test]
    fn jobs_on_different_files_scan_independently() {
        // Two files, one job each plus one sharing pair: the scheduler
        // keeps an independent circular scan per file and stays
        // deterministic (ordered scan map).
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file_a = dfs
            .create_file(&cluster, "a", 600 * 64 * MB, 64 * MB, 1,
                &mut RoundRobinPlacement::default())
            .unwrap();
        let file_b = dfs
            .create_file(&cluster, "b", 400 * 64 * MB, 64 * MB, 1,
                &mut RoundRobinPlacement { offset: 7 })
            .unwrap();
        let profile = wc_profile();
        let mk = |id: u32, file, t: f64| s3_mapreduce::JobRequest {
            id: s3_mapreduce::JobId(id),
            profile: std::sync::Arc::clone(&profile),
            file,
            submit: SimTime::from_secs_f64(t),
            priority: s3_mapreduce::Priority::Normal,
        };
        let workload = vec![
            mk(0, file_a, 0.0),
            mk(1, file_b, 2.0),
            mk(2, file_a, 4.0),
        ];
        let run = |seed: u64| {
            simulate(
                &cluster,
                &SlowdownSchedule::none(),
                &dfs,
                &CostModel::deterministic(),
                &workload,
                &mut S3Scheduler::default(),
                &EngineConfig { seed, ..EngineConfig::default() },
            )
            .unwrap()
        };
        let m = run(1);
        assert_eq!(m.outcomes.len(), 3);
        // Jobs 0 and 2 share file A's scan; job 1 scans file B alone:
        // logical volume = 2x fileA + 1x fileB.
        let expected = 2.0 * 600.0 * 64.0 + 400.0 * 64.0;
        assert!((m.logical_mb_scanned - expected).abs() < 1e-6);
        // Sharing happened on file A.
        assert!(m.mb_read < expected);
        // Deterministic across runs despite two concurrent scans.
        let m2 = run(1);
        assert_eq!(m.tet(), m2.tet());
        assert_eq!(m.blocks_read, m2.blocks_read);
    }

    #[test]
    fn concurrent_scans_share_slots_fairly() {
        // Two equal files with one job each, submitted together: the
        // rotating scan cursor should let both make progress concurrently
        // instead of feeding the lower file id first, so the completion
        // times land close together (each job gets ~half the slots).
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file_a = dfs
            .create_file(&cluster, "a", 400 * 64 * MB, 64 * MB, 1,
                &mut RoundRobinPlacement::default())
            .unwrap();
        let file_b = dfs
            .create_file(&cluster, "b", 400 * 64 * MB, 64 * MB, 1,
                &mut RoundRobinPlacement { offset: 11 })
            .unwrap();
        let profile = wc_profile();
        let mk = |id: u32, file| s3_mapreduce::JobRequest {
            id: s3_mapreduce::JobId(id),
            profile: std::sync::Arc::clone(&profile),
            file,
            submit: SimTime::ZERO,
            priority: s3_mapreduce::Priority::Normal,
        };
        let workload = vec![mk(0, file_a), mk(1, file_b)];
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut S3Scheduler::default(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(m.outcomes.len(), 2);
        let done: Vec<f64> = m
            .outcomes
            .iter()
            .map(|o| o.completed.as_secs_f64())
            .collect();
        let gap = (done[0] - done[1]).abs();
        let span = m.tet().as_secs_f64();
        assert!(
            gap < 0.25 * span,
            "files should finish near-simultaneously: {done:?} (gap {gap:.1}s of {span:.1}s)"
        );
    }

    #[test]
    fn priority_policy_defers_low_jobs_but_completes_them() {
        use s3_mapreduce::job::requests_with_priorities;
        use s3_mapreduce::Priority;

        let (cluster, dfs, file) = world(400);
        // One high-priority job and three low-priority jobs arriving
        // together; cap the merge width at 2 so lows take turns.
        let workload = requests_with_priorities(
            &wc_profile(),
            file,
            &[
                (0.0, Priority::High),
                (0.1, Priority::Low),
                (0.2, Priority::Low),
                (0.3, Priority::Low),
            ],
        );
        let mut prio = S3Scheduler::new(S3Config {
            priority_policy: Some(PriorityPolicy {
                low_priority_width_cap: 2,
            }),
            ..S3Config::default()
        });
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut prio,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(m.outcomes.len(), 4, "deferred jobs must still finish");
        // Every job still scans the whole file exactly once.
        let expected = 4.0 * 400.0 * 64.0;
        assert!((m.logical_mb_scanned - expected).abs() < 1e-6);
        // The high-priority job responds fastest.
        let r: Vec<f64> = m
            .outcomes
            .iter()
            .map(|o| o.response().as_secs_f64())
            .collect();
        assert!(
            r[0] <= r[1] && r[0] <= r[2] && r[0] <= r[3],
            "high-priority job must respond first: {r:?}"
        );
        // Deferred low jobs respond slower than they would unprioritized.
        let mut baseline = S3Scheduler::default();
        let base = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut baseline,
            &EngineConfig::default(),
        )
        .unwrap();
        let base_r3 = base.outcomes[3].response().as_secs_f64();
        assert!(
            r[3] > base_r3,
            "capped low job should be slower: {} vs {base_r3}",
            r[3]
        );
    }

    #[test]
    fn output_collection_schemes_order_correctly() {
        // PartialFiles is free, Incremental adds a small constant, and
        // ClientMerge pays for streaming the whole output — which for a
        // selection-like profile (output == input/10) is substantial.
        let run_with_collection = |collection: OutputCollection,
                                   profile: std::sync::Arc<s3_mapreduce::JobProfile>|
         -> f64 {
            let (cluster, dfs, file) = world(400);
            let workload =
                s3_mapreduce::job::requests_from_arrivals(&profile, file, &[0.0]);
            let mut sched = S3Scheduler::new(S3Config {
                output_collection: collection,
                ..S3Config::default()
            });
            simulate(
                &cluster,
                &SlowdownSchedule::none(),
                &dfs,
                &CostModel::deterministic(),
                &workload,
                &mut sched,
                &EngineConfig::default(),
            )
            .unwrap()
            .tet()
            .as_secs_f64()
        };

        let wc = wc_profile();
        let partial = run_with_collection(OutputCollection::PartialFiles, wc.clone());
        let incremental = run_with_collection(OutputCollection::Incremental, wc.clone());
        let merged = run_with_collection(OutputCollection::ClientMerge, wc.clone());
        // Both schemes add a finalization step over raw partial files; for
        // wordcount's ~1.5 MB output even the client merge is tiny (and
        // can undercut Incremental's constant).
        assert!(partial < incremental, "{partial} vs {incremental}");
        assert!(partial < merged, "{partial} vs {merged}");
        assert!(merged - partial < 5.0, "wordcount merge is tiny");

        // A selection-style job (big output) makes ClientMerge expensive.
        let sel = std::sync::Arc::new(s3_mapreduce::JobProfile {
            name: "sel".into(),
            map_cpu_s_per_mb: 0.004,
            map_output_ratio: 0.10,
            map_output_records_per_mb: 800.0,
            reduce_cpu_s_per_mb: 0.002,
            reduce_output_ratio: 1.0,
            num_reduce_tasks: 30,
        });
        let sel_partial = run_with_collection(OutputCollection::PartialFiles, sel.clone());
        let sel_merged = run_with_collection(OutputCollection::ClientMerge, sel);
        assert!(
            sel_merged > sel_partial + 20.0,
            "selection merge must be expensive: {sel_partial} vs {sel_merged}"
        );
    }

    #[test]
    fn only_low_priority_jobs_are_not_starved() {
        use s3_mapreduce::job::requests_with_priorities;
        use s3_mapreduce::Priority;

        let (cluster, dfs, file) = world(200);
        let workload = requests_with_priorities(
            &wc_profile(),
            file,
            &[(0.0, Priority::Low), (5.0, Priority::Low)],
        );
        let mut prio = S3Scheduler::new(S3Config {
            priority_policy: Some(PriorityPolicy {
                low_priority_width_cap: 0,
            }),
            ..S3Config::default()
        });
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut prio,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(m.outcomes.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        S3Scheduler::new(S3Config {
            slow_node_threshold: 0.0,
            ..S3Config::default()
        });
    }
}
