//! Structured runtime tracing: a sharded ring-buffer recorder of spans and
//! instants with thread/job/segment ids.
//!
//! Recording is designed for the engine's hot loops:
//!
//! - the enabled check is one relaxed atomic load;
//! - an event is a fixed-size `Copy` struct (`&'static str` name, numeric
//!   ids) — no allocation, no formatting;
//! - events land in one of [`crate::metrics::SHARDS`] fixed-capacity ring
//!   buffers keyed by the calling thread, so writers rarely contend; a
//!   full ring overwrites its oldest event and counts the drop.
//!
//! [`TraceRecorder::drain`] merges the shards into one time-ordered
//! `Vec<Event>`; [`crate::chrome`] turns that into a Perfetto-loadable
//! file.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Sentinel for "no id" in [`Ids`] fields.
pub const NO_ID: u64 = u64::MAX;

/// Default ring capacity per shard (events retained ≈ this × shard count).
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

/// Event kind, mapping onto Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A completed interval (`ph: "X"` — start + duration).
    Span,
    /// A point event (`ph: "i"`).
    Instant,
}

/// Identity attached to an event. All fields default to [`NO_ID`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ids {
    /// Job id, or [`NO_ID`].
    pub job: u64,
    /// Segment index, or [`NO_ID`].
    pub seg: u64,
    /// Reduce shard index, or [`NO_ID`]. A dedicated field: packing the
    /// shard into `job` or `n` made `reduce_shard` spans ambiguous across
    /// concurrent jobs.
    pub shard: u64,
    /// Free-form count (active jobs in a segment span, bytes in a spill
    /// span…), or [`NO_ID`].
    pub n: u64,
}

impl Default for Ids {
    fn default() -> Self {
        Ids::none()
    }
}

impl Ids {
    /// No ids at all.
    pub fn none() -> Self {
        Ids {
            job: NO_ID,
            seg: NO_ID,
            shard: NO_ID,
            n: NO_ID,
        }
    }

    /// Ids for a job-scoped event.
    pub fn job(job: u64) -> Self {
        Ids { job, ..Ids::none() }
    }

    /// Ids for a segment-scoped event.
    pub fn seg(seg: u64) -> Self {
        Ids { seg, ..Ids::none() }
    }

    /// Attach a reduce shard index.
    pub fn shard(mut self, shard: u64) -> Self {
        self.shard = shard;
        self
    }

    /// Attach a free-form count.
    pub fn jobs(mut self, n: u64) -> Self {
        self.n = n;
        self
    }
}

/// One recorded event. Fixed-size and `Copy`: recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Static event name (`"segment"`, `"submit"`, …).
    pub name: &'static str,
    /// Span or instant.
    pub ph: Phase,
    /// Small per-thread track id (see [`TraceRecorder::thread_tid`]).
    pub tid: u64,
    /// Job/segment/count identity.
    pub ids: Ids,
}

struct Ring {
    buf: Vec<Event>,
    /// Next write position (buf wraps once len == capacity).
    head: usize,
}

/// The recorder: an enable flag, an epoch, and the sharded rings.
pub struct TraceRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    shards: Vec<Mutex<Ring>>,
    dropped: AtomicU64,
}

/// Small dense per-thread track id, assigned on first use. Distinct from
/// the metrics shard id: tids must be unique per thread (they name
/// Perfetto tracks), while shards may be shared.
fn thread_tid() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(1);
        let v = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
        t.set(v);
        v
    })
}

impl TraceRecorder {
    /// A recorder with `capacity` events per shard, enabled.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs capacity");
        TraceRecorder {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            capacity,
            shards: (0..crate::metrics::SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: Vec::new(),
                        head: 0,
                    })
                })
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether recording is on (one relaxed load — the cost of a disabled
    /// recorder).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Off drops new events but keeps what the
    /// rings already hold.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since this recorder's epoch (monotonic).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The calling thread's stable track id.
    pub fn thread_tid(&self) -> u64 {
        thread_tid()
    }

    /// Events overwritten because a shard ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    #[inline]
    fn push(&self, ev: Event) {
        // Shard by tid so one thread's events stay ordered within a ring.
        let mut ring = self.shards[(ev.tid as usize) % self.shards.len()].lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
            ring.head = ring.buf.len() % self.capacity;
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an instant event on the calling thread.
    #[inline]
    pub fn instant(&self, name: &'static str, ids: Ids) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            ts_us: self.now_us(),
            dur_us: 0,
            name,
            ph: Phase::Instant,
            tid: thread_tid(),
            ids,
        });
    }

    /// Record a completed span that started at `start_us` (from
    /// [`TraceRecorder::now_us`]) and ends now, on the calling thread.
    #[inline]
    pub fn span(&self, name: &'static str, start_us: u64, ids: Ids) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_us();
        self.push(Event {
            ts_us: start_us,
            dur_us: now.saturating_sub(start_us),
            name,
            ph: Phase::Span,
            tid: thread_tid(),
            ids,
        });
    }

    /// Take every recorded event, time-ordered; the rings are left empty.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock();
            out.append(&mut ring.buf);
            ring.head = 0;
        }
        out.sort_by_key(|e| (e.ts_us, e.tid));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_drain_in_time_order() {
        let t = TraceRecorder::new(64);
        let s0 = t.now_us();
        t.instant("a", Ids::job(1));
        t.span("b", s0, Ids::seg(2).jobs(3));
        let evs = t.drain();
        assert_eq!(evs.len(), 2);
        assert!(evs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        let span = evs.iter().find(|e| e.name == "b").unwrap();
        assert_eq!(span.ph, Phase::Span);
        assert_eq!(span.ids.seg, 2);
        assert_eq!(span.ids.n, 3);
        assert!(t.drain().is_empty(), "drain empties the rings");
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let t = TraceRecorder::new(64);
        t.set_enabled(false);
        t.instant("x", Ids::none());
        assert!(t.drain().is_empty());
        t.set_enabled(true);
        t.instant("y", Ids::none());
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let t = TraceRecorder::new(4);
        for _ in 0..10 {
            t.instant("e", Ids::none());
        }
        // All events land on one thread => one shard => capacity 4.
        assert_eq!(t.drain().len(), 4);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn concurrent_recording_keeps_every_event_under_capacity() {
        let t = std::sync::Arc::new(TraceRecorder::new(10_000));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.instant("e", Ids::none());
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.drain().len(), 4000);
        assert_eq!(t.dropped(), 0);
    }
}
