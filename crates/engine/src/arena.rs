//! Per-worker token arena/interner for the fold-combiner fast path.
//!
//! [`TokenMap`] is an open-addressing hash map keyed by byte strings whose
//! key storage is one append-only arena buffer: the first occurrence of a
//! token copies its bytes into the arena; every later occurrence only probes
//! the index table and folds into the existing value. Nothing is allocated
//! per occurrence — the engines materialize each **distinct** token's real
//! key type exactly once, at flush time, via
//! [`MapReduceJob::token_key`](crate::MapReduceJob::token_key).
//!
//! The hot path is tuned for short tokens (words): a token of at most 8
//! bytes is packed little-endian into a `u64` that is stored **inline in
//! the table slot**, so a repeat occurrence — the overwhelmingly common
//! case in a wordcount-shaped workload — is resolved with one slot load
//! and one `u64`+length compare, never touching the arena. Longer tokens
//! keep a 64-bit hash in the slot and fall back to an arena byte compare.

/// One interned token: where its bytes live in the arena and the folded
/// value.
struct Entry<V> {
    off: u32,
    len: u32,
    value: V,
}

/// One index slot: the inline key (packed bytes for short tokens, full
/// hash for long ones), the entry index + 1 (0 = empty), and the token
/// length (part of key identity — short tokens are zero-padded, and
/// tokens may legitimately contain NUL bytes).
#[derive(Clone, Copy)]
struct Slot {
    key: u64,
    idx: u32,
    len: u32,
}

const EMPTY: Slot = Slot { key: 0, idx: 0, len: 0 };

/// Multiplier from FxHash; any odd constant with good bit dispersion works.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Pack up to 8 token bytes little-endian into a `u64` (zero-padded).
/// Exact as a key when paired with the length: two short tokens are equal
/// iff their packed keys and lengths are equal.
#[inline]
fn key8(token: &[u8]) -> u64 {
    let mut k = 0u64;
    for (i, &b) in token.iter().enumerate() {
        k |= (b as u64) << (8 * i);
    }
    k
}

/// The inline key for a token of any length: packed bytes when they fit,
/// otherwise the full `fxhash`. Long-token equality is confirmed against
/// the arena, so hash collisions cost a compare, never a wrong answer.
#[inline]
fn inline_key(token: &[u8]) -> u64 {
    if token.len() <= 8 {
        key8(token)
    } else {
        fxhash::hash64(token)
    }
}

/// [`key8`] for a token borrowed from `hay`, loading 8 bytes in one shot
/// and masking to the token length whenever the buffer extends far enough
/// past the token start. The byte-shift loop in [`key8`] runs a
/// data-dependent number of iterations and mispredicts on every length
/// change; this path is branch-free for the common case.
///
/// `token` MUST be a subslice of `hay` — the offset is recovered from the
/// borrow itself.
#[inline]
fn short_key_within(hay: &[u8], token: &[u8]) -> u64 {
    debug_assert!(token.len() <= 8);
    let start = token.as_ptr() as usize - hay.as_ptr() as usize;
    debug_assert!(start + token.len() <= hay.len(), "token must borrow from hay");
    if !token.is_empty() && start + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[start..start + 8].try_into().unwrap());
        w & (u64::MAX >> (64 - 8 * token.len()))
    } else {
        key8(token)
    }
}

/// Table index seed: one multiply and a fold of the high bits (the low
/// bits of a product alone are poorly mixed, and the table is indexed by
/// low bits).
#[inline]
fn mix(key: u64, len: usize) -> u64 {
    let h = (key ^ (len as u64).rotate_left(61)).wrapping_mul(SEED);
    h ^ (h >> 32)
}

/// A byte-string-keyed fold map backed by a bump arena (see module docs).
pub struct TokenMap<V> {
    /// All distinct token bytes, concatenated in insertion order.
    arena: Vec<u8>,
    /// One entry per distinct token, in insertion order.
    entries: Vec<Entry<V>>,
    /// Open-addressing index: power-of-two table of [`Slot`]s.
    table: Vec<Slot>,
}

impl<V> Default for TokenMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> TokenMap<V> {
    /// An empty map. No allocation happens until the first insert.
    pub fn new() -> Self {
        TokenMap { arena: Vec::new(), entries: Vec::new(), table: Vec::new() }
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[cold]
    fn grow(&mut self) {
        // Jump straight to a table sized for real workloads: growth
        // rehashes are pure overhead on the hot path, and a worker-scoped
        // map that interns anything at all tends to intern thousands.
        let cap = (self.table.len() * 2).max(1024);
        self.table.clear();
        self.table.resize(cap, EMPTY);
        let mask = cap - 1;
        for (i, e) in self.entries.iter().enumerate() {
            let tok = &self.arena[e.off as usize..(e.off + e.len) as usize];
            let key = inline_key(tok);
            let mut slot = mix(key, tok.len()) as usize & mask;
            while self.table[slot].idx != 0 {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = Slot { key, idx: i as u32 + 1, len: e.len };
        }
    }

    /// Fold `value` into the accumulator for `token`, interning the token on
    /// first sight. `fold` merges an incoming value into the existing
    /// accumulator (same contract as
    /// [`MapReduceJob::combine_fold`](crate::MapReduceJob::combine_fold)).
    #[inline]
    pub fn upsert(&mut self, token: &[u8], value: V, fold: impl FnOnce(&mut V, V)) {
        self.upsert_keyed(token, inline_key(token), value, fold);
    }

    /// [`upsert`](Self::upsert) for a token that borrows from `hay` (e.g. a
    /// token the scan kernel just carved out of a block): the inline key is
    /// built with one unconditional 8-byte load instead of a variable-length
    /// byte loop. This is the scan engines' hot-loop entry point.
    ///
    /// # Panics
    /// May panic (or intern under a wrong key) if `token` is not actually a
    /// subslice of `hay`.
    #[inline]
    pub fn upsert_within(&mut self, hay: &[u8], token: &[u8], value: V, fold: impl FnOnce(&mut V, V)) {
        let key = if token.len() <= 8 {
            short_key_within(hay, token)
        } else {
            fxhash::hash64(token)
        };
        self.upsert_keyed(token, key, value, fold);
    }

    #[inline]
    fn upsert_keyed(&mut self, token: &[u8], key: u64, value: V, fold: impl FnOnce(&mut V, V)) {
        if self.table.is_empty() {
            self.grow();
        }
        let tl = token.len();
        let mask = self.table.len() - 1;
        let mut slot = mix(key, tl) as usize & mask;
        loop {
            let s = self.table[slot];
            if s.idx == 0 {
                return self.insert_cold(token, key, value);
            }
            if s.key == key && s.len as usize == tl {
                let e = &mut self.entries[s.idx as usize - 1];
                // Short tokens are fully identified by (key, len); long
                // tokens confirm the hash match against the arena bytes.
                if tl <= 8 || &self.arena[e.off as usize..(e.off + e.len) as usize] == token {
                    fold(&mut e.value, value);
                    return;
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// First sight of a token: intern it. Out of line so the (dominant)
    /// repeat-occurrence path stays small; the load-factor check lives here
    /// because only inserts can change the load factor.
    #[inline(never)]
    fn insert_cold(&mut self, token: &[u8], key: u64, value: V) {
        if (self.entries.len() + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let tl = token.len();
        let mask = self.table.len() - 1;
        let mut slot = mix(key, tl) as usize & mask;
        while self.table[slot].idx != 0 {
            slot = (slot + 1) & mask;
        }
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(token);
        self.entries.push(Entry { off, len: tl as u32, value });
        self.table[slot] = Slot { key, idx: self.entries.len() as u32, len: tl as u32 };
    }

    /// Consume the map, yielding each distinct token's bytes and folded
    /// value in insertion order.
    pub fn drain_into(self, mut f: impl FnMut(&[u8], V)) {
        let arena = self.arena;
        for e in self.entries {
            f(&arena[e.off as usize..(e.off + e.len) as usize], e.value);
        }
    }

    /// Visit each distinct token's bytes and value in insertion order
    /// without consuming the map (the weighted partitioner sketches token
    /// accumulators before the finish shards drain them).
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &V)) {
        for e in &self.entries {
            f(&self.arena[e.off as usize..(e.off + e.len) as usize], &e.value);
        }
    }

    /// Merge every (token, value) of `other` into `self` with `fold`.
    pub fn merge_from(&mut self, other: TokenMap<V>, mut fold: impl FnMut(&mut V, V)) {
        other.drain_into(|tok, v| self.upsert(tok, v, &mut fold));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn upsert_folds_per_distinct_token() {
        let mut m = TokenMap::new();
        for tok in [&b"apple"[..], b"pear", b"apple", b"apple", b"plum", b"pear"] {
            m.upsert(tok, 1i64, |a, n| *a += n);
        }
        assert_eq!(m.len(), 3);
        let mut got = BTreeMap::new();
        m.drain_into(|tok, v| {
            got.insert(tok.to_vec(), v);
        });
        assert_eq!(got[&b"apple".to_vec()], 3);
        assert_eq!(got[&b"pear".to_vec()], 2);
        assert_eq!(got[&b"plum".to_vec()], 1);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut m = TokenMap::new();
        let tokens: Vec<String> = (0..5000).map(|i| format!("tok{}", i % 1000)).collect();
        for t in &tokens {
            m.upsert(t.as_bytes(), 1u64, |a, n| *a += n);
        }
        assert_eq!(m.len(), 1000);
        let mut total = 0;
        m.drain_into(|_, v| total += v);
        assert_eq!(total, 5000);
    }

    #[test]
    fn merge_from_folds_across_maps() {
        let mut a = TokenMap::new();
        let mut b = TokenMap::new();
        a.upsert(b"x", 1i64, |x, n| *x += n);
        a.upsert(b"y", 2, |x, n| *x += n);
        b.upsert(b"y", 3, |x, n| *x += n);
        b.upsert(b"z", 4, |x, n| *x += n);
        a.merge_from(b, |x, n| *x += n);
        let mut got = BTreeMap::new();
        a.drain_into(|tok, v| {
            got.insert(tok.to_vec(), v);
        });
        assert_eq!(got[&b"x".to_vec()], 1);
        assert_eq!(got[&b"y".to_vec()], 5);
        assert_eq!(got[&b"z".to_vec()], 4);
    }

    #[test]
    fn empty_and_binary_tokens_are_valid_keys() {
        let mut m = TokenMap::new();
        m.upsert(b"", 1i64, |a, n| *a += n);
        m.upsert(b"\xff\x00\xfe", 2, |a, n| *a += n);
        m.upsert(b"", 10, |a, n| *a += n);
        assert_eq!(m.len(), 2);
        let mut got = BTreeMap::new();
        m.drain_into(|tok, v| {
            got.insert(tok.to_vec(), v);
        });
        assert_eq!(got[&b"".to_vec()], 11);
        assert_eq!(got[&b"\xff\x00\xfe".to_vec()], 2);
    }

    #[test]
    fn zero_padding_does_not_conflate_lengths() {
        // "ab" packs to the same u64 as "ab\0" — the length field must keep
        // them distinct (NUL is a token byte, not whitespace).
        let mut m = TokenMap::new();
        m.upsert(b"ab", 1i64, |a, n| *a += n);
        m.upsert(b"ab\x00", 10, |a, n| *a += n);
        m.upsert(b"ab", 1, |a, n| *a += n);
        assert_eq!(m.len(), 2);
        let mut got = BTreeMap::new();
        m.drain_into(|tok, v| {
            got.insert(tok.to_vec(), v);
        });
        assert_eq!(got[&b"ab".to_vec()], 2);
        assert_eq!(got[&b"ab\x00".to_vec()], 10);
    }

    #[test]
    fn long_tokens_fall_back_to_arena_compare() {
        let mut m = TokenMap::new();
        let long_a = b"a-fairly-long-token-well-past-eight-bytes";
        let long_b = b"another-long-token-also-past-eight-bytes!";
        m.upsert(long_a, 1i64, |a, n| *a += n);
        m.upsert(long_b, 2, |a, n| *a += n);
        m.upsert(long_a, 3, |a, n| *a += n);
        assert_eq!(m.len(), 2);
        let mut got = BTreeMap::new();
        m.drain_into(|tok, v| {
            got.insert(tok.to_vec(), v);
        });
        assert_eq!(got[&long_a.to_vec()], 4);
        assert_eq!(got[&long_b.to_vec()], 2);
    }
}
