//! `s3sim` — run declarative scenario files against the simulated cluster.
//!
//! ```text
//! s3sim template > my-scenario.json      # emit an editable template
//! s3sim run my-scenario.json             # run it, print the comparison
//! s3sim timeline my-scenario.json 0 96   # ASCII timeline of scheduler #0
//! ```

use s3_bench::scenario::ScenarioSpec;
use s3_cluster::NodeId;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  s3sim template\n  s3sim run <scenario.json>\n  s3sim timeline <scenario.json> <scheduler-index> [width]\n  s3sim svg <scenario.json> <scheduler-index> <out.svg>\n  s3sim trace <scenario.json> <scheduler-index> <out.jsonl>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("template") => {
            let spec = ScenarioSpec::template();
            println!(
                "{}",
                serde_json::to_string_pretty(&spec).expect("template serializes")
            );
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let spec = match load(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let runs = match spec.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("== scenario: {} ==", spec.name);
            println!(
                "{:<12} {:>10} {:>10} {:>12} {:>12}",
                "scheme", "TET(s)", "ART(s)", "blocks_read", "MB_saved"
            );
            for r in &runs {
                let m = &r.metrics;
                println!(
                    "{:<12} {:>10.1} {:>10.1} {:>12} {:>12.0}",
                    m.scheduler,
                    m.tet().as_secs_f64(),
                    m.art().as_secs_f64(),
                    m.blocks_read,
                    m.mb_saved()
                );
            }
            let mut bad = false;
            for r in &runs {
                for v in &r.violations {
                    eprintln!("{}: invariant violation: {v}", r.metrics.scheduler);
                    bad = true;
                }
            }
            if bad {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("timeline") => {
            let (Some(path), Some(idx)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Ok(idx) = idx.parse::<usize>() else {
                return usage();
            };
            let width = args
                .get(3)
                .and_then(|w| w.parse::<usize>().ok())
                .unwrap_or(96);
            let spec = match load(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let runs = match spec.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(run) = runs.get(idx) else {
                eprintln!(
                    "scheduler index {idx} out of range ({} schedulers)",
                    runs.len()
                );
                return ExitCode::FAILURE;
            };
            let num_nodes: u32 = spec.cluster.racks.iter().sum();
            let nodes: Vec<NodeId> = (0..num_nodes).map(NodeId).collect();
            println!(
                "== {} under {} (M map, R reduce, B both, . idle) ==",
                spec.name, run.metrics.scheduler
            );
            print!("{}", run.trace.render_timeline(&nodes, width));
            ExitCode::SUCCESS
        }
        Some("trace") => {
            // Dump one scheduler's full execution trace as JSON lines.
            let (Some(path), Some(idx), Some(out_path)) = (args.get(1), args.get(2), args.get(3))
            else {
                return usage();
            };
            let Ok(idx) = idx.parse::<usize>() else {
                return usage();
            };
            let spec = match load(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let runs = match spec.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(run) = runs.get(idx) else {
                eprintln!("scheduler index {idx} out of range");
                return ExitCode::FAILURE;
            };
            let mut out = String::new();
            for e in run.trace.events() {
                out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
                out.push('\n');
            }
            if let Err(e) = std::fs::write(out_path, out) {
                eprintln!("writing {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} events to {out_path}",
                run.trace.events().len()
            );
            ExitCode::SUCCESS
        }
        Some("svg") => {
            let (Some(path), Some(idx), Some(out_path)) = (args.get(1), args.get(2), args.get(3))
            else {
                return usage();
            };
            let Ok(idx) = idx.parse::<usize>() else {
                return usage();
            };
            let spec = match load(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let runs = match spec.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(run) = runs.get(idx) else {
                eprintln!("scheduler index {idx} out of range");
                return ExitCode::FAILURE;
            };
            let num_nodes: u32 = spec.cluster.racks.iter().sum();
            let nodes: Vec<NodeId> = (0..num_nodes).map(NodeId).collect();
            let svg = s3_mapreduce::render_svg(
                &run.trace,
                &nodes,
                &s3_mapreduce::SvgOptions {
                    title: format!("{} under {}", spec.name, run.metrics.scheduler),
                    ..s3_mapreduce::SvgOptions::default()
                },
            );
            if let Err(e) = std::fs::write(out_path, svg) {
                eprintln!("writing {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
