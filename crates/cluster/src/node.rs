//! Node and rack identities and per-node capabilities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a slave (worker) node. The master is not a `NodeId`; it is
/// implicit in the simulation driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Static capability of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Relative processing speed (1.0 = nominal; <1 is slower).
    pub speed_factor: f64,
    /// Concurrent map tasks this node can run.
    pub map_slots: u32,
    /// Concurrent reduce tasks this node can run.
    pub reduce_slots: u32,
    /// Local disk sequential read bandwidth, MB/s.
    pub disk_read_mb_s: f64,
    /// Local disk sequential write bandwidth, MB/s.
    pub disk_write_mb_s: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // Roughly the paper's hardware: a quad-core Xeon X3430 with 8 GB
        // RAM over a 7200rpm SATA disk, one map slot per node (Section
        // V-A). The effective sequential read rate reflects a warm page
        // cache: with 4 GB of input per node and repeated experiment runs,
        // most block reads are served from memory, and the one busy core
        // overlaps read-ahead with compute.
        NodeSpec {
            speed_factor: 1.0,
            map_slots: 1,
            reduce_slots: 1,
            disk_read_mb_s: 200.0,
            disk_write_mb_s: 70.0,
        }
    }
}

/// A slave node: identity, rack membership, and capability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's identifier (dense, `0..num_nodes`).
    pub id: NodeId,
    /// The rack this node lives in.
    pub rack: RackId,
    /// Static capability.
    pub spec: NodeSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RackId(0).to_string(), "rack0");
    }

    #[test]
    fn default_spec_matches_paper_config() {
        let s = NodeSpec::default();
        assert_eq!(s.map_slots, 1);
        assert_eq!(s.speed_factor, 1.0);
        assert!(s.disk_read_mb_s > 0.0);
    }
}
