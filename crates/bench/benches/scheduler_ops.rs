//! Micro-benchmarks of scheduler-side operations: batch construction,
//! locality-aware map handout, and segment bookkeeping — the per-heartbeat
//! costs a real JobTracker plugin would pay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use s3_cluster::{ClusterTopology, NodeId};
use s3_dfs::{BlockId, Dfs, RoundRobinPlacement, SegmentId, Segmentation, MB};
use s3_mapreduce::job::{requests_from_arrivals, JobProfile, JobTable};
use s3_mapreduce::{Batch, BatchKey};
use s3_sim::SimTime;
use std::sync::Arc;

fn world() -> (ClusterTopology, Dfs, JobTable, Vec<BlockId>) {
    let cluster = ClusterTopology::paper_cluster();
    let mut dfs = Dfs::new();
    let file = dfs
        .create_file(
            &cluster,
            "in",
            2560 * 64 * MB,
            64 * MB,
            1,
            &mut RoundRobinPlacement::default(),
        )
        .expect("create file");
    let profile = Arc::new(JobProfile {
        name: "wc".into(),
        map_cpu_s_per_mb: 0.0015,
        map_output_ratio: 0.015,
        map_output_records_per_mb: 1526.0,
        reduce_cpu_s_per_mb: 0.002,
        reduce_output_ratio: 0.000625,
        num_reduce_tasks: 30,
    });
    let mut table = JobTable::new();
    for r in requests_from_arrivals(&profile, file, &[0.0; 10]) {
        table.arrive(r);
    }
    let blocks = dfs.file(file).blocks.clone();
    (cluster, dfs, table, blocks)
}

fn bench_batch(c: &mut Criterion) {
    let (cluster, dfs, table, blocks) = world();
    let jobs: Vec<_> = table.arrived().iter().map(|r| r.id).collect();

    let mut g = c.benchmark_group("batch");
    g.bench_function("construct_2560_blocks_10_jobs", |b| {
        b.iter(|| {
            Batch::new(
                BatchKey(0),
                jobs.clone(),
                &blocks,
                &table,
                &dfs,
                SimTime::ZERO,
                40,
            )
        });
    });

    g.throughput(Throughput::Elements(2560));
    g.bench_function("drain_all_maps_locally", |b| {
        b.iter(|| {
            let mut batch = Batch::new(
                BatchKey(0),
                jobs.clone(),
                &blocks,
                &table,
                &dfs,
                SimTime::ZERO,
                40,
            );
            let mut handed = 0u32;
            // Round-robin over nodes like the heartbeat loop does.
            'outer: loop {
                let mut any = false;
                for n in 0..40u32 {
                    if let Some(_spec) =
                        batch.next_map_for(NodeId(n), SimTime::ZERO, &dfs, &cluster)
                    {
                        handed += 1;
                        any = true;
                        if handed == 2560 {
                            break 'outer;
                        }
                    }
                }
                assert!(any, "ran dry before all maps were handed out");
            }
            handed
        });
    });
    g.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmentation");
    let seg = Segmentation::uniform(2560, 200);
    g.throughput(Throughput::Elements(2560));
    g.bench_function("segment_of_all_blocks", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for blk in 0..2560 {
                acc = acc.wrapping_add(seg.segment_of(blk).0);
            }
            acc
        });
    });
    g.bench_function("scan_order_walk", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for start in 0..seg.num_segments() {
                for s in seg.scan_order(SegmentId(start)) {
                    acc = acc.wrapping_add(s.0);
                }
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_batch, bench_segmentation);
criterion_main!(benches);
