//! Per-job flight recorder: stitch a drained engine trace into causal
//! per-job timelines with a latency decomposition.
//!
//! The engine's trace events are *server-centric*: segment spans on worker
//! tracks, admission instants on the coordinator track, reduce shards on
//! the reduce pool. Answering "where did job 17's 40 ms go?" from that
//! view means mentally joining five tracks. [`JobJournal::from_events`]
//! performs that join once: for every job it reconstructs
//!
//! ```text
//! submit ──queue──▶ admit ──scan (segments, assists, recoveries)──▶
//!                                      scan_end ──reduce (shards)──▶ done
//! ```
//!
//! and decomposes the end-to-end latency **exactly** into
//! `queue_us + scan_us + reduce_us == latency_us`:
//!
//! - **queue** — submit instant → admit instant (time waiting for a
//!   segment boundary);
//! - **scan** — admit → the end of the segment that completes the job's
//!   revolution. Which segments belong to a job is recomputed the same way
//!   the coordinator assigns them: a job admitted at cursor `c` rides every
//!   subsequent segment until its remaining block count (the `job_done`
//!   event's reported total) reaches zero — segment spans carry only block
//!   ranges, so this countdown is what makes shared segments attributable
//!   to individual jobs;
//! - **reduce** — scan end → terminal instant (reduce-pool queueing plus
//!   the job's combine/reduce shards, which are also listed individually);
//! - **recovery** (overlaps scan, reported separately) — the summed
//!   durations of `recovered` instants inside the job's scan window: how
//!   much re-execution latency the job's revolution absorbed from lost or
//!   straggling blocks.
//!
//! A journal serializes as JSON (schema [`JOURNAL_SCHEMA`]) and renders as
//! per-job Perfetto tracks via [`JobJournal::to_chrome_events`] — one
//! track per job beside the existing server-centric export.
//!
//! Timestamp subtlety: the coordinator back-dates each segment span to the
//! iteration start it took *before* stamping that iteration's admit
//! instants, so an admitted job's first segment has `ts < admit_ts` while
//! its end is strictly after. Attribution therefore keys on segment **end**
//! times; the previous iteration's segment always ends before the admit
//! instant is stamped.

use crate::chrome::ChromeEvent;
use crate::trace::{Event, Phase, NO_ID};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// Schema tag written into every serialized [`JobJournal`].
pub const JOURNAL_SCHEMA: &str = "s3obs-journal/v1";

/// How a job's timeline ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Outcome {
    /// Output published (`job_done`).
    Done,
    /// Failed by a panic in its own map/combine/reduce (`quarantine`).
    Quarantined,
    /// Server died before the job could run (`job_aborted`).
    Aborted,
    /// Deadline passed before the revolution completed (`job_expired`).
    Expired,
}

/// One shared segment scan a job rode, as seen from that job.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SegmentSlice {
    /// First block index of the segment.
    pub start_block: u64,
    /// Blocks the segment scanned.
    pub len: u64,
    /// Blocks of this segment that counted toward *this* job's revolution
    /// (the final segment of a revolution may overshoot the job's limit).
    pub blocks_for_job: u64,
    /// Segment span start (µs since trace epoch).
    pub ts_us: u64,
    /// Segment span duration (µs).
    pub dur_us: u64,
}

/// One finalization shard of a job's reduce phase.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ShardSlice {
    /// Shard index within the job's reduce.
    pub shard: u64,
    /// Span start (µs since trace epoch).
    pub ts_us: u64,
    /// Span duration (µs).
    pub dur_us: u64,
    /// Records this shard reduced (0 for traces predating the field).
    #[serde(default)]
    pub records: u64,
}

/// The reconstructed timeline of one job.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JobRecord {
    /// Job id (the server's submission order).
    pub id: u64,
    /// How the timeline ended.
    pub outcome: Outcome,
    /// `submit` instant (µs since trace epoch).
    pub submit_us: u64,
    /// `admit` instant, if the job was ever admitted.
    pub admit_us: Option<u64>,
    /// End of the job's scan phase: the end of the segment that completed
    /// its revolution (equals `admit_us` for an empty store).
    pub scan_end_us: Option<u64>,
    /// Terminal instant (`job_done` / `quarantine` / `job_aborted` /
    /// `job_expired`).
    pub terminal_us: u64,
    /// Submit → terminal.
    pub latency_us: u64,
    /// Submit → admit (whole latency for never-admitted jobs).
    pub queue_us: u64,
    /// Admit → scan end.
    pub scan_us: u64,
    /// Scan end → terminal (reduce-pool queueing + shards).
    pub reduce_us: u64,
    /// Summed `recovered` durations inside the scan window — re-execution
    /// latency absorbed from lost/straggling blocks. Overlaps `scan_us`;
    /// not part of the queue+scan+reduce identity.
    pub recovery_us: u64,
    /// Blocks attributed to this job by the segment countdown.
    pub blocks_covered: u64,
    /// Blocks the engine reported in `job_done` (absent for quarantined/
    /// aborted jobs and for traces from engines predating the field).
    pub blocks_reported: Option<u64>,
    /// Work-assist re-executions during the scan window (server-wide
    /// events inside this job's window: shared, not exclusive).
    pub assists: u64,
    /// Deadline speculations during the scan window.
    pub speculations: u64,
    /// Segments the job rode, in scan order.
    pub segments: Vec<SegmentSlice>,
    /// The job's reduce shards.
    pub reduce_shards: Vec<ShardSlice>,
    /// Terminal events seen for this job (1 in a well-formed trace; kept
    /// so [`JobJournal::validate`] can prove it).
    pub terminal_events: u64,
    /// Admit events seen for this job (1 for admitted jobs).
    pub admit_events: u64,
}

/// A causal per-job view of one drained engine trace.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JobJournal {
    /// Schema tag ([`JOURNAL_SCHEMA`]).
    pub schema: String,
    /// Ring-buffer drops reported by the recorder at drain time; a
    /// non-zero value means timelines may be truncated.
    pub dropped_events: u64,
    /// One record per job with a `submit` or terminal event, by id.
    pub jobs: Vec<JobRecord>,
}

#[derive(Default)]
struct JobBuilder {
    submit: Option<u64>,
    admits: Vec<u64>,
    terminals: Vec<(u64, Outcome)>,
    blocks_reported: Option<u64>,
    reduce_shards: Vec<ShardSlice>,
}

impl JobJournal {
    /// Stitch a drained, time-ordered event stream (from
    /// [`TraceRecorder::drain`](crate::trace::TraceRecorder::drain)) into
    /// per-job timelines. Unknown event names are ignored, so journals
    /// stay forward-compatible with new engine instrumentation.
    pub fn from_events(events: &[Event]) -> JobJournal {
        let mut jobs: BTreeMap<u64, JobBuilder> = BTreeMap::new();
        let mut segments: Vec<(u64, u64, u64, u64)> = Vec::new(); // (ts, dur, start, len)
        let mut recoveries: Vec<(u64, u64)> = Vec::new(); // (ts, dur)
        let mut assists: Vec<u64> = Vec::new();
        let mut speculations: Vec<u64> = Vec::new();

        for ev in events {
            match (ev.name, ev.ph) {
                ("submit", Phase::Instant) => {
                    let b = jobs.entry(ev.ids.job).or_default();
                    b.submit.get_or_insert(ev.ts_us);
                }
                ("admit", Phase::Instant) => {
                    jobs.entry(ev.ids.job).or_default().admits.push(ev.ts_us);
                }
                ("job_done", Phase::Instant) => {
                    let b = jobs.entry(ev.ids.job).or_default();
                    b.terminals.push((ev.ts_us, Outcome::Done));
                    if ev.ids.n != NO_ID {
                        b.blocks_reported = Some(ev.ids.n);
                    }
                }
                ("quarantine", Phase::Instant) => {
                    let b = jobs.entry(ev.ids.job).or_default();
                    b.terminals.push((ev.ts_us, Outcome::Quarantined));
                }
                ("job_aborted", Phase::Instant) => {
                    let b = jobs.entry(ev.ids.job).or_default();
                    b.terminals.push((ev.ts_us, Outcome::Aborted));
                }
                ("job_expired", Phase::Instant) => {
                    let b = jobs.entry(ev.ids.job).or_default();
                    b.terminals.push((ev.ts_us, Outcome::Expired));
                }
                ("reduce_shard", Phase::Span) => {
                    // Current engines put the shard in its dedicated id
                    // field and the record count in `n`; older traces
                    // packed the shard index into `n` with no count.
                    let (shard, records) = if ev.ids.shard != NO_ID {
                        (ev.ids.shard, if ev.ids.n == NO_ID { 0 } else { ev.ids.n })
                    } else {
                        (ev.ids.n, 0)
                    };
                    jobs.entry(ev.ids.job).or_default().reduce_shards.push(ShardSlice {
                        shard,
                        ts_us: ev.ts_us,
                        dur_us: ev.dur_us,
                        records,
                    });
                }
                ("segment", Phase::Span) => {
                    segments.push((ev.ts_us, ev.dur_us, ev.ids.seg, ev.ids.n));
                }
                ("recovered", Phase::Instant) => {
                    recoveries.push((ev.ts_us, ev.ids.n));
                }
                ("assist", Phase::Instant) => assists.push(ev.ts_us),
                ("speculate", Phase::Instant) => speculations.push(ev.ts_us),
                _ => {}
            }
        }
        segments.sort_by_key(|&(ts, ..)| ts);
        // Store size estimate for jobs that died before reporting a block
        // count: the segment chain partitions [0, n), so n is the largest
        // segment end.
        let store_blocks = segments.iter().map(|&(_, _, s, l)| s + l).max().unwrap_or(0);

        let records = jobs
            .into_iter()
            .filter(|(_, b)| b.submit.is_some() || !b.terminals.is_empty())
            .map(|(id, b)| {
                let submit_us = b.submit.unwrap_or(0);
                let admit_us = b.admits.first().copied();
                let (terminal_us, outcome) = b
                    .terminals
                    .first()
                    .copied()
                    .unwrap_or((submit_us, Outcome::Aborted));
                let expected = b.blocks_reported.unwrap_or(store_blocks);

                // Replay the coordinator's assignment: count down the
                // job's revolution over segments ending after admission.
                let mut slices = Vec::new();
                let mut remaining = expected;
                let mut scan_end_us = admit_us;
                if let Some(admit) = admit_us {
                    for &(ts, dur, start, len) in &segments {
                        if remaining == 0 {
                            break;
                        }
                        let end = ts + dur;
                        if end <= admit || ts > terminal_us {
                            continue;
                        }
                        let take = len.min(remaining);
                        remaining -= take;
                        scan_end_us = Some(end.clamp(admit, terminal_us.max(admit)));
                        slices.push(SegmentSlice {
                            start_block: start,
                            len,
                            blocks_for_job: take,
                            ts_us: ts,
                            dur_us: dur,
                        });
                    }
                }
                let blocks_covered = expected - remaining;

                // Clamp the chain submit ≤ admit ≤ scan_end ≤ terminal so
                // queue + scan + reduce == latency holds *exactly* even on
                // timelines a terminal cut short mid-segment.
                let terminal_us = terminal_us.max(submit_us);
                let admit_pt = admit_us.unwrap_or(terminal_us).clamp(submit_us, terminal_us);
                let scan_end_pt = scan_end_us.unwrap_or(admit_pt).clamp(admit_pt, terminal_us);
                let queue_us = admit_pt - submit_us;
                let scan_us = scan_end_pt - admit_pt;
                let reduce_us = terminal_us - scan_end_pt;

                let in_scan = |ts: u64| admit_us.is_some() && ts >= admit_pt && ts <= scan_end_pt;
                let recovery_us = recoveries
                    .iter()
                    .filter(|&&(ts, _)| in_scan(ts))
                    .map(|&(_, d)| d)
                    .sum();

                let mut reduce_shards = b.reduce_shards;
                reduce_shards.sort_by_key(|s| s.ts_us);
                JobRecord {
                    id,
                    outcome,
                    submit_us,
                    admit_us: admit_us.map(|_| admit_pt),
                    scan_end_us: admit_us.map(|_| scan_end_pt),
                    terminal_us,
                    latency_us: terminal_us - submit_us,
                    queue_us,
                    scan_us,
                    reduce_us,
                    recovery_us,
                    blocks_covered,
                    blocks_reported: b.blocks_reported,
                    assists: assists.iter().filter(|&&ts| in_scan(ts)).count() as u64,
                    speculations: speculations.iter().filter(|&&ts| in_scan(ts)).count() as u64,
                    segments: slices,
                    reduce_shards,
                    terminal_events: b.terminals.len() as u64,
                    admit_events: b.admits.len() as u64,
                }
            })
            .collect();
        JobJournal {
            schema: JOURNAL_SCHEMA.to_string(),
            dropped_events: 0,
            jobs: records,
        }
    }

    /// Check the journal's internal invariants:
    ///
    /// 1. every job has exactly one terminal event;
    /// 2. every completed (`Done`) job has exactly one admit;
    /// 3. the queue/scan/reduce decomposition sums exactly to the latency;
    /// 4. a completed job's segment slices cover exactly its reported
    ///    block count.
    ///
    /// When [`dropped_events`] is non-zero the ring overwrote history, and
    /// truncation can only *lose* events: the coverage check (4) is skipped
    /// and the exactly-once checks (1–2) relax to at-most-once — duplicate
    /// admits/terminals still fail, missing ones don't. The decomposition
    /// identity (3) holds by construction and is checked regardless.
    ///
    /// [`dropped_events`]: JobJournal::dropped_events
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != JOURNAL_SCHEMA {
            return Err(format!("schema {:?}, expected {JOURNAL_SCHEMA:?}", self.schema));
        }
        let complete_ring = self.dropped_events == 0;
        for j in &self.jobs {
            if j.terminal_events > 1 || (complete_ring && j.terminal_events != 1) {
                return Err(format!("job {}: {} terminal events, want 1", j.id, j.terminal_events));
            }
            if j.outcome == Outcome::Done
                && (j.admit_events > 1 || (complete_ring && j.admit_events != 1))
            {
                return Err(format!("job {}: {} admit events, want 1", j.id, j.admit_events));
            }
            if j.queue_us + j.scan_us + j.reduce_us != j.latency_us {
                return Err(format!(
                    "job {}: decomposition {} + {} + {} != latency {}",
                    j.id, j.queue_us, j.scan_us, j.reduce_us, j.latency_us
                ));
            }
            let sliced: u64 = j.segments.iter().map(|s| s.blocks_for_job).sum();
            if sliced != j.blocks_covered {
                return Err(format!(
                    "job {}: segment slices sum to {sliced}, blocks_covered {}",
                    j.id, j.blocks_covered
                ));
            }
            if self.dropped_events == 0 && j.outcome == Outcome::Done {
                if let Some(reported) = j.blocks_reported {
                    if j.blocks_covered != reported {
                        return Err(format!(
                            "job {}: segments cover {} of {} reported blocks",
                            j.id, j.blocks_covered, reported
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the journal as per-job Perfetto tracks: one named track per
    /// job under process `pid`, carrying a `queued` span, `scan` spans
    /// (one per segment rode), `reduce` spans (one per shard), and a
    /// terminal instant. Loads beside the server-centric engine trace.
    pub fn to_chrome_events(&self, pid: u64) -> Vec<ChromeEvent> {
        let mut out = vec![ChromeEvent::process_name(pid, "s3-jobs")];
        for j in &self.jobs {
            let tid = j.id + 1; // tid 0 carries process metadata
            out.push(ChromeEvent::thread_name(pid, tid, &format!("job {}", j.id)));
            let span = |name: &str, ts: u64, dur: u64, args: Vec<(String, Value)>| ChromeEvent {
                name: name.to_string(),
                cat: "job".to_string(),
                ph: 'X',
                ts: ts as f64,
                dur: Some(dur as f64),
                pid,
                tid,
                args,
            };
            if let Some(admit) = j.admit_us {
                out.push(span(
                    "queued",
                    j.submit_us,
                    admit.saturating_sub(j.submit_us),
                    vec![("job".into(), Value::from(j.id))],
                ));
            }
            for s in &j.segments {
                out.push(span(
                    "scan",
                    s.ts_us,
                    s.dur_us,
                    vec![
                        ("seg".into(), Value::from(s.start_block)),
                        ("blocks_for_job".into(), Value::from(s.blocks_for_job)),
                    ],
                ));
            }
            for s in &j.reduce_shards {
                out.push(span(
                    "reduce",
                    s.ts_us,
                    s.dur_us,
                    vec![
                        ("shard".into(), Value::from(s.shard)),
                        ("records".into(), Value::from(s.records)),
                    ],
                ));
            }
            out.push(ChromeEvent {
                name: match j.outcome {
                    Outcome::Done => "done",
                    Outcome::Quarantined => "quarantined",
                    Outcome::Aborted => "aborted",
                    Outcome::Expired => "expired",
                }
                .to_string(),
                cat: "job".to_string(),
                ph: 'i',
                ts: j.terminal_us as f64,
                dur: None,
                pid,
                tid,
                args: vec![
                    ("latency_us".into(), Value::from(j.latency_us)),
                    ("queue_us".into(), Value::from(j.queue_us)),
                    ("scan_us".into(), Value::from(j.scan_us)),
                    ("reduce_us".into(), Value::from(j.reduce_us)),
                    ("recovery_us".into(), Value::from(j.recovery_us)),
                ],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{validate_chrome_trace, write_chrome_trace};
    use crate::trace::Ids;

    fn instant(ts: u64, name: &'static str, ids: Ids) -> Event {
        Event { ts_us: ts, dur_us: 0, name, ph: Phase::Instant, tid: 1, ids }
    }

    fn span(ts: u64, dur: u64, name: &'static str, ids: Ids) -> Event {
        Event { ts_us: ts, dur_us: dur, name, ph: Phase::Span, tid: 2, ids }
    }

    /// A two-job trace over a 4-block store scanned in 2-block segments,
    /// with the engine's real timestamp quirk: segment spans back-dated to
    /// before the admit instants of the same iteration.
    fn sample_events() -> Vec<Event> {
        vec![
            instant(5, "submit", Ids::job(0)),
            instant(7, "submit", Ids::job(1)),
            // iteration 1: t0 = 10, admits stamped at 11/12, segment [0,2)
            instant(11, "admit", Ids::job(0).jobs(0)),
            instant(12, "admit", Ids::job(1).jobs(0)),
            span(10, 90, "segment", Ids::seg(0).jobs(2)),
            instant(60, "recovered", Ids::seg(1).jobs(25)),
            instant(55, "assist", Ids::seg(1).jobs(0)),
            // iteration 2: segment [2,4) completes both revolutions
            span(110, 80, "segment", Ids::seg(2).jobs(2)),
            // job 0 reduces and finishes
            span(200, 30, "reduce_shard", Ids::job(0).shard(0).jobs(12)),
            instant(240, "job_done", Ids::job(0).jobs(4)),
            // job 1 quarantines in reduce
            instant(260, "quarantine", Ids::job(1)),
        ]
    }

    #[test]
    fn stitches_causal_timeline_and_decomposition() {
        let j = JobJournal::from_events(&sample_events());
        assert_eq!(j.jobs.len(), 2);
        let j0 = &j.jobs[0];
        assert_eq!(j0.outcome, Outcome::Done);
        assert_eq!(j0.queue_us, 6); // 11 - 5
        assert_eq!(j0.scan_us, 179); // admit 11 → seg2 end 190
        assert_eq!(j0.reduce_us, 50); // 190 → 240
        assert_eq!(j0.latency_us, 235);
        assert_eq!(j0.queue_us + j0.scan_us + j0.reduce_us, j0.latency_us);
        assert_eq!(j0.blocks_covered, 4);
        assert_eq!(j0.blocks_reported, Some(4));
        assert_eq!(j0.segments.len(), 2);
        assert_eq!(j0.recovery_us, 25);
        assert_eq!(j0.assists, 1);
        assert_eq!(j0.reduce_shards.len(), 1);
        assert_eq!(j0.reduce_shards[0].shard, 0);
        assert_eq!(j0.reduce_shards[0].records, 12);
        j.validate().unwrap();

        let j1 = &j.jobs[1];
        assert_eq!(j1.outcome, Outcome::Quarantined);
        assert_eq!(j1.blocks_covered, 4); // store estimate: max segment end
        assert_eq!(j1.queue_us + j1.scan_us + j1.reduce_us, j1.latency_us);
    }

    #[test]
    fn first_segment_attribution_survives_backdated_spans() {
        // The admit (ts 11) lands *after* its iteration's segment start
        // (ts 10); the segment must still be attributed to the job.
        let j = JobJournal::from_events(&sample_events());
        assert_eq!(j.jobs[0].segments[0].ts_us, 10);
    }

    #[test]
    fn validate_catches_double_terminal_and_bad_coverage() {
        let mut evs = sample_events();
        evs.push(instant(250, "job_done", Ids::job(0).jobs(4)));
        let j = JobJournal::from_events(&evs);
        assert!(j.validate().unwrap_err().contains("terminal"));

        let mut evs = sample_events();
        evs.retain(|e| e.name != "segment" || e.ts_us != 110);
        let j = JobJournal::from_events(&evs);
        assert!(j.validate().unwrap_err().contains("cover"));
        // ...unless the ring reported drops, which excuses lost spans.
        let mut j = j;
        j.dropped_events = 3;
        j.validate().unwrap();
    }

    #[test]
    fn truncated_ring_relaxes_exactly_once_to_at_most_once() {
        // Drop job 0's admit (and its submit, as a real ring overwrite
        // would): a Done job with 0 admit events must pass when drops are
        // reported, and still fail on a complete ring.
        let mut evs = sample_events();
        evs.retain(|e| !((e.name == "admit" || e.name == "submit") && e.ids.job == 0));
        let mut j = JobJournal::from_events(&evs);
        assert!(j.validate().unwrap_err().contains("admit"));
        j.dropped_events = 2;
        j.validate().unwrap();

        // Duplicates can't come from truncation — they fail regardless.
        let mut evs = sample_events();
        evs.push(instant(250, "job_done", Ids::job(0).jobs(4)));
        let mut j = JobJournal::from_events(&evs);
        j.dropped_events = 2;
        assert!(j.validate().unwrap_err().contains("terminal"));
    }

    #[test]
    fn never_admitted_job_is_all_queue_time() {
        let evs = vec![
            instant(5, "submit", Ids::job(0)),
            instant(90, "job_aborted", Ids::job(0)),
        ];
        let j = JobJournal::from_events(&evs);
        let r = &j.jobs[0];
        assert_eq!(r.outcome, Outcome::Aborted);
        assert_eq!(r.queue_us, 85);
        assert_eq!((r.scan_us, r.reduce_us), (0, 0));
        j.validate().unwrap();
    }

    #[test]
    fn expired_job_is_a_terminal_outcome() {
        let evs = vec![
            instant(5, "submit", Ids::job(0)),
            instant(10, "admit", Ids::job(0).jobs(1)),
            instant(70, "job_expired", Ids::job(0)),
        ];
        let j = JobJournal::from_events(&evs);
        let r = &j.jobs[0];
        assert_eq!(r.outcome, Outcome::Expired);
        assert_eq!(r.terminal_us, 70);
        j.validate().unwrap();
    }

    /// Satellite regression: two jobs finishing concurrently, their
    /// `reduce_shard` spans interleaved in time with *identical* shard
    /// indexes. The dedicated `shard` id field keeps each span attributed
    /// to its own job — the old encoding packed the shard into the free
    /// count field, and any scheme that multiplexed the job field would
    /// cross the streams here.
    #[test]
    fn concurrent_finishing_jobs_keep_their_own_shards() {
        let evs = vec![
            instant(5, "submit", Ids::job(0)),
            instant(6, "submit", Ids::job(1)),
            instant(10, "admit", Ids::job(0).jobs(0)),
            instant(11, "admit", Ids::job(1).jobs(0)),
            span(9, 50, "segment", Ids::seg(0).jobs(2)),
            // Interleaved finishes: shard 0 of job 1 lands between shard 0
            // and shard 1 of job 0, and vice versa.
            span(100, 30, "reduce_shard", Ids::job(0).shard(0).jobs(7)),
            span(105, 20, "reduce_shard", Ids::job(1).shard(0).jobs(3)),
            span(110, 25, "reduce_shard", Ids::job(1).shard(1).jobs(4)),
            span(115, 10, "reduce_shard", Ids::job(0).shard(1).jobs(9)),
            instant(200, "job_done", Ids::job(0).jobs(1)),
            instant(210, "job_done", Ids::job(1).jobs(1)),
        ];
        let j = JobJournal::from_events(&evs);
        j.validate().unwrap();
        assert_eq!(j.jobs.len(), 2);
        for r in &j.jobs {
            assert_eq!(r.reduce_shards.len(), 2, "job {}", r.id);
            let shards: Vec<u64> = r.reduce_shards.iter().map(|s| s.shard).collect();
            assert_eq!(shards, vec![0, 1], "job {}", r.id);
        }
        let recs = |id: usize| -> Vec<u64> {
            j.jobs[id].reduce_shards.iter().map(|s| s.records).collect()
        };
        assert_eq!(recs(0), vec![7, 9]);
        assert_eq!(recs(1), vec![3, 4]);
    }

    /// Traces from engines predating the dedicated shard field packed the
    /// shard index into `n`; they must still parse (without counts).
    #[test]
    fn legacy_reduce_shard_encoding_still_parses() {
        let evs = vec![
            instant(5, "submit", Ids::job(0)),
            instant(10, "admit", Ids::job(0).jobs(0)),
            span(9, 10, "segment", Ids::seg(0).jobs(1)),
            span(100, 30, "reduce_shard", Ids::job(0).jobs(2)),
            instant(200, "job_done", Ids::job(0).jobs(1)),
        ];
        let j = JobJournal::from_events(&evs);
        assert_eq!(j.jobs[0].reduce_shards.len(), 1);
        assert_eq!(j.jobs[0].reduce_shards[0].shard, 2);
        assert_eq!(j.jobs[0].reduce_shards[0].records, 0);
    }

    #[test]
    fn chrome_export_validates_and_carries_tracks() {
        let j = JobJournal::from_events(&sample_events());
        let evs = j.to_chrome_events(7);
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &evs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let n = validate_chrome_trace(&text).unwrap();
        assert_eq!(n, evs.len());
        assert!(text.contains("s3-jobs"));
        assert!(text.contains("\"job 0\""));
        assert!(text.contains("queued"));
    }

    #[test]
    fn journal_serde_round_trip() {
        let j = JobJournal::from_events(&sample_events());
        let json = serde_json::to_string_pretty(&j).unwrap();
        let back: JobJournal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.schema, JOURNAL_SCHEMA);
    }
}
