//! Real-engine shared-scan speedup: one pass serving n jobs vs n passes,
//! on actual data with actual threads. This measures the physical effect
//! the whole paper is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s3_engine::{run_job, run_merged, BlockStore, ExecConfig};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;

fn corpus() -> BlockStore {
    let gen = TextGen::new(20_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(99), 8 << 20);
    BlockStore::from_text(&text, 256 << 10)
}

fn jobs(n: usize) -> Vec<PatternWordCount> {
    (0..n)
        .map(|i| PatternWordCount::prefix(format!("{}a", (b'b' + i as u8) as char)))
        .collect()
}

fn bench_shared_scan(c: &mut Criterion) {
    let store = corpus();
    let cfg = ExecConfig {
        num_threads: 4,
        num_reducers: 8,
    ..ExecConfig::default()
    };

    let mut g = c.benchmark_group("engine_shared_scan");
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));
    g.sample_size(10);
    for n in [1usize, 4, 8] {
        let js = jobs(n);
        g.bench_with_input(BenchmarkId::new("merged", n), &n, |b, _| {
            let refs: Vec<&PatternWordCount> = js.iter().collect();
            b.iter(|| run_merged(&refs, &store, &cfg));
        });
        g.bench_with_input(BenchmarkId::new("independent", n), &n, |b, _| {
            b.iter(|| {
                js.iter()
                    .map(|j| run_job(j, &store, &cfg))
                    .collect::<Vec<_>>()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shared_scan);
criterion_main!(benches);
