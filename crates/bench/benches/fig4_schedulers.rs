//! Figure 4 as a Criterion bench: every panel is regenerated and printed
//! in the paper's normalized form, then each scheduler's full-workload
//! simulation is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s3_bench::experiments::{run_fig4, Fig4Variant, DEFAULT_SEED};

fn bench_fig4(c: &mut Criterion) {
    for variant in Fig4Variant::all() {
        let r = run_fig4(variant, DEFAULT_SEED);
        println!("\n[{}] scheme -> (TET/S3, ART/S3):", r.label);
        for (name, tet, art) in r.normalized() {
            println!("[{}] {name:>5} -> ({tet:.2}, {art:.2})", r.label);
        }
    }

    let mut g = c.benchmark_group("fig4_panels");
    g.sample_size(10);
    for variant in [Fig4Variant::SparseNormal64, Fig4Variant::DenseNormal64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &v| {
                b.iter(|| run_fig4(v, DEFAULT_SEED));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
