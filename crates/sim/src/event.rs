//! Event calendar with deterministic tie-breaking.
//!
//! Events scheduled for the same instant fire in the order they were
//! scheduled (FIFO). This makes simulation traces reproducible regardless of
//! heap-internal ordering.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its firing time and insertion sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion counter used to break same-instant ties.
    pub seq: u64,
    /// The payload delivered to the simulation driver.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events.
///
/// Popping yields events in non-decreasing time order; equal-time events are
/// yielded in scheduling order.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty calendar positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock: scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedule `event` `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now, "event calendar went backwards");
        self.now = at;
        Some((at, event))
    }

    /// The firing time of the next event, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
