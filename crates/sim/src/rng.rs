//! Seeded random number utilities.
//!
//! A thin wrapper over [`rand::rngs::SmallRng`] plus the handful of
//! distributions the simulator and workload generators need (normal,
//! lognormal, exponential, Zipf) implemented locally so the dependency
//! surface stays at `rand` alone.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG for simulations and workload generation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed. Equal seeds yield identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; used to give each component
    /// (cluster noise, arrivals, data generation) its own stream so adding
    /// draws in one place does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation");
        mean + std_dev * self.standard_normal()
    }

    /// Multiplicative noise factor: lognormal with unit median and the given
    /// sigma, clamped to `[1/limit, limit]`. Used for task-duration jitter.
    pub fn noise_factor(&mut self, sigma: f64, limit: f64) -> f64 {
        assert!(limit >= 1.0, "noise limit must be >= 1");
        let f = (sigma * self.standard_normal()).exp();
        f.clamp(1.0 / limit, limit)
    }

    /// Exponential with the given rate (mean = 1/rate). Used for Poisson
    /// inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`, via inverse-CDF
    /// over precomputed weights. O(log n) per draw after an O(n) setup held
    /// by the caller through [`ZipfTable`].
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Precomputed cumulative weights for Zipf sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build a table for ranks `0..n` with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g = root1.fork(2);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_mean_and_spread_are_plausible() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn noise_factor_is_clamped() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.noise_factor(0.5, 2.0);
            assert!((0.5..=2.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = SimRng::seed_from_u64(5);
        let table = ZipfTable::new(1000, 1.1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[rng.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
        // Every draw is within the support.
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 50_000);
    }
}
