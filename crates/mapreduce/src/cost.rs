//! The timing model.
//!
//! All constants are in seconds (per MB where noted). Defaults are
//! calibrated so that the paper's normal wordcount workload on the paper
//! cluster reproduces the *shape* of the published numbers:
//!
//! - a single wordcount job over 160 GB takes a few hundred seconds,
//!   dominated by the scan (I/O-intensive, Section V-B);
//! - merging 10 jobs onto one scan inflates map time by roughly 29%,
//!   reduce time by roughly 24%, and total time by roughly 26% (Figure 3);
//! - each (sub-)job submission costs a fixed overhead, which is what makes
//!   S³ lose slightly to single-batch MRShare under a dense arrival
//!   pattern (Figure 4(b)).
//!
//! The shared/per-job split: reading the block and iterating records
//! ([`CostModel::shared_scan_secs`]) is paid once per scan; map function
//! CPU and output materialization ([`CostModel::per_job_map_secs`]) are
//! paid once per merged job.

use crate::job::JobProfile;
use crate::task::Locality;
use s3_cluster::{NetworkModel, NodeSpec};
use serde::{Deserialize, Serialize};

/// Timing constants for the simulated Hadoop cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed map task launch cost (task setup, JVM reuse path), seconds.
    pub map_task_startup_s: f64,
    /// Shared record-reader cost per input MB (decompression, line
    /// splitting, record iteration) — paid once per scan.
    pub shared_parse_s_per_mb: f64,
    /// Fixed reduce task launch cost, seconds.
    pub reduce_task_startup_s: f64,
    /// Sort/spill/merge cost per MB of map output (paid on the map side per
    /// job's own output).
    pub sort_s_per_mb: f64,
    /// Merge cost per MB of shuffle input on the reduce side.
    pub reduce_merge_s_per_mb: f64,
    /// Fraction of shuffle flows that stay within a rack (used for the
    /// effective shuffle bandwidth).
    pub shuffle_intra_rack_fraction: f64,
    /// Base per-(sub-)job submission overhead, seconds: job setup and
    /// client round-trips. FIFO pays it per job, MRShare per batch, S³ per
    /// merged sub-job.
    pub job_submit_overhead_s: f64,
    /// Additional submission cost per map task, seconds: input-split
    /// computation and task initialization at the JobTracker. This is what
    /// makes launching a 2560-task job far costlier than a 200-task merged
    /// sub-job — the asymmetry S³'s *partial job initialization* exploits.
    pub task_init_s_per_task: f64,
    /// TaskTracker heartbeat interval, seconds (assignment granularity).
    pub heartbeat_s: f64,
    /// Lognormal sigma for task duration jitter.
    pub noise_sigma: f64,
    /// Clamp for the jitter factor (`[1/limit, limit]`).
    pub noise_limit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            map_task_startup_s: 2.45,
            shared_parse_s_per_mb: 0.002,
            reduce_task_startup_s: 6.0,
            sort_s_per_mb: 0.004,
            reduce_merge_s_per_mb: 0.012,
            shuffle_intra_rack_fraction: 0.35,
            job_submit_overhead_s: 1.0,
            task_init_s_per_task: 0.008,
            heartbeat_s: 0.3,
            noise_sigma: 0.04,
            noise_limit: 1.5,
        }
    }
}

impl CostModel {
    /// A noiseless variant for analytic tests.
    pub fn deterministic() -> Self {
        CostModel {
            noise_sigma: 0.0,
            ..CostModel::default()
        }
    }

    /// Seconds between submitting a (sub-)job of `num_map_tasks` map tasks
    /// and its first task becoming assignable.
    pub fn submit_overhead_secs(&self, num_map_tasks: usize) -> f64 {
        self.job_submit_overhead_s + self.task_init_s_per_task * num_map_tasks as f64
    }

    /// Seconds to get the block's bytes into the mapper: local disk read,
    /// or a network fetch for non-local tasks (the remote end still reads
    /// its disk; we charge the slower of the two paths plus latency).
    pub fn input_read_secs(
        &self,
        block_mb: f64,
        locality: Locality,
        node: &NodeSpec,
        network: &NetworkModel,
    ) -> f64 {
        let disk = block_mb / node.disk_read_mb_s;
        match locality {
            Locality::NodeLocal => disk,
            Locality::RackLocal => disk.max(network.transfer_secs_by_distance(true, block_mb)),
            Locality::OffRack => disk.max(network.transfer_secs_by_distance(false, block_mb)),
        }
    }

    /// Scan-shared portion of a map task: startup + input read + record
    /// iteration. Paid once regardless of how many jobs share the scan.
    pub fn shared_scan_secs(
        &self,
        block_mb: f64,
        locality: Locality,
        node: &NodeSpec,
        network: &NetworkModel,
    ) -> f64 {
        self.map_task_startup_s
            + self.input_read_secs(block_mb, locality, node, network)
            + self.shared_parse_s_per_mb * block_mb
    }

    /// Per-job portion of a map task: the job's map function over the
    /// block, plus sorting/spilling and writing its map output.
    pub fn per_job_map_secs(&self, block_mb: f64, profile: &JobProfile, node: &NodeSpec) -> f64 {
        let out_mb = profile.map_output_mb(block_mb);
        profile.map_cpu_s_per_mb * block_mb
            + self.sort_s_per_mb * out_mb
            + out_mb / node.disk_write_mb_s
    }

    /// Nominal (noise-free, full-speed) duration of a map task scanning one
    /// `block_mb` block for the given set of job profiles.
    pub fn map_task_secs(
        &self,
        block_mb: f64,
        locality: Locality,
        profiles: &[&JobProfile],
        node: &NodeSpec,
        network: &NetworkModel,
    ) -> f64 {
        assert!(!profiles.is_empty(), "map task must serve at least one job");
        let shared = self.shared_scan_secs(block_mb, locality, node, network);
        let per_job: f64 = profiles
            .iter()
            .map(|p| self.per_job_map_secs(block_mb, p, node))
            .sum();
        shared + per_job
    }

    /// Effective shuffle bandwidth (MB/s per reduce) for this network.
    pub fn shuffle_mb_s(&self, network: &NetworkModel) -> f64 {
        network.shuffle_mb_s(self.shuffle_intra_rack_fraction)
    }

    /// Nominal duration of a reduce task.
    ///
    /// `shuffle_mb_per_job` is each merged job's contribution to this
    /// partition; `unoverlapped_fraction` is the share of fetches that could
    /// not be overlapped with the map phase.
    pub fn reduce_task_secs(
        &self,
        shuffle_mb_per_job: &[f64],
        profiles: &[&JobProfile],
        unoverlapped_fraction: f64,
        node: &NodeSpec,
        network: &NetworkModel,
    ) -> f64 {
        assert_eq!(
            shuffle_mb_per_job.len(),
            profiles.len(),
            "shuffle volumes and profiles must be parallel"
        );
        assert!(
            (0.0..=1.0).contains(&unoverlapped_fraction),
            "unoverlapped fraction out of range"
        );
        let total_mb: f64 = shuffle_mb_per_job.iter().sum();
        let fetch = total_mb * unoverlapped_fraction / self.shuffle_mb_s(network);
        let merge = self.reduce_merge_s_per_mb * total_mb * unoverlapped_fraction;
        let cpu_and_write: f64 = shuffle_mb_per_job
            .iter()
            .zip(profiles)
            .map(|(&mb, p)| {
                p.reduce_cpu_s_per_mb * mb
                    + p.reduce_output_mb(mb) / node.disk_write_mb_s
            })
            .sum();
        self.reduce_task_startup_s + fetch + merge + cpu_and_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_cluster::NetworkModel;

    fn wordcount_like() -> JobProfile {
        JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        }
    }

    #[test]
    fn map_cost_scales_sublinearly_with_merged_jobs() {
        // The Figure 3 property: ten merged jobs cost ~1.3x one job, not 10x.
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = wordcount_like();
        let one = cm.map_task_secs(64.0, Locality::NodeLocal, &[&p], &node, &net);
        let profiles: Vec<&JobProfile> = std::iter::repeat_n(&p, 10).collect();
        let ten = cm.map_task_secs(64.0, Locality::NodeLocal, &profiles, &node, &net);
        let ratio = ten / one;
        assert!(
            (1.2..1.45).contains(&ratio),
            "10-job merged map should cost 1.2-1.45x a single job, got {ratio}"
        );
    }

    #[test]
    fn locality_ordering() {
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = wordcount_like();
        let local = cm.map_task_secs(64.0, Locality::NodeLocal, &[&p], &node, &net);
        let rack = cm.map_task_secs(64.0, Locality::RackLocal, &[&p], &node, &net);
        let off = cm.map_task_secs(64.0, Locality::OffRack, &[&p], &node, &net);
        assert!(local <= rack && rack < off, "{local} {rack} {off}");
    }

    #[test]
    fn reduce_cost_grows_with_merged_jobs_but_mildly() {
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = wordcount_like();
        // Per the paper's geometry: 2.4 GB map output / 30 reduces = 80 MB
        // per reduce per job; with 64 waves only ~1/64 is unoverlapped.
        let one = cm.reduce_task_secs(&[80.0], &[&p], 1.0 / 64.0, &node, &net);
        let tens: Vec<f64> = vec![80.0; 10];
        let profs: Vec<&JobProfile> = std::iter::repeat_n(&p, 10).collect();
        let ten = cm.reduce_task_secs(&tens, &profs, 1.0 / 64.0, &node, &net);
        let ratio = ten / one;
        assert!(ratio > 1.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn bigger_blocks_amortize_startup() {
        // Per-MB cost at 128 MB must be lower than at 32 MB (Section V-F:
        // 128 MB gives the fastest actual processing time).
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = wordcount_like();
        let t32 = cm.map_task_secs(32.0, Locality::NodeLocal, &[&p], &node, &net) / 32.0;
        let t128 = cm.map_task_secs(128.0, Locality::NodeLocal, &[&p], &node, &net) / 128.0;
        assert!(t128 < t32);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_profile_list_panics() {
        let cm = CostModel::deterministic();
        cm.map_task_secs(
            64.0,
            Locality::NodeLocal,
            &[],
            &NodeSpec::default(),
            &NetworkModel::one_gbps(),
        );
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_reduce_inputs_panic() {
        let cm = CostModel::deterministic();
        let p = wordcount_like();
        cm.reduce_task_secs(
            &[10.0, 20.0],
            &[&p],
            0.1,
            &NodeSpec::default(),
            &NetworkModel::one_gbps(),
        );
    }
}
