//! Micro-benchmarks of the simulation substrate: event calendar
//! throughput, RNG distributions, and Zipf sampling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use s3_sim::rng::ZipfTable;
use s3_sim::{EventQueue, SimDuration, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..N {
                q.schedule(SimTime::from_micros((i * 7919) % 1_000_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        });
    });
    g.bench_function("interleaved_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            // Heartbeat-like pattern: pop one, push one in the near future.
            q.schedule(SimTime::ZERO, 0);
            let mut acc = 0u64;
            for i in 0..N {
                let (_, e) = q.pop().expect("queue not empty");
                acc = acc.wrapping_add(e);
                q.schedule_in(SimDuration::from_millis(300), i);
            }
            acc
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_rng");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("noise_factor_10k", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.noise_factor(0.04, 1.5);
            }
            acc
        });
    });
    g.bench_function("zipf_10k", |b| {
        let table = ZipfTable::new(60_000, 1.1);
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += rng.zipf(&table);
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng);
criterion_main!(benches);
