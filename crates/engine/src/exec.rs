//! Single-job execution: map over blocks in parallel, shuffle by key hash,
//! reduce partitions in parallel — all phases running on a persistent
//! [`WorkerPool`] instead of respawning OS threads per phase.

use crate::arena::TokenMap;
use crate::partition::{key_hash, shard_of_hash, KeySketch, PartitionPlan};
use crate::pool::{BlockClaims, WorkProgress, WorkerPool};
use crate::store::BlockStore;
use crate::types::{ConfigError, MapReduceJob, PartitionMode};
use fxhash::FxHashMap;
use parking_lot::Mutex;
use s3_obs::trace::Ids;
use s3_obs::Obs;
use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Execution parameters.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads for the map and reduce phases. (Ignored by the
    /// [`run_job_on`]/[`crate::run_merged_on`] variants, which size to the
    /// pool they are given.)
    pub num_threads: usize,
    /// Number of reduce partitions.
    pub num_reducers: usize,
    /// How reduce shards are assigned to keys (see [`PartitionMode`]).
    /// Defaults to [`PartitionMode::Hash`] for bit-compatibility.
    pub partition: PartitionMode,
}

impl ExecConfig {
    /// Validated construction: a typed [`ConfigError`] instead of a
    /// div-by-zero panic deep inside the reduce phase.
    ///
    /// # Errors
    /// [`ConfigError::ZeroThreads`] / [`ConfigError::ZeroReducers`] when a
    /// count is zero.
    pub fn try_new(num_threads: usize, num_reducers: usize) -> Result<Self, ConfigError> {
        if num_threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if num_reducers == 0 {
            return Err(ConfigError::ZeroReducers);
        }
        Ok(ExecConfig {
            num_threads,
            num_reducers,
            partition: PartitionMode::Hash,
        })
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            num_reducers: 8,
            partition: PartitionMode::Hash,
        }
    }
}

/// Which scan implementation walks the blocks.
///
/// [`ScanPath::Kernel`] is the production path: blocks are borrowed `&[u8]`
/// slices split by the vendored SWAR kernel (`memchr::lines` /
/// `memchr::tokens`) and fed to the byte-level job entry points, with the
/// token-identity arena fast path when the job declares it.
///
/// [`ScanPath::Legacy`] is the pre-kernel `String` path kept as the
/// byte-equality **oracle**: each block is UTF-8-converted (lossily for
/// invalid bytes) and walked with `str::lines` / `split_whitespace` into the
/// `&str` job entry points. The equivalence proptests run both and require
/// byte-identical outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPath {
    /// Byte-slice SWAR kernel path (default).
    #[default]
    Kernel,
    /// Legacy `&str` path, kept as the equivalence oracle.
    Legacy,
}

/// Counters from one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks read from the store.
    pub blocks_scanned: u64,
    /// Bytes read from the store.
    pub bytes_scanned: u64,
    /// Intermediate records emitted by map functions (pre-combiner).
    pub map_output_records: u64,
    /// Final output records.
    pub reduce_output_records: u64,
}

/// The result of one job: its output relation plus counters.
///
/// `PartialEq` compares records and stats — with [`crate::JobResult`]'s
/// `Result` wrapper this lets tests and the chaos fuzzer assert whole
/// outcomes (`Ok(output)` vs `Err(JobError::…)`) directly.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput<K: Ord, Out> {
    /// Final key → output value, totally ordered for easy comparison.
    pub records: BTreeMap<K, Out>,
    /// Execution counters.
    pub stats: ScanStats,
}

pub(crate) fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    // Bias-free widening-multiply reduction (see `partition::shard_of_hash`);
    // a zero reducer count clamps to one partition instead of faulting.
    shard_of_hash(key_hash(key), num_reducers)
}

/// Run one job's map over one block on the chosen scan path.
///
/// Kernel: borrowed byte slices through the SWAR line/token iterators into
/// the byte-level entry points. Legacy: the pre-kernel behavior — UTF-8
/// convert (lossily if invalid), `str::lines`, `&str` map.
pub(crate) fn map_block<J: MapReduceJob>(
    job: &J,
    block: &[u8],
    scan_path: ScanPath,
    emit: &mut dyn FnMut(J::K, J::V),
) {
    match scan_path {
        ScanPath::Kernel => {
            if job.map_is_per_token() {
                // Whole-block tokenization is exact for per-token jobs:
                // `\n`/`\r` are whitespace, so block tokens == the
                // concatenation of every line's tokens.
                memchr::for_each_token(block, |tok| job.map_token_bytes(tok, emit));
            } else {
                for line in memchr::lines(block) {
                    job.map_bytes(line, emit);
                }
            }
        }
        ScanPath::Legacy => {
            let text = String::from_utf8_lossy(block);
            for line in text.lines() {
                job.map(line, emit);
            }
        }
    }
}

/// Run one job over the whole store.
///
/// Spawns one [`WorkerPool`] for the call and reuses it across the map and
/// reduce phases; to amortize pool creation over many calls, create a pool
/// once and use [`run_job_on`].
///
/// # Panics
/// Panics if `cfg` has zero threads or reducers.
pub fn run_job<J: MapReduceJob>(job: &J, store: &BlockStore, cfg: &ExecConfig) -> JobOutput<J::K, J::Out> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    let pool = WorkerPool::new(cfg.num_threads);
    run_job_on(&pool, job, store, cfg)
}

/// Run one job on an existing pool (thread creation stays O(pools) no
/// matter how many jobs run). `cfg.num_threads` is ignored; the phases fan
/// out to the pool's worker count.
///
/// # Panics
/// Panics if `cfg.num_reducers` is zero.
pub fn run_job_on<J: MapReduceJob>(
    pool: &WorkerPool,
    job: &J,
    store: &BlockStore,
    cfg: &ExecConfig,
) -> JobOutput<J::K, J::Out> {
    run_job_observed(pool, job, store, cfg, &Obs::off())
}

/// [`run_job_on`] with telemetry: records `map_phase`/`reduce_phase` spans
/// plus the `engine.*` scan, shuffle, and combiner counters into `obs`.
/// Passing [`Obs::off`] is exactly [`run_job_on`] — one branch per phase.
///
/// # Panics
/// Panics if `cfg.num_reducers` is zero.
pub fn run_job_observed<J: MapReduceJob>(
    pool: &WorkerPool,
    job: &J,
    store: &BlockStore,
    cfg: &ExecConfig,
    obs: &Obs,
) -> JobOutput<J::K, J::Out> {
    run_job_path(pool, job, store, cfg, obs, ScanPath::Kernel)
}

/// Run one job over the legacy `&str` scan path (see [`ScanPath::Legacy`]).
///
/// This is the byte-equality oracle: same outputs, same stats, none of the
/// kernel machinery. Spawns its own pool like [`run_job`].
///
/// # Panics
/// Panics if `cfg` has zero threads or reducers.
pub fn run_job_legacy<J: MapReduceJob>(
    job: &J,
    store: &BlockStore,
    cfg: &ExecConfig,
) -> JobOutput<J::K, J::Out> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    let pool = WorkerPool::new(cfg.num_threads);
    run_job_path(&pool, job, store, cfg, &Obs::off(), ScanPath::Legacy)
}

fn run_job_path<J: MapReduceJob>(
    pool: &WorkerPool,
    job: &J,
    store: &BlockStore,
    cfg: &ExecConfig,
    obs: &Obs,
    scan_path: ScanPath,
) -> JobOutput<J::K, J::Out> {
    // A zero reducer count clamps to one partition (validated construction
    // via [`ExecConfig::try_new`] reports it as a typed [`ConfigError`]).
    let num_reducers = cfg.num_reducers.max(1);
    // Weighted partitioning defers shard assignment to the shuffle, where
    // the merged key-distribution sketch is available: workers emit one
    // unpartitioned run plus their sketch, and the shuffle routes every
    // record through the plan. Hash mode keeps the in-worker partitioning.
    let weighted = cfg.partition.is_weighted();
    let core = obs.core();

    let num_blocks = store.num_blocks();
    let num_threads = pool.num_threads();
    // A lone worker claims blocks from a private counter — the shared
    // progress word is only touched when siblings actually race for work.
    let solo = num_threads == 1;
    let progress = WorkProgress::new(num_blocks);
    let fold = job.combine_is_fold();

    // ---- map phase ----
    let map_t0 = core.map(|c| c.tracer.now_us());
    type MapOut<K, V> = (Vec<Vec<(K, V)>>, u64, u64, KeySketch);
    let worker_outputs: Vec<MapOut<J::K, J::V>> = pool.broadcast(num_threads, &|_| {
        let mut claims = if solo {
            BlockClaims::solo(num_blocks)
        } else {
            BlockClaims::shared(&progress)
        };
        let nparts = if weighted { 1 } else { num_reducers };
        let mut partitions: Vec<Vec<(J::K, J::V)>> = (0..nparts).map(|_| Vec::new()).collect();
        let mut sketch = KeySketch::new();
        let mut emitted = 0u64;
        let mut bytes = 0u64;
        if fold && scan_path == ScanPath::Kernel && job.map_emits_token() {
            // Token-identity fast path: fold under the raw token bytes in a
            // per-worker arena; each distinct token's key is built exactly
            // once, at flush. Tokenizing the whole block (instead of per
            // line) is exact because `\n`/`\r` are whitespace.
            let mut local: TokenMap<J::V> = TokenMap::new();
            while let Some(idx) = claims.claim() {
                let block = store.block(idx);
                bytes += block.len() as u64;
                memchr::for_each_token(block, |tok| {
                    if let Some(v) = job.token_value(tok) {
                        emitted += 1;
                        local.upsert_within(block, tok, v, |acc, next| job.combine_fold(acc, next));
                    }
                });
            }
            local.drain_into(|tok, v| {
                let k = job.token_key(tok);
                if weighted {
                    sketch.observe(key_hash(&k), 1);
                    partitions[0].push((k, v));
                } else {
                    let p = partition_of(&k, num_reducers);
                    partitions[p].push((k, v));
                }
            });
        } else if fold {
            // One accumulator per key for the worker's whole run: no
            // per-value buffering, no deferred combine pass.
            let mut local: FxHashMap<J::K, J::V> = FxHashMap::default();
            {
                let mut sink = |k: J::K, v: J::V| {
                    emitted += 1;
                    match local.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            job.combine_fold(e.get_mut(), v);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                };
                while let Some(idx) = claims.claim() {
                    let block = store.block(idx);
                    bytes += block.len() as u64;
                    map_block(job, block, scan_path, &mut sink);
                }
            }
            for (k, v) in local {
                if weighted {
                    sketch.observe(key_hash(&k), 1);
                    partitions[0].push((k, v));
                } else {
                    let p = partition_of(&k, num_reducers);
                    partitions[p].push((k, v));
                }
            }
        } else {
            while let Some(idx) = claims.claim() {
                let block = store.block(idx);
                bytes += block.len() as u64;
                // Block-local grouping so the combiner can fold.
                let mut local: FxHashMap<J::K, Vec<J::V>> = FxHashMap::default();
                map_block(job, block, scan_path, &mut |k, v| {
                    emitted += 1;
                    local.entry(k).or_default().push(v);
                });
                for (k, vs) in local {
                    let folded = job.combine(&k, vs);
                    let p = if weighted { 0 } else { partition_of(&k, num_reducers) };
                    let h = weighted.then(|| key_hash(&k));
                    let mut folded = folded.into_iter().peekable();
                    while let Some(v) = folded.next() {
                        if let Some(h) = h {
                            sketch.observe(h, 1);
                        }
                        if folded.peek().is_some() {
                            partitions[p].push((k.clone(), v));
                        } else {
                            // Move the key into the last record.
                            partitions[p].push((k, v));
                            break;
                        }
                    }
                }
            }
        }
        (partitions, emitted, bytes, sketch.finish())
    });

    // ---- shuffle: merge worker partitions ----
    let mut map_output_records = 0u64;
    let mut bytes_scanned = 0u64;
    let mut merged_sketch = KeySketch::new();
    type WorkerParts<K, V> = Vec<Vec<(K, V)>>;
    let mut worker_parts: Vec<WorkerParts<J::K, J::V>> = Vec::with_capacity(num_threads);
    for (parts, emitted, bytes, sketch) in worker_outputs {
        map_output_records += emitted;
        bytes_scanned += bytes;
        if weighted {
            merged_sketch.merge(sketch);
        }
        worker_parts.push(parts);
    }
    // Weighted: build the plan from the merged sketches, then route every
    // record through it — "shuffle partitions by the same plan". Hash:
    // workers already partitioned; concatenate.
    let plan = weighted.then(|| {
        PartitionPlan::build(
            &merged_sketch,
            num_reducers,
            cfg.partition.split_factor_x1000(),
        )
    });
    let shuffled: Vec<Vec<(J::K, J::V)>> = match &plan {
        Some(plan) => {
            let mut shuffled: Vec<Vec<(J::K, J::V)>> =
                (0..plan.nbins()).map(|_| Vec::new()).collect();
            for parts in worker_parts {
                for part in parts {
                    for (k, v) in part {
                        shuffled[plan.bin_of_hash(key_hash(&k))].push((k, v));
                    }
                }
            }
            shuffled
        }
        None => {
            let mut shuffled: Vec<Vec<(J::K, J::V)>> =
                (0..num_reducers).map(|_| Vec::new()).collect();
            for parts in worker_parts {
                for (p, mut recs) in parts.into_iter().enumerate() {
                    shuffled[p].append(&mut recs);
                }
            }
            shuffled
        }
    };
    if let (Some(c), Some(t0)) = (core, map_t0) {
        c.tracer
            .span("map_phase", t0, Ids::none().jobs(num_threads as u64));
        let shuffle_records: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        let m = &c.metrics;
        m.counter("engine.map_records").add(map_output_records);
        m.counter("engine.blocks_scanned").add(num_blocks as u64);
        m.counter("engine.bytes_scanned").add(bytes_scanned);
        m.counter("engine.shuffle_records").add(shuffle_records);
        // Combiner effectiveness, post hoc: every emitted record the
        // map-side combine absorbed is one record the shuffle never saw.
        m.counter("engine.combiner_fold_hits")
            .add(map_output_records.saturating_sub(shuffle_records));
    }

    // ---- reduce phase: workers take partitions by move ----
    let reduce_t0 = core.map(|c| c.tracer.now_us());
    let next_partition = AtomicUsize::new(0);
    let num_partitions = shuffled.len();
    type LockedPartition<J> =
        Mutex<Vec<(<J as MapReduceJob>::K, <J as MapReduceJob>::V)>>;
    let shuffled: Vec<LockedPartition<J>> = shuffled.into_iter().map(Mutex::new).collect();
    let shuffled = &shuffled;
    let reduced: Vec<Vec<(J::K, J::Out)>> = pool.broadcast(num_threads, &|_| {
        let mut out = Vec::new();
        loop {
            let p = next_partition.fetch_add(1, Ordering::Relaxed);
            if p >= num_partitions {
                break;
            }
            let part = std::mem::take(&mut *shuffled[p].lock());
            reduce_partition(job, part, &mut out);
        }
        out
    });

    // Each key lives in exactly one partition, so the concatenation has no
    // duplicates: one sort plus a bulk tree build beats per-key ordered
    // inserts (which re-compare the key at every tree level).
    let mut flat: Vec<(J::K, J::Out)> = Vec::new();
    for part in reduced {
        flat.extend(part);
    }
    flat.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let records = BTreeMap::from_iter(flat);
    if let (Some(c), Some(t0)) = (core, reduce_t0) {
        c.tracer
            .span("reduce_phase", t0, Ids::none().jobs(num_partitions as u64));
    }
    let stats = ScanStats {
        blocks_scanned: num_blocks as u64,
        bytes_scanned,
        map_output_records,
        reduce_output_records: records.len() as u64,
    };
    JobOutput { records, stats }
}

/// Group one owned partition by key — moving records, never cloning — and
/// reduce each group into `out` (unordered; the caller sorts once).
fn reduce_partition<J: MapReduceJob>(
    job: &J,
    part: Vec<(J::K, J::V)>,
    out: &mut Vec<(J::K, J::Out)>,
) {
    // Group under a hash map — O(1) per record instead of a B-tree's
    // log-n key compares — and only pay for ordering once, inserting the
    // surviving (key, output) pairs into the sorted result.
    if job.combine_is_fold() {
        let mut grouped: FxHashMap<J::K, J::V> = FxHashMap::default();
        for (k, v) in part {
            match grouped.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    job.combine_fold(e.get_mut(), v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        for (k, v) in grouped {
            if let Some(o) = job.reduce(&k, std::slice::from_ref(&v)) {
                out.push((k, o));
            }
        }
    } else {
        let mut grouped: FxHashMap<J::K, Vec<J::V>> = FxHashMap::default();
        for (k, v) in part {
            grouped.entry(k).or_default().push(v);
        }
        for (k, vs) in grouped {
            if let Some(o) = job.reduce(&k, &vs) {
                out.push((k, o));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        let text = "apple banana apple\ncherry apple banana\napricot cherry\n".repeat(50);
        BlockStore::from_text(&text, 200)
    }

    #[test]
    fn wordcount_is_correct() {
        let out = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 4,
                num_reducers: 4,
            ..ExecConfig::default()
            },
        );
        assert_eq!(out.records["apple"], 150);
        assert_eq!(out.records["banana"], 100);
        assert_eq!(out.records["cherry"], 100);
        assert_eq!(out.records["apricot"], 50);
        assert_eq!(out.stats.map_output_records, 400);
        assert_eq!(out.stats.reduce_output_records, 4);
    }

    #[test]
    fn prefix_filter_restricts_output() {
        let out = run_job(
            &PrefixCount { prefix: "ap".into() },
            &store(),
            &ExecConfig::default(),
        );
        assert_eq!(out.records.len(), 2); // apple, apricot
        assert_eq!(out.records["apple"], 150);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 1,
                num_reducers: 3,
            ..ExecConfig::default()
            },
        );
        for threads in [2, 4, 8] {
            let out = run_job(
                &PrefixCount { prefix: "".into() },
                &store(),
                &ExecConfig {
                    num_threads: threads,
                    num_reducers: 3,
                ..ExecConfig::default()
                },
            );
            assert_eq!(out.records, base.records, "threads={threads}");
        }
    }

    #[test]
    fn reducer_count_does_not_change_results() {
        let base = run_job(
            &PrefixCount { prefix: "".into() },
            &store(),
            &ExecConfig {
                num_threads: 4,
                num_reducers: 1,
            ..ExecConfig::default()
            },
        );
        for reducers in [2, 7, 16] {
            let out = run_job(
                &PrefixCount { prefix: "".into() },
                &store(),
                &ExecConfig {
                    num_threads: 4,
                    num_reducers: reducers,
                ..ExecConfig::default()
                },
            );
            assert_eq!(out.records, base.records, "reducers={reducers}");
        }
    }

    #[test]
    fn stats_count_all_bytes() {
        let s = store();
        let out = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.stats.bytes_scanned as usize, s.total_bytes());
        assert_eq!(out.stats.blocks_scanned as usize, s.num_blocks());
    }

    #[test]
    fn pool_reuse_across_jobs_matches_fresh_pools() {
        let s = store();
        let cfg = ExecConfig {
            num_threads: 2,
            num_reducers: 4,
        ..ExecConfig::default()
        };
        let pool = WorkerPool::new(2);
        for prefix in ["", "ap", "ba", "zz"] {
            let job = PrefixCount { prefix: prefix.into() };
            let on_pool = run_job_on(&pool, &job, &s, &cfg);
            let fresh = run_job(&job, &s, &cfg);
            assert_eq!(on_pool.records, fresh.records, "prefix {prefix:?}");
            assert_eq!(on_pool.stats, fresh.stats, "prefix {prefix:?}");
        }
        assert_eq!(pool.threads_spawned(), 2, "one pool for all four jobs");
    }
}
