//! The MRShare-style file-based shared-scan baseline (Nykiel et al.,
//! PVLDB 2010), re-implemented as in the paper's Section V-B.
//!
//! Jobs are grouped into batches ahead of execution; each batch is merged
//! into a single job that scans the file once for all of its members. The
//! batch trigger is the policy under study: the paper evaluates a single
//! batch of all jobs (MRS1), two batches (MRS2), and three batches (MRS3),
//! which map to [`BatchPolicy::FixedGroups`]. Count- and time-window
//! triggers are provided for the arrival-rate sweeps.
//!
//! The defining weakness S³ attacks: a job submitted early must wait until
//! its whole group has arrived before any of its work starts.

use s3_cluster::NodeId;
use s3_mapreduce::{Batch, BatchKey, JobId, MapTaskSpec, ReduceTaskSpec, SchedCtx, Scheduler};
use s3_sim::{SimDuration, SimTime};

/// When to close a group of waiting jobs into a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchPolicy {
    /// One batch containing exactly the first `expected_jobs` jobs (MRS1
    /// when `expected_jobs` = workload size).
    SingleBatch {
        /// Number of jobs to wait for.
        expected_jobs: usize,
    },
    /// Consecutive groups of the given sizes (MRS2 = `[6, 4]`,
    /// MRS3 = `[3, 3, 4]` for the paper's 10-job workloads). Jobs beyond
    /// the listed groups form trailing groups of the last size.
    FixedGroups(Vec<usize>),
    /// Close a batch every `size` arrivals.
    CountWindow {
        /// Jobs per batch.
        size: usize,
    },
    /// Close a batch `window_s` seconds after its first member arrived.
    TimeWindow {
        /// Window length in seconds.
        window_s: f64,
    },
    /// Like [`BatchPolicy::TimeWindow`], but when the window closes the
    /// waiting jobs are partitioned by the MRShare grouping optimizer
    /// ([`crate::optimizer::optimize_grouping`]) instead of merged
    /// wholesale — the full Nykiel et al. pipeline.
    OptimizedWindow {
        /// Window length in seconds.
        window_s: f64,
    },
}

/// MRShare-style batching scheduler.
#[derive(Debug)]
pub struct MRShareScheduler {
    policy: BatchPolicy,
    label: String,
    waiting: Vec<JobId>,
    groups_closed: usize,
    window_deadline: Option<SimTime>,
    batches: Vec<Batch>,
    next_key: u64,
    /// Seconds of merge-planning cost per job in a batch: MRShare's
    /// optimizer analyzes the group's sharing opportunities and rewrites
    /// the jobs into one merged job before submission (Nykiel et al. §4).
    merge_planning_s_per_job: f64,
}

impl MRShareScheduler {
    /// Create with a policy and a report label ("MRS1", "MRS2", ...).
    pub fn new(policy: BatchPolicy, label: impl Into<String>) -> Self {
        if let BatchPolicy::FixedGroups(sizes) = &policy {
            assert!(!sizes.is_empty(), "FixedGroups needs at least one size");
            assert!(sizes.iter().all(|&s| s > 0), "group sizes must be positive");
        }
        MRShareScheduler {
            policy,
            label: label.into(),
            waiting: Vec::new(),
            groups_closed: 0,
            window_deadline: None,
            batches: Vec::new(),
            next_key: 0,
            merge_planning_s_per_job: 2.5,
        }
    }

    /// MRS1 for an `n`-job workload.
    pub fn mrs1(n: usize) -> Self {
        Self::new(BatchPolicy::SingleBatch { expected_jobs: n }, "MRS1")
    }

    /// MRS2: the paper's two-batch split (first 6 jobs, last 4 for a
    /// 10-job workload), scaled as a 60/40 split for other sizes.
    pub fn mrs2(n: usize) -> Self {
        let first = ((n as f64 * 0.6).ceil() as usize).clamp(1, n.saturating_sub(1).max(1));
        Self::new(
            BatchPolicy::FixedGroups(vec![first, (n - first).max(1)]),
            "MRS2",
        )
    }

    /// MRS3: the paper's three-batch split (3 / 3 / 4) scaled to `n` jobs.
    pub fn mrs3(n: usize) -> Self {
        let base = (n / 3).max(1);
        let last = n.saturating_sub(2 * base).max(1);
        Self::new(BatchPolicy::FixedGroups(vec![base, base, last]), "MRS3")
    }

    fn current_group_target(&self) -> Option<usize> {
        match &self.policy {
            BatchPolicy::SingleBatch { expected_jobs } => {
                (self.groups_closed == 0).then_some(*expected_jobs)
            }
            BatchPolicy::FixedGroups(sizes) => Some(
                *sizes
                    .get(self.groups_closed)
                    .unwrap_or_else(|| sizes.last().expect("non-empty sizes")),
            ),
            BatchPolicy::CountWindow { size } => Some(*size),
            BatchPolicy::TimeWindow { .. } | BatchPolicy::OptimizedWindow { .. } => None,
        }
    }

    fn close_batch(&mut self, ctx: &mut SchedCtx<'_>) {
        debug_assert!(!self.waiting.is_empty());
        let jobs = std::mem::take(&mut self.waiting);
        // All jobs in a group must read the same file (the premise of
        // file-based shared scanning).
        let file = ctx.jobs.get(jobs[0]).file;
        assert!(
            jobs.iter().all(|&j| ctx.jobs.get(j).file == file),
            "MRShare batches must share one input file"
        );

        // Under the optimizer policy, partition the window's jobs into
        // cost-optimal sharing groups; otherwise merge them wholesale.
        let groups: Vec<Vec<JobId>> = if matches!(self.policy, BatchPolicy::OptimizedWindow { .. })
        {
            let profiles: Vec<&s3_mapreduce::JobProfile> =
                jobs.iter().map(|&j| &*ctx.jobs.get(j).profile).collect();
            let meta = ctx.dfs.file(file);
            let block_mb = meta.block_size_bytes as f64 / s3_dfs::MB as f64;
            let node_spec = ctx.cluster.nodes()[0].spec;
            let grouping = crate::optimizer::optimize_grouping(
                &profiles,
                meta.num_blocks() as u64,
                block_mb,
                ctx.cost,
                &node_spec,
                ctx.cluster.network(),
            );
            grouping
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| jobs[i]).collect())
                .collect()
        } else {
            vec![jobs]
        };

        let blocks = ctx.dfs.file(file).blocks.clone();
        for group in groups {
            let key = BatchKey(self.next_key);
            self.next_key += 1;
            let ready = ctx.now
                + SimDuration::from_secs_f64(
                    ctx.cost.submit_overhead_secs(blocks.len())
                        + self.merge_planning_s_per_job * group.len() as f64,
                );
            self.batches.push(Batch::new(
                key,
                group,
                &blocks,
                ctx.jobs,
                ctx.dfs,
                ready,
                ctx.map_slots(),
            ));
            self.groups_closed += 1;
        }
        self.window_deadline = None;
    }

    fn batch_mut(&mut self, key: BatchKey) -> &mut Batch {
        self.batches
            .iter_mut()
            .find(|b| b.key() == key)
            .expect("completion for unknown batch")
    }

    fn reap(&mut self, ctx: &mut SchedCtx<'_>, key: BatchKey) {
        if let Some(pos) = self.batches.iter().position(|b| b.key() == key) {
            if self.batches[pos].is_complete() {
                let batch = self.batches.remove(pos);
                for &job in batch.jobs() {
                    ctx.complete_job(job);
                }
            }
        }
    }
}

impl Scheduler for MRShareScheduler {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
        self.waiting.push(job);
        match self.current_group_target() {
            Some(target) => {
                if self.waiting.len() >= target {
                    self.close_batch(ctx);
                }
            }
            None => {
                // Time window: arm the deadline on the group's first member.
                if self.window_deadline.is_none() {
                    if let BatchPolicy::TimeWindow { window_s }
                    | BatchPolicy::OptimizedWindow { window_s } = self.policy
                    {
                        let deadline = ctx.now + SimDuration::from_secs_f64(window_s);
                        self.window_deadline = Some(deadline);
                        ctx.request_wakeup(deadline);
                    }
                }
            }
        }
    }

    fn on_wakeup(&mut self, ctx: &mut SchedCtx<'_>) {
        if let Some(deadline) = self.window_deadline {
            if ctx.now >= deadline && !self.waiting.is_empty() {
                self.close_batch(ctx);
            }
        }
    }

    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec> {
        let head = self.batches.iter_mut().find(|b| !b.maps_exhausted())?;
        head.next_map_for(node, ctx.now, ctx.dfs, ctx.cluster)
    }

    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId) -> Option<ReduceTaskSpec> {
        self.batches.iter_mut().find_map(|b| b.next_reduce(ctx.now))
    }

    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).on_map_done();
        self.reap(ctx, spec.batch);
    }

    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).on_reduce_done();
        self.reap(ctx, spec.batch);
    }

    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).requeue_map(spec.block);
    }

    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).requeue_reduce(spec.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_cluster::{ClusterTopology, SlowdownSchedule};
    use s3_dfs::{Dfs, FileId, RoundRobinPlacement, MB};
    use s3_mapreduce::{simulate, CostModel, EngineConfig, JobProfile, RunMetrics};
    use std::sync::Arc;

    fn world(blocks: u64) -> (ClusterTopology, Dfs, FileId) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        (cluster, dfs, file)
    }

    fn wc_profile() -> Arc<JobProfile> {
        Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        })
    }

    fn run(sched: &mut MRShareScheduler, blocks: u64, arrivals: &[f64]) -> RunMetrics {
        let (cluster, dfs, file) = world(blocks);
        let workload = s3_mapreduce::job::requests_from_arrivals(&wc_profile(), file, arrivals);
        simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            sched,
            &EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_batch_shares_the_scan_fully() {
        let m = run(&mut MRShareScheduler::mrs1(3), 80, &[0.0, 5.0, 10.0]);
        // The file is read once for all three jobs.
        assert_eq!(m.blocks_read, 80);
        assert!((m.logical_mb_scanned - 3.0 * m.mb_read).abs() < 1e-6);
        // All jobs complete together.
        let done: Vec<_> = m.outcomes.iter().map(|o| o.completed).collect();
        assert_eq!(done[0], done[1]);
        assert_eq!(done[1], done[2]);
    }

    #[test]
    fn early_jobs_wait_for_the_batch() {
        // Job 0 waits ~100s for job 1 before anything runs: its response
        // includes the full wait (the MRShare weakness, Example 2).
        let m = run(&mut MRShareScheduler::mrs1(2), 40, &[0.0, 100.0]);
        let r0 = m.outcomes[0].response().as_secs_f64();
        assert!(r0 > 100.0, "job 0 should have waited: {r0}");
    }

    #[test]
    fn fixed_groups_make_independent_batches() {
        let m = run(
            &mut MRShareScheduler::new(BatchPolicy::FixedGroups(vec![2, 2]), "MRS2"),
            80,
            &[0.0, 5.0, 200.0, 205.0],
        );
        // Two batches scanning the file once each.
        assert_eq!(m.blocks_read, 160);
        // First pair completes long before the second pair.
        assert!(m.outcomes[1].completed < m.outcomes[2].submitted + s3_sim::SimDuration::from_secs(400));
        let d0 = m.outcomes[0].completed;
        let d2 = m.outcomes[2].completed;
        assert!(d0 < d2);
    }

    #[test]
    fn count_window_closes_every_n_arrivals() {
        let m = run(
            &mut MRShareScheduler::new(BatchPolicy::CountWindow { size: 2 }, "CW2"),
            40,
            &[0.0, 1.0, 2.0, 3.0],
        );
        assert_eq!(m.blocks_read, 80); // two batches of two jobs
        assert_eq!(m.outcomes.len(), 4);
    }

    #[test]
    fn time_window_flushes_on_deadline() {
        let m = run(
            &mut MRShareScheduler::new(BatchPolicy::TimeWindow { window_s: 30.0 }, "TW"),
            40,
            &[0.0, 10.0, 200.0],
        );
        // Jobs 0,1 batched at t=30; job 2 batched at t=230.
        assert_eq!(m.blocks_read, 80);
        let r0 = m.outcomes[0].response().as_secs_f64();
        assert!(r0 > 30.0, "job 0 waits for the window: {r0}");
        assert_eq!(m.outcomes[0].completed, m.outcomes[1].completed);
        assert!(m.outcomes[2].completed > m.outcomes[1].completed);
    }

    #[test]
    fn optimized_window_groups_mixed_jobs() {
        // Two light wordcount jobs and nothing else arrive in one window:
        // the optimizer merges them (I/O-dominant jobs always share).
        let m = run(
            &mut MRShareScheduler::new(
                BatchPolicy::OptimizedWindow { window_s: 20.0 },
                "MRSopt",
            ),
            80,
            &[0.0, 5.0],
        );
        assert_eq!(m.outcomes.len(), 2);
        assert_eq!(m.blocks_read, 80, "light jobs must share one scan");
        assert_eq!(m.outcomes[0].completed, m.outcomes[1].completed);
    }

    #[test]
    fn optimized_window_runs_successive_windows() {
        let m = run(
            &mut MRShareScheduler::new(
                BatchPolicy::OptimizedWindow { window_s: 10.0 },
                "MRSopt",
            ),
            40,
            &[0.0, 2.0, 300.0],
        );
        assert_eq!(m.outcomes.len(), 3);
        // Two windows: jobs {0,1} share, job 2 scans alone.
        assert_eq!(m.blocks_read, 80);
    }

    #[test]
    fn paper_group_splits() {
        // The helper constructors reproduce the paper's 10-job splits.
        let s = MRShareScheduler::mrs2(10);
        assert_eq!(s.policy, BatchPolicy::FixedGroups(vec![6, 4]));
        let s = MRShareScheduler::mrs3(10);
        assert_eq!(s.policy, BatchPolicy::FixedGroups(vec![3, 3, 4]));
    }

    #[test]
    fn scheduler_label_is_reported() {
        let m = run(&mut MRShareScheduler::mrs1(1), 40, &[0.0]);
        assert_eq!(m.scheduler, "MRS1");
    }
}
