//! Replica placement policies.
//!
//! Placement decides which nodes hold each block's replicas. Two policies
//! are provided:
//!
//! - [`RoundRobinPlacement`] — block `i`'s primary replica goes to node
//!   `i mod n`. This is what the paper's setup effectively produces (4 GB of
//!   locally generated data per node with replication factor 1): block `i`
//!   of a striped file lives on node `i mod 40`, so every segment of 40
//!   blocks has exactly one block on every node — one wave of perfectly
//!   local map tasks.
//! - [`RackAwarePlacement`] — HDFS's default-style policy for replication
//!   factors above 1: primary on a round-robin "writer" node, second replica
//!   on a different rack, third on the second replica's rack.

use rand::Rng;
use s3_cluster::{ClusterTopology, NodeId};

/// Chooses replica nodes for each block of a file being created.
pub trait PlacementPolicy {
    /// Nodes for the replicas of the block with file-local `index`.
    /// Must return exactly `replication` distinct nodes.
    fn place(
        &mut self,
        cluster: &ClusterTopology,
        index: u32,
        replication: u32,
    ) -> Vec<NodeId>;
}

/// Primary replica of block `i` on node `(i + offset) mod n`; additional
/// replicas on the following nodes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPlacement {
    /// Starting node offset (lets different files start their stripe on
    /// different nodes).
    pub offset: u32,
}

impl PlacementPolicy for RoundRobinPlacement {
    fn place(&mut self, cluster: &ClusterTopology, index: u32, replication: u32) -> Vec<NodeId> {
        let n = cluster.num_nodes() as u32;
        assert!(replication >= 1 && replication <= n, "bad replication factor");
        (0..replication)
            .map(|r| NodeId((self.offset + index + r) % n))
            .collect()
    }
}

/// HDFS-style rack-aware placement (replication >= 1).
///
/// Replica 1: the "writer" node, cycled round-robin. Replica 2: a random
/// node on a different rack. Replica 3: another node on replica 2's rack.
/// Further replicas: random distinct nodes.
#[derive(Debug)]
pub struct RackAwarePlacement<R: Rng> {
    rng: R,
    next_writer: u32,
}

impl<R: Rng> RackAwarePlacement<R> {
    /// Create with a seeded RNG for reproducible placement.
    pub fn new(rng: R) -> Self {
        RackAwarePlacement {
            rng,
            next_writer: 0,
        }
    }
}

impl<R: Rng> PlacementPolicy for RackAwarePlacement<R> {
    fn place(&mut self, cluster: &ClusterTopology, _index: u32, replication: u32) -> Vec<NodeId> {
        let n = cluster.num_nodes() as u32;
        assert!(replication >= 1 && replication <= n, "bad replication factor");
        let mut chosen: Vec<NodeId> = Vec::with_capacity(replication as usize);

        let writer = NodeId(self.next_writer % n);
        self.next_writer = self.next_writer.wrapping_add(1);
        chosen.push(writer);

        if replication >= 2 && cluster.num_racks() > 1 {
            let writer_rack = cluster.rack_of(writer);
            let candidates: Vec<NodeId> = cluster
                .nodes()
                .iter()
                .filter(|nd| nd.rack != writer_rack)
                .map(|nd| nd.id)
                .collect();
            let second = candidates[self.rng.gen_range(0..candidates.len())];
            chosen.push(second);

            if replication >= 3 {
                let second_rack = cluster.rack_of(second);
                let candidates: Vec<NodeId> = cluster
                    .nodes()
                    .iter()
                    .filter(|nd| nd.rack == second_rack && !chosen.contains(&nd.id))
                    .map(|nd| nd.id)
                    .collect();
                if let Some(&third) = candidates.first() {
                    let pick = candidates[self.rng.gen_range(0..candidates.len())];
                    chosen.push(if chosen.contains(&pick) { third } else { pick });
                }
            }
        }

        // Fill any remaining replicas (replication > 3, or single-rack
        // clusters) with random distinct nodes.
        while chosen.len() < replication as usize {
            let pick = NodeId(self.rng.gen_range(0..n));
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_stripes_across_all_nodes() {
        let cluster = ClusterTopology::paper_cluster();
        let mut p = RoundRobinPlacement::default();
        let homes: Vec<NodeId> = (0..80).map(|i| p.place(&cluster, i, 1)[0]).collect();
        // Blocks 0..40 cover every node exactly once; 40..80 repeat.
        let mut first_wave: Vec<u32> = homes[..40].iter().map(|n| n.0).collect();
        first_wave.sort_unstable();
        assert_eq!(first_wave, (0..40).collect::<Vec<_>>());
        assert_eq!(homes[0], homes[40]);
    }

    #[test]
    fn round_robin_offset_shifts_stripe() {
        let cluster = ClusterTopology::paper_cluster();
        let mut p = RoundRobinPlacement { offset: 7 };
        assert_eq!(p.place(&cluster, 0, 1)[0], NodeId(7));
        assert_eq!(p.place(&cluster, 39, 1)[0], NodeId(6));
    }

    #[test]
    fn round_robin_multi_replica_distinct() {
        let cluster = ClusterTopology::paper_cluster();
        let mut p = RoundRobinPlacement::default();
        let r = p.place(&cluster, 5, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], NodeId(5));
        assert!(r[1] != r[0] && r[2] != r[1] && r[2] != r[0]);
    }

    #[test]
    fn rack_aware_second_replica_off_rack() {
        let cluster = ClusterTopology::paper_cluster();
        let mut p = RackAwarePlacement::new(SmallRng::seed_from_u64(1));
        for i in 0..100 {
            let r = p.place(&cluster, i, 3);
            assert_eq!(r.len(), 3);
            let racks: Vec<_> = r.iter().map(|&n| cluster.rack_of(n)).collect();
            assert_ne!(racks[0], racks[1], "replica 2 must be off-rack");
            assert_eq!(racks[1], racks[2], "replica 3 shares replica 2's rack");
            assert!(r[1] != r[2], "replicas must be distinct nodes");
        }
    }

    #[test]
    fn rack_aware_is_deterministic_under_seed() {
        let cluster = ClusterTopology::paper_cluster();
        let mut a = RackAwarePlacement::new(SmallRng::seed_from_u64(9));
        let mut b = RackAwarePlacement::new(SmallRng::seed_from_u64(9));
        for i in 0..20 {
            assert_eq!(a.place(&cluster, i, 3), b.place(&cluster, i, 3));
        }
    }
}
