#![warn(missing_docs)]

//! # s3-workloads — the paper's workloads, data, and arrival patterns
//!
//! Everything Section V of the paper evaluates with:
//!
//! - [`text`] — a deterministic Gutenberg-like text generator (Zipfian
//!   vocabulary, prose-shaped lines) standing in for the paper's 160 GB of
//!   Project Gutenberg novels;
//! - [`lineitem`] — a TPC-H `lineitem` row generator (16 columns) standing
//!   in for the paper's 400 GB table;
//! - [`jobs`] — real [`s3_engine::MapReduceJob`] implementations: the
//!   pattern-filtered wordcount family and the SQL-selection family;
//! - [`profiles`] — the matching simulator [`s3_mapreduce::JobProfile`]s
//!   (normal wordcount per Table I, heavy wordcount, selection) and the
//!   Table I workload-statistics derivation;
//! - [`arrivals`] — arrival-pattern generators: the paper's dense and
//!   sparse (3-group) presets, plus uniform and Poisson sweeps;
//! - [`datasets`] — the simulated DFS files for each experiment at 32, 64,
//!   and 128 MB block sizes.

pub mod arrivals;
pub mod datasets;
pub mod jobs;
pub mod lineitem;
pub mod profiles;
pub mod text;

pub use arrivals::{ArrivalPattern, ClassMix};
pub use datasets::{paper_lineitem_file, paper_wordcount_file, per_node_file, per_node_file_with, Dataset};
pub use jobs::{GrepJob, PatternWordCount, SelectionJob, WordLengthHistogram};
pub use profiles::{grep, selection, table1, wordcount_heavy, wordcount_normal, Table1};
