//! Hadoop's default FIFO scheduler (the naïve no-sharing baseline).
//!
//! Jobs are processed in submission order. A later job's map tasks cannot
//! start until every map task of the job ahead of it has been handed out
//! (the paper's footnote 4: "the next job cannot start its map tasks until
//! the current job releases its map slots"). Reduce phases overlap the next
//! job's maps because they occupy separate slots. Every job scans the whole
//! file by itself — no sharing.

use s3_cluster::NodeId;
use s3_mapreduce::{Batch, BatchKey, JobId, MapTaskSpec, ReduceTaskSpec, SchedCtx, Scheduler};
use s3_sim::SimDuration;

/// FIFO scheduler state: incomplete single-job batches in submission order.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    batches: Vec<Batch>,
    next_key: u64,
}

impl FifoScheduler {
    /// A fresh FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }

    fn batch_mut(&mut self, key: BatchKey) -> &mut Batch {
        self.batches
            .iter_mut()
            .find(|b| b.key() == key)
            .expect("completion for unknown batch")
    }

    /// If `key`'s batch is fully complete, report its jobs and drop it.
    fn reap(&mut self, ctx: &mut SchedCtx<'_>, key: BatchKey) {
        if let Some(pos) = self.batches.iter().position(|b| b.key() == key) {
            if self.batches[pos].is_complete() {
                let batch = self.batches.remove(pos);
                for &job in batch.jobs() {
                    ctx.complete_job(job);
                }
            }
        }
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
        let req = ctx.jobs.get(job);
        let blocks = ctx.dfs.file(req.file).blocks.clone();
        let key = BatchKey(self.next_key);
        self.next_key += 1;
        let ready = ctx.now + SimDuration::from_secs_f64(ctx.cost.submit_overhead_secs(blocks.len()));
        self.batches.push(Batch::new(
            key,
            vec![job],
            &blocks,
            ctx.jobs,
            ctx.dfs,
            ready,
            ctx.map_slots(),
        ));
    }

    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec> {
        // Strict FIFO: only the first batch with unassigned maps may hand
        // out work; a later job waits for the head job to exhaust its maps.
        let head = self.batches.iter_mut().find(|b| !b.maps_exhausted())?;
        head.next_map_for(node, ctx.now, ctx.dfs, ctx.cluster)
    }

    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId) -> Option<ReduceTaskSpec> {
        self.batches
            .iter_mut()
            .find_map(|b| b.next_reduce(ctx.now))
    }

    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).on_map_done();
        // Map-only jobs complete here.
        self.reap(ctx, spec.batch);
    }

    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).on_reduce_done();
        self.reap(ctx, spec.batch);
    }

    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).requeue_map(spec.block);
    }

    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).requeue_reduce(spec.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_cluster::{ClusterTopology, SlowdownSchedule};
    use s3_dfs::{Dfs, FileId, RoundRobinPlacement, MB};
    use s3_mapreduce::{simulate, CostModel, EngineConfig, JobProfile, RunMetrics};
    use std::sync::Arc;

    fn world(blocks: u64) -> (ClusterTopology, Dfs, FileId) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        (cluster, dfs, file)
    }

    fn wc_profile() -> Arc<JobProfile> {
        Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        })
    }

    fn run(blocks: u64, arrivals: &[f64]) -> RunMetrics {
        let (cluster, dfs, file) = world(blocks);
        let workload = s3_mapreduce::job::requests_from_arrivals(&wc_profile(), file, arrivals);
        simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut FifoScheduler::new(),
            &EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_job_completes() {
        let m = run(80, &[0.0]);
        assert_eq!(m.outcomes.len(), 1);
        assert_eq!(m.blocks_read, 80);
        // Two waves of 40 local maps plus reduces: tens of seconds.
        let t = m.tet().as_secs_f64();
        assert!(t > 5.0 && t < 60.0, "unexpected single-job time {t}");
        // All maps should be node-local under round-robin striping.
        assert!(m.locality_rate() > 0.95, "locality {}", m.locality_rate());
    }

    #[test]
    fn fifo_serializes_jobs_and_never_shares() {
        let m = run(80, &[0.0, 1.0, 2.0]);
        assert_eq!(m.outcomes.len(), 3);
        // No sharing: every job reads the whole file itself.
        assert_eq!(m.blocks_read, 240);
        assert_eq!(m.mb_read, m.logical_mb_scanned);
        // Later jobs wait: responses are ordered and roughly arithmetic.
        let r: Vec<f64> = m.outcomes.iter().map(|o| o.response().as_secs_f64()).collect();
        assert!(r[0] < r[1] && r[1] < r[2], "responses {r:?}");
        // Job 3's response grows markedly over job 1's (serial map phases;
        // reduce tails overlap the next job's maps, so the ratio sits
        // below a strict 3x).
        let ratio = r[2] / r[0];
        assert!((1.5..4.0).contains(&ratio), "serialization ratio {ratio}");
    }

    #[test]
    fn idle_gap_between_sparse_jobs() {
        // Second job arrives long after the first completes: both respond
        // in about the single-job time.
        let m = run(40, &[0.0, 500.0]);
        let r: Vec<f64> = m.outcomes.iter().map(|o| o.response().as_secs_f64()).collect();
        assert!((r[0] - r[1]).abs() / r[0] < 0.3, "responses should match: {r:?}");
        assert!(m.tet().as_secs_f64() > 500.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(80, &[0.0, 10.0]);
        let b = run(80, &[0.0, 10.0]);
        assert_eq!(a.tet(), b.tet());
        assert_eq!(a.art(), b.art());
    }
}
