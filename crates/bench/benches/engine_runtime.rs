//! Criterion benches of the worker-pool engine runtime — the same three
//! scenarios `s3bench` snapshots into `BENCH_engine.json`:
//!
//! - `single_job`: one `run_job` pass over the corpus;
//! - `shared_scan_bps1`: a `SharedScanServer` revolution serving 4
//!   concurrent jobs at one-block segments (the smallest segments, where
//!   per-iteration fixed costs dominate — the configuration the persistent
//!   pool exists for);
//! - `admission_scenario`: a probe job landing on an already-live
//!   revolution, measured end to end (server start, background job,
//!   probe, drain). `s3bench` isolates the probe's submit-to-complete
//!   interval; this bench tracks the whole scenario over time.
//!
//! Plus `assist_threads/t{1,2,4,8,16}`: the shared revolution at
//! four-block segments with work-assisting block claims on, swept across
//! worker-thread counts, so the claim loop's coordination cost (one
//! `fetch_add` per block, plus tail re-execution) is visible as the
//! worker set — and with it contention on the claim cursor — grows past
//! the core count.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use s3_engine::{
    run_job, BlockStore, ExecConfig, FtConfig, ServerConfig, SharedScanServer,
};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::Duration;

const THREADS: usize = 2;
const SHARED_JOBS: usize = 4;

fn corpus() -> BlockStore {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), 2 << 20);
    BlockStore::from_text(&text, 4 << 10)
}

fn prefixes(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("{}a", (b'b' + i as u8) as char))
        .collect()
}

fn bench_engine_runtime(c: &mut Criterion) {
    let store = corpus();
    let mut g = c.benchmark_group("engine_runtime");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));

    g.bench_function("single_job", |b| {
        let cfg = ExecConfig {
            num_threads: THREADS,
            num_reducers: 8,
        ..ExecConfig::default()
        };
        let job = PatternWordCount::all();
        b.iter(|| run_job(&job, &store, &cfg));
    });

    g.bench_function("shared_scan_bps1", |b| {
        b.iter(|| {
            let server = SharedScanServer::new(store.clone(), 1, THREADS);
            let handles: Vec<_> = prefixes(SHARED_JOBS)
                .into_iter()
                .map(|p| server.submit(PatternWordCount::prefix(p)))
                .collect();
            let outs: Vec<_> = handles.into_iter().map(|h| h.wait().expect("job completed")).collect();
            server.shutdown();
            outs
        });
    });

    g.bench_function("admission_scenario", |b| {
        b.iter(|| {
            let server = SharedScanServer::new(store.clone(), 1, THREADS);
            let background = server.submit(PatternWordCount::all());
            while server.iterations() < 4 {
                std::thread::sleep(Duration::from_micros(200));
            }
            let probe = server.submit(PatternWordCount::prefix("qa"));
            let out = probe.wait().expect("job completed");
            background.wait().expect("job completed");
            server.shutdown();
            out
        });
    });

    g.finish();
}

/// Thread sweep over the work-assisting shared scan: 4 jobs, 4-block
/// segments, `FtConfig::resilient()` with assist on (the default), at
/// 1/2/4/8/16 virtual workers.
fn bench_assist_thread_sweep(c: &mut Criterion) {
    let store = corpus();
    let mut g = c.benchmark_group("assist_threads");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));

    for threads in [1usize, 2, 4, 8, 16] {
        g.bench_function(format!("t{threads}"), |b| {
            b.iter(|| {
                let mut cfg = ServerConfig::new(4, threads);
                cfg.ft = FtConfig::resilient();
                let server = SharedScanServer::with_config(store.clone(), cfg);
                let handles: Vec<_> = prefixes(SHARED_JOBS)
                    .into_iter()
                    .map(|p| server.submit(PatternWordCount::prefix(p)))
                    .collect();
                let outs: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.wait().expect("job completed"))
                    .collect();
                server.shutdown();
                outs
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_engine_runtime, bench_assist_thread_sweep);
criterion_main!(benches);
