//! The reproduction's headline claims, pinned as tests: the *shapes* of
//! every table and figure in the paper's evaluation. Absolute seconds are
//! not asserted (our substrate is a simulator, not the authors' testbed);
//! orderings and coarse ratios are.
//!
//! These run the full 40-node simulations and are the slowest tests in the
//! workspace (a few seconds in debug builds).

use s3_bench::experiments::{
    run_examples, run_fig3, run_fig4, run_table1, Fig4Variant, DEFAULT_SEED,
};

#[test]
fn table1_matches_paper() {
    let t = run_table1(DEFAULT_SEED);
    assert!((t.input_mb - 160.0 * 1024.0).abs() < 1.0);
    assert!((2.3e8..2.7e8).contains(&t.map_output_records), "{}", t.map_output_records);
    assert!((55_000.0..85_000.0).contains(&t.reduce_output_records));
    assert!((2.2 * 1024.0..2.6 * 1024.0).contains(&t.map_output_mb));
    assert!((1.2..1.8).contains(&t.reduce_output_mb));
    // "~240 sec" single-job processing time; allow a generous band.
    assert!(
        (200.0..290.0).contains(&t.processing_time_s),
        "processing time {}",
        t.processing_time_s
    );
}

#[test]
fn fig3_combined_job_overhead_is_mild_and_monotone() {
    let r = run_fig3(10, DEFAULT_SEED);
    // Monotone: combining more jobs never gets cheaper.
    for w in r.points.windows(2) {
        assert!(w[1].tet_s >= w[0].tet_s * 0.995, "TET must not shrink");
        assert!(w[1].avg_map_s >= w[0].avg_map_s);
        assert!(w[1].avg_reduce_s >= w[0].avg_reduce_s);
    }
    // Paper: ten combined jobs cost +25.5% TET, +28.8% map, +23.5% reduce.
    // Pin the coarse bands: overhead must be tens of percent, not 10x.
    let (tet, map, reduce) = r.overhead_at(10);
    assert!((1.15..1.55).contains(&tet), "TET ratio {tet}");
    assert!((1.15..1.50).contains(&map), "map ratio {map}");
    assert!((1.10..1.50).contains(&reduce), "reduce ratio {reduce}");
}

#[test]
fn fig4a_sparse_normal_orderings() {
    let r = run_fig4(Fig4Variant::SparseNormal64, DEFAULT_SEED);
    let tet = |n: &str| r.get(n).unwrap().tet_s;
    let art = |n: &str| r.get(n).unwrap().art_s;

    // FIFO is far worse than S3 on both metrics (paper: 2.2x / 2.5x).
    assert!(tet("FIFO") / tet("S3") > 1.6, "FIFO TET ratio");
    assert!(art("FIFO") / art("S3") > 2.0, "FIFO ART ratio");
    // S3 has the best ART outright.
    for name in ["FIFO", "MRS1", "MRS2", "MRS3"] {
        assert!(art(name) >= art("S3"), "{name} ART must not beat S3");
    }
    // MRS1 batches everything: worst ART among MRShare variants.
    assert!(art("MRS1") > art("MRS2") && art("MRS2") > art("MRS3"));
    // MRShare TET stays within a few percent of S3 (paper: 1.03-1.32x;
    // see EXPERIMENTS.md for why our faithful queueing model narrows it).
    for name in ["MRS1", "MRS2", "MRS3"] {
        let ratio = tet(name) / tet("S3");
        assert!((0.93..1.4).contains(&ratio), "{name} TET ratio {ratio}");
    }
}

#[test]
fn fig4b_dense_mrs1_wins_and_mrs3_collapses() {
    let r = run_fig4(Fig4Variant::DenseNormal64, DEFAULT_SEED);
    let tet = |n: &str| r.get(n).unwrap().tet_s;
    let art = |n: &str| r.get(n).unwrap().art_s;
    // Paper: in a dense pattern MRS1 is the best, even better than S3.
    assert!(tet("MRS1") <= tet("S3"), "MRS1 must win TET dense");
    assert!(art("MRS1") <= art("S3"), "MRS1 must win ART dense");
    // Paper: MRS3 extends TET/ART significantly (up to >3x S3).
    assert!(tet("MRS3") / tet("S3") > 1.7, "MRS3 must collapse");
    // FIFO stays terrible.
    assert!(tet("FIFO") / tet("S3") > 3.0);
}

#[test]
fn fig4c_heavy_workload_dilutes_sharing() {
    let normal = run_fig4(Fig4Variant::SparseNormal64, DEFAULT_SEED);
    let heavy = run_fig4(Fig4Variant::SparseHeavy64, DEFAULT_SEED);
    // Paper: S3's TET grows ~40% under the heavy workload.
    let growth = heavy.s3_tet() / normal.s3_tet();
    assert!((1.2..1.6).contains(&growth), "heavy S3 TET growth {growth}");
    // Sharing matters less: the MRShare-vs-S3 TET spread narrows while
    // MRS1's ART stays bad.
    let art = |n: &str| heavy.get(n).unwrap().art_s;
    assert!(art("MRS1") / art("S3") > 1.5, "MRS1 ART must stay bad");
}

#[test]
fn fig4d_large_blocks_shrink_s3s_edge() {
    let d64 = run_fig4(Fig4Variant::SparseNormal64, DEFAULT_SEED);
    let d128 = run_fig4(Fig4Variant::SparseNormal128, DEFAULT_SEED);
    // 128 MB blocks give the fastest absolute processing (paper V-F).
    assert!(d128.s3_tet() < d64.s3_tet());
    // FIFO's TET disadvantage narrows at 128 MB vs 64 MB...
    let fifo_ratio_64 = d64.get("FIFO").unwrap().tet_s / d64.s3_tet();
    let fifo_ratio_128 = d128.get("FIFO").unwrap().tet_s / d128.s3_tet();
    assert!(
        fifo_ratio_128 < fifo_ratio_64,
        "FIFO gap must shrink: {fifo_ratio_64} -> {fifo_ratio_128}"
    );
    // ...but S3 still clearly wins ART (paper: "still wins in ART").
    assert!(d128.get("FIFO").unwrap().art_s / d128.s3_art() > 1.5);
}

#[test]
fn fig4e_small_blocks_slow_everyone_but_s3_still_wins_art() {
    let d64 = run_fig4(Fig4Variant::SparseNormal64, DEFAULT_SEED);
    let d32 = run_fig4(Fig4Variant::SparseNormal32, DEFAULT_SEED);
    // Everything is slower at 32 MB (paper: worst of the three sizes).
    assert!(d32.s3_tet() > d64.s3_tet());
    assert!(
        d32.get("FIFO").unwrap().tet_s > d64.get("FIFO").unwrap().tet_s
    );
    // S3 keeps the best ART; FIFO collapses hardest.
    let art = |n: &str| d32.get(n).unwrap().art_s;
    for name in ["FIFO", "MRS1", "MRS2", "MRS3"] {
        assert!(art(name) > art("S3"), "{name}");
    }
    assert!(art("FIFO") / art("S3") > 2.5);
}

#[test]
fn fig4f_selection_s3_beats_everything() {
    let r = run_fig4(Fig4Variant::Selection64, DEFAULT_SEED);
    let tet = |n: &str| r.get(n).unwrap().tet_s;
    let art = |n: &str| r.get(n).unwrap().art_s;
    // Paper: S3 outperforms MRShare in both TET and ART; FIFO much worse.
    for name in ["FIFO", "MRS1", "MRS2", "MRS3"] {
        assert!(tet(name) > tet("S3"), "{name} TET");
        assert!(art(name) > art("S3"), "{name} ART");
    }
    assert!(tet("FIFO") / tet("S3") > 2.0);
}

#[test]
fn section3_examples_are_exact() {
    let r = run_examples();
    let get = |scenario: &str, scheme: &str| -> (f64, f64) {
        r.rows
            .iter()
            .find(|(sc, s, _, _)| sc.starts_with(scenario) && s == scheme)
            .map(|&(_, _, t, a)| (t, a))
            .expect("row exists")
    };
    assert_eq!(get("Example 1", "FIFO"), (200.0, 140.0));
    assert_eq!(get("Example 1", "MRShare"), (120.0, 110.0));
    assert_eq!(get("Example 1", "S3"), (120.0, 100.0));
    assert_eq!(get("Example 2", "FIFO"), (200.0, 110.0));
    assert_eq!(get("Example 2", "MRShare"), (180.0, 140.0));
    assert_eq!(get("Example 2", "S3"), (180.0, 100.0));
}
