//! Vendored scan-kernel microbenchmarks: SWAR newline finding, whitespace
//! token splitting, and a full single-thread wordcount map pass, each at
//! 1 KiB / 64 KiB / 1 MiB. Throughput is reported in bytes/s — the kernel
//! target is >1 GB/s on the tokenization pass.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s3_engine::TokenMap;
use s3_sim::SimRng;
use s3_workloads::text::TextGen;

const SIZES: [(usize, &str); 3] = [(1 << 10, "1KiB"), (64 << 10, "64KiB"), (1 << 20, "1MiB")];

fn corpus(bytes: usize) -> Vec<u8> {
    let gen = TextGen::new(10_000, 1.1);
    gen.generate(&mut SimRng::seed_from_u64(31), bytes).into_bytes()
}

fn bench_scan_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_kernel");
    for (bytes, label) in SIZES {
        let data = corpus(bytes);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("newline_find", label), &data, |b, d| {
            b.iter(|| memchr::count_lines(black_box(d)));
        });
        g.bench_with_input(BenchmarkId::new("token_split", label), &data, |b, d| {
            b.iter(|| {
                let mut n = 0usize;
                let mut total = 0usize;
                memchr::for_each_token(black_box(d), |tok| {
                    n += 1;
                    total += tok.len();
                });
                (n, total)
            });
        });
        // The per-token iterator, kept alongside the callback tokenizer so
        // regressions in either path are visible.
        g.bench_with_input(BenchmarkId::new("token_split_iter", label), &data, |b, d| {
            b.iter(|| {
                let mut n = 0usize;
                let mut total = 0usize;
                for tok in memchr::tokens(black_box(d)) {
                    n += 1;
                    total += tok.len();
                }
                (n, total)
            });
        });
        // Full wordcount map pass: tokenize + fold counts under raw token
        // bytes in the per-worker arena (the engine's fast-path inner loop).
        g.bench_with_input(BenchmarkId::new("wordcount_map", label), &data, |b, d| {
            b.iter(|| {
                let mut m: TokenMap<i64> = TokenMap::new();
                let d: &[u8] = black_box(d);
                memchr::for_each_token(d, |tok| {
                    m.upsert_within(d, tok, 1, |a, n| *a += n);
                });
                m.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan_kernel);
criterion_main!(benches);
