//! Execution-trace invariants: structural properties of the schedule that
//! must hold for any scheduler, verified on full traces.

use s3_cluster::{ClusterTopology, NodeId, SlowdownSchedule};
use s3_core::{FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate_traced, CostModel, EngineConfig, RunMetrics, Scheduler,
    Trace, TraceKind,
};
use s3_workloads::{per_node_file, wordcount_normal};

fn traced_run(scheduler: &mut dyn Scheduler, arrivals: &[f64]) -> (RunMetrics, Trace) {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "trace", 1, 64); // 640 blocks
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, arrivals);
    simulate_traced(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig::default(),
        Some(Trace::new()),
    )
    .expect("traced run completes")
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(S3Scheduler::default()),
        Box::new(FifoScheduler::new()),
        Box::new(MRShareScheduler::mrs2(3)),
    ]
}

#[test]
fn map_intervals_never_overlap_on_a_slot() {
    // One map slot per node: intervals on each node must be disjoint.
    for mut s in schedulers() {
        let (m, trace) = traced_run(s.as_mut(), &[0.0, 20.0, 40.0]);
        for node_id in 0..40u32 {
            let mut iv = trace.map_intervals_on(NodeId(node_id));
            iv.sort_by_key(|&(s, _)| s);
            for w in iv.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "{}: overlapping maps on node{node_id}: {:?}",
                    m.scheduler,
                    w
                );
            }
        }
    }
}

#[test]
fn trace_event_counts_are_balanced() {
    for mut s in schedulers() {
        let (m, trace) = traced_run(s.as_mut(), &[0.0, 20.0, 40.0]);
        let starts = trace.of_kind(TraceKind::MapStart).count();
        let ends = trace.of_kind(TraceKind::MapEnd).count();
        assert_eq!(starts, ends, "{}", m.scheduler);
        assert_eq!(starts as u64, m.blocks_read, "{}", m.scheduler);
        assert_eq!(trace.of_kind(TraceKind::JobSubmitted).count(), 3);
        assert_eq!(trace.of_kind(TraceKind::JobCompleted).count(), 3);
        let rstarts = trace.of_kind(TraceKind::ReduceStart).count();
        let rends = trace.of_kind(TraceKind::ReduceEnd).count();
        assert_eq!(rstarts, rends, "{}", m.scheduler);
    }
}

#[test]
fn completions_follow_all_of_a_jobs_work() {
    // A job's completion event must come after the last task that served it.
    for mut s in schedulers() {
        let (m, trace) = traced_run(s.as_mut(), &[0.0, 30.0]);
        for outcome in &m.outcomes {
            let last_task_end = trace
                .events()
                .iter()
                .filter(|e| {
                    matches!(e.kind, TraceKind::MapEnd | TraceKind::ReduceEnd)
                        && e.jobs.contains(&outcome.job)
                })
                .map(|e| e.at)
                .max()
                .expect("job ran tasks");
            assert!(
                outcome.completed >= last_task_end,
                "{}: job completed before its last task",
                m.scheduler
            );
        }
    }
}

#[test]
fn s3_keeps_the_cluster_busy_during_overlap() {
    // With two overlapping jobs, S3's map slots stay well utilized on
    // every node over the run.
    let (_, trace) = traced_run(&mut S3Scheduler::default(), &[0.0, 10.0]);
    let mut total = 0.0;
    for node_id in 0..40u32 {
        total += trace.map_utilization_of(NodeId(node_id));
    }
    let avg = total / 40.0;
    assert!(avg > 0.5, "average map utilization too low: {avg:.2}");
}

#[test]
fn shared_tasks_carry_every_merged_job() {
    // Under S3 with two fully-overlapping jobs, some map tasks must list
    // both jobs (the merged sub-jobs), and those tasks dominate.
    let (m, trace) = traced_run(&mut S3Scheduler::default(), &[0.0, 5.0]);
    let shared = trace
        .of_kind(TraceKind::MapStart)
        .filter(|e| e.jobs.len() == 2)
        .count();
    let solo = trace
        .of_kind(TraceKind::MapStart)
        .filter(|e| e.jobs.len() == 1)
        .count();
    assert!(shared > 0, "no shared tasks recorded");
    assert!(
        shared > solo,
        "sharing should dominate: {shared} shared vs {solo} solo ({})",
        m.scheduler
    );
}

#[test]
fn s3_runs_one_merged_subjob_map_phase_at_a_time() {
    // Partial job initialization: per scan, the next merged sub-job's map
    // phase starts only after the current one's maps all finished. In the
    // trace: order batches by their first MapStart; then every batch's
    // first MapStart must be at or after the previous batch's last MapEnd.
    use std::collections::BTreeMap;
    let (_, trace) = traced_run(&mut S3Scheduler::default(), &[0.0, 15.0, 30.0]);
    let mut first_start: BTreeMap<u64, s3_sim::SimTime> = BTreeMap::new();
    let mut last_end: BTreeMap<u64, s3_sim::SimTime> = BTreeMap::new();
    for e in trace.events() {
        let Some(batch) = e.batch else { continue };
        match e.kind {
            TraceKind::MapStart => {
                first_start.entry(batch.0).or_insert(e.at);
            }
            TraceKind::MapEnd => {
                last_end.insert(batch.0, e.at);
            }
            _ => {}
        }
    }
    let mut ordered: Vec<(u64, s3_sim::SimTime)> = first_start.iter().map(|(&b, &t)| (b, t)).collect();
    ordered.sort_by_key(|&(_, t)| t);
    assert!(ordered.len() > 2, "expected several sub-jobs");
    for w in ordered.windows(2) {
        let (prev_batch, _) = w[0];
        let (next_batch, next_first) = w[1];
        let prev_last = last_end[&prev_batch];
        assert!(
            next_first >= prev_last,
            "batch {next_batch} maps started at {next_first} before batch {prev_batch} finished at {prev_last}"
        );
    }
}

#[test]
fn timeline_renders_at_cluster_scale() {
    let (_, trace) = traced_run(&mut S3Scheduler::default(), &[0.0, 20.0]);
    let nodes: Vec<NodeId> = (0..40).map(NodeId).collect();
    let s = trace.render_timeline(&nodes, 80);
    assert_eq!(s.lines().count(), 41); // header + one row per node
    assert!(s.contains('M'));
}

mod engine_journal {
    //! Journal invariants on a *live* engine trace: the per-job flight
    //! recorder must reconstruct a well-formed timeline for every job a
    //! real observed [`SharedScanServer`] run produced — exactly one
    //! admit, exactly one terminal, segment slices covering the job's
    //! full revolution, and an exact latency decomposition.

    use s3_engine::{BlockStore, Obs, SharedScanServer};
    use s3_obs::journal::{JobJournal, Outcome};
    use s3_sim::SimRng;
    use s3_workloads::jobs::PatternWordCount;
    use s3_workloads::text::TextGen;

    const JOBS: usize = 4;

    fn observed_run() -> (JobJournal, u64) {
        let gen = TextGen::new(10_000, 1.1);
        let text = gen.generate(&mut SimRng::seed_from_u64(47), 256 << 10);
        let store = BlockStore::from_text(&text, 4 << 10);
        let blocks = store.num_blocks() as u64;

        let obs = Obs::new();
        let server = SharedScanServer::new_observed(store, 2, 2, &obs);
        let handles: Vec<_> = (0..JOBS)
            .map(|i| {
                let p = format!("{}a", (b'b' + i as u8) as char);
                server.submit(PatternWordCount::prefix(p))
            })
            .collect();
        // A probe submitted mid-revolution exercises late admission.
        while server.iterations() < 2 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let probe = server.submit(PatternWordCount::prefix("qa"));
        for h in handles {
            h.wait().expect("job completed");
        }
        probe.wait().expect("probe completed");
        server.shutdown();

        let core = obs.core().expect("Obs::new is on");
        let mut journal = JobJournal::from_events(&core.tracer.drain());
        journal.dropped_events = core.tracer.dropped();
        assert_eq!(journal.dropped_events, 0, "test workload fits the ring");
        (journal, blocks)
    }

    #[test]
    fn live_journal_has_one_admit_one_terminal_and_full_coverage_per_job() {
        let (journal, blocks) = observed_run();
        journal.validate().expect("journal invariants hold");
        assert_eq!(journal.jobs.len(), JOBS + 1, "every submitted job has a record");
        for j in &journal.jobs {
            assert_eq!(j.outcome, Outcome::Done, "job {}", j.id);
            assert_eq!(j.admit_events, 1, "job {}", j.id);
            assert_eq!(j.terminal_events, 1, "job {}", j.id);
            // One full revolution: the slices must cover the whole store,
            // and agree with what the engine itself reported at job_done.
            assert_eq!(j.blocks_covered, blocks, "job {}", j.id);
            assert_eq!(j.blocks_reported, Some(blocks), "job {}", j.id);
            let sliced: u64 = j.segments.iter().map(|s| s.blocks_for_job).sum();
            assert_eq!(sliced, blocks, "job {}", j.id);
            assert_eq!(
                j.queue_us + j.scan_us + j.reduce_us,
                j.latency_us,
                "job {}: decomposition is exact",
                j.id
            );
            assert!(!j.reduce_shards.is_empty(), "job {} reduced", j.id);
        }
    }

    #[test]
    fn live_journal_renders_as_schema_valid_chrome_tracks() {
        let (journal, _) = observed_run();
        let chrome = journal.to_chrome_events(2);
        let mut buf = Vec::new();
        s3_obs::chrome::write_chrome_trace(&mut buf, &chrome).expect("serialize");
        let text = std::str::from_utf8(&buf).expect("utf8");
        let n = s3_obs::chrome::validate_chrome_trace(text).expect("schema-valid");
        assert_eq!(n, chrome.len());
        for j in &journal.jobs {
            assert!(text.contains(&format!("\"job {}\"", j.id)), "track for job {}", j.id);
        }
    }
}

#[test]
fn converted_sim_trace_is_complete_and_schema_valid() {
    // Completeness through the shared s3-obs converter: every MapStart
    // pairs into a closed span (MapEnd or MapFailed — no dangling starts),
    // every submitted job reaches its terminal JobCompleted instant, and
    // the exported file passes the Chrome trace-event schema check.
    for mut s in schedulers() {
        let (m, trace) = traced_run(s.as_mut(), &[0.0, 20.0, 40.0]);
        let starts = trace.of_kind(TraceKind::MapStart).count()
            + trace.of_kind(TraceKind::ReduceStart).count();
        let events = trace.to_obs_events();
        let spans = events
            .iter()
            .filter(|e| {
                matches!(e.name, "map" | "map_failed" | "reduce" | "reduce_failed")
            })
            .count();
        assert_eq!(spans, starts, "{}: every task start closes a span", m.scheduler);
        let submitted = events.iter().filter(|e| e.name == "job_submitted").count();
        let completed = events.iter().filter(|e| e.name == "job_completed").count();
        assert_eq!(submitted, 3, "{}", m.scheduler);
        assert_eq!(completed, submitted, "{}: every job reaches a terminal event", m.scheduler);

        let chrome = trace.to_chrome_events(1);
        let mut buf = Vec::new();
        s3_obs::chrome::write_chrome_trace(&mut buf, &chrome).expect("serialize");
        let n = s3_obs::chrome::validate_chrome_trace(std::str::from_utf8(&buf).expect("utf8"))
            .expect("schema-valid");
        assert_eq!(n, chrome.len(), "{}", m.scheduler);
    }
}
