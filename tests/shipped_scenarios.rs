//! The scenario files shipped in `scenarios/` must stay parseable and
//! runnable, and each must demonstrate the effect it was written for.

use s3_bench::scenario::ScenarioSpec;
use std::path::Path;

fn load(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

#[test]
fn all_shipped_scenarios_parse() {
    for name in [
        "fig4a.json",
        "stragglers.json",
        "node_failures.json",
        "priority.json",
    ] {
        let spec = load(name);
        assert!(!spec.schedulers.is_empty(), "{name}");
    }
}

#[test]
fn fig4a_scenario_reproduces_the_panel_orderings() {
    let runs = load("fig4a.json").run().expect("runs");
    assert_eq!(runs.len(), 5);
    let tet = |i: usize| runs[i].metrics.tet().as_secs_f64();
    let art = |i: usize| runs[i].metrics.art().as_secs_f64();
    // 0=S3, 1=FIFO, 2=MRS1, 3=MRS2, 4=MRS3: FIFO far worse, S3 best ART.
    assert!(tet(1) / tet(0) > 1.6);
    for i in 1..5 {
        assert!(art(i) > art(0), "scheduler {i} ART must exceed S3's");
    }
}

#[test]
fn straggler_scenario_shows_slot_checking_win() {
    let runs = load("stragglers.json").run().expect("runs");
    assert_eq!(runs.len(), 2);
    let plain = runs[0].metrics.tet().as_secs_f64();
    let checked = runs[1].metrics.tet().as_secs_f64();
    assert!(
        checked < plain * 0.9,
        "slot checking should recover >10%: {plain} vs {checked}"
    );
}

#[test]
fn failure_scenario_loses_and_recovers_attempts() {
    let runs = load("node_failures.json").run().expect("runs");
    for r in &runs {
        assert_eq!(r.metrics.outcomes.len(), 2, "{}", r.metrics.scheduler);
    }
    assert!(
        runs.iter().any(|r| r.metrics.tasks_failed > 0),
        "the deaths should cost attempts"
    );
}

#[test]
fn priority_scenario_speeds_the_high_job() {
    let runs = load("priority.json").run().expect("runs");
    assert_eq!(runs.len(), 2);
    // The high-priority job is the last submitted (id 9).
    let high_response = |i: usize| {
        runs[i]
            .metrics
            .outcomes
            .iter()
            .find(|o| o.job.0 == 9)
            .expect("job 9 completed")
            .response()
            .as_secs_f64()
    };
    assert!(
        high_response(1) < high_response(0),
        "priority-aware S3 must speed the urgent job: {} vs {}",
        high_response(0),
        high_response(1)
    );
}
