//! Dynamic per-node speed: straggler and slowdown injection.
//!
//! The S³ paper's *periodic slot checking* (Section IV-D-1) exists because
//! real nodes slow down at runtime. A [`SpeedProfile`] is a piecewise-
//! constant multiplier over simulated time; a [`SlowdownSchedule`] collects
//! one profile per node and answers "how fast is node `n` at time `t`?".

use crate::node::NodeId;
use s3_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Piecewise-constant speed multiplier over simulated time.
///
/// The profile starts at 1.0 at time zero; each change point replaces the
/// multiplier from that instant on. Values below 1.0 are slowdowns, above
/// 1.0 speedups.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpeedProfile {
    /// Change points sorted by time: `(at, factor_from_then_on)`.
    changes: Vec<(SimTime, f64)>,
}

impl SpeedProfile {
    /// A constant 1.0 profile.
    pub fn nominal() -> Self {
        SpeedProfile::default()
    }

    /// Append a change point. Points must be added in non-decreasing time
    /// order and factors must be positive.
    ///
    /// # Panics
    /// Panics on out-of-order times or non-positive factors.
    pub fn change_at(mut self, at: SimTime, factor: f64) -> Self {
        assert!(factor > 0.0, "speed factor must be positive");
        if let Some(&(last, _)) = self.changes.last() {
            assert!(at >= last, "speed profile changes must be time-ordered");
        }
        self.changes.push((at, factor));
        self
    }

    /// A transient slowdown: `factor` during `[from, until)`, nominal after.
    pub fn slow_between(from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(until > from, "slowdown window inverted");
        SpeedProfile::nominal()
            .change_at(from, factor)
            .change_at(until, 1.0)
    }

    /// Multiplier in effect at `t`.
    pub fn factor_at(&self, t: SimTime) -> f64 {
        match self.changes.binary_search_by(|&(at, _)| at.cmp(&t)) {
            // Exact hit: the change at `t` is already in effect.
            Ok(i) => self.changes[i].1,
            Err(0) => 1.0,
            Err(i) => self.changes[i - 1].1,
        }
    }

    /// Whether this profile ever deviates from nominal.
    pub fn is_nominal(&self) -> bool {
        self.changes.iter().all(|&(_, f)| f == 1.0)
    }
}

/// Speed profiles for a whole cluster. Nodes without an entry run at their
/// static [`crate::NodeSpec::speed_factor`] only.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlowdownSchedule {
    entries: Vec<(NodeId, SpeedProfile)>,
}

impl SlowdownSchedule {
    /// No dynamic slowdowns.
    pub fn none() -> Self {
        SlowdownSchedule::default()
    }

    /// Attach `profile` to `node`, replacing any existing profile.
    pub fn set(&mut self, node: NodeId, profile: SpeedProfile) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == node) {
            e.1 = profile;
        } else {
            self.entries.push((node, profile));
        }
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, node: NodeId, profile: SpeedProfile) -> Self {
        self.set(node, profile);
        self
    }

    /// Dynamic multiplier of `node` at `t` (1.0 when unscheduled).
    pub fn factor_at(&self, node: NodeId, t: SimTime) -> f64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, p)| p.factor_at(t))
            .unwrap_or(1.0)
    }

    /// Nodes that have a dynamic profile attached.
    pub fn affected_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }
}

/// Permanent TaskTracker deaths: after its death time a node stops
/// heartbeating and every task it was running is lost and must be
/// re-executed elsewhere. The co-located DataNode is assumed to survive
/// (separate process in Hadoop), so the node's blocks stay readable
/// remotely.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureSchedule {
    deaths: Vec<(NodeId, SimTime)>,
}

impl FailureSchedule {
    /// No failures.
    pub fn none() -> Self {
        FailureSchedule::default()
    }

    /// Kill `node`'s TaskTracker at `at` (replaces an earlier death time).
    pub fn kill(mut self, node: NodeId, at: SimTime) -> Self {
        if let Some(e) = self.deaths.iter_mut().find(|(n, _)| *n == node) {
            e.1 = at;
        } else {
            self.deaths.push((node, at));
        }
        self
    }

    /// Is `node`'s TaskTracker alive at `t`?
    pub fn is_alive(&self, node: NodeId, t: SimTime) -> bool {
        self.deaths
            .iter()
            .find(|(n, _)| *n == node)
            .is_none_or(|&(_, death)| t < death)
    }

    /// Nodes with a scheduled death.
    pub fn doomed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.deaths.iter().map(|&(n, _)| n)
    }

    /// Whether any failure is scheduled.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_sim::SimTime;

    #[test]
    fn nominal_profile_is_one_everywhere() {
        let p = SpeedProfile::nominal();
        assert_eq!(p.factor_at(SimTime::ZERO), 1.0);
        assert_eq!(p.factor_at(SimTime::from_secs(1_000_000)), 1.0);
        assert!(p.is_nominal());
    }

    #[test]
    fn piecewise_lookup() {
        let p = SpeedProfile::nominal()
            .change_at(SimTime::from_secs(10), 0.5)
            .change_at(SimTime::from_secs(20), 2.0);
        assert_eq!(p.factor_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(p.factor_at(SimTime::from_secs(10)), 0.5);
        assert_eq!(p.factor_at(SimTime::from_secs(15)), 0.5);
        assert_eq!(p.factor_at(SimTime::from_secs(20)), 2.0);
        assert_eq!(p.factor_at(SimTime::from_secs(99)), 2.0);
        assert!(!p.is_nominal());
    }

    #[test]
    fn transient_window() {
        let p = SpeedProfile::slow_between(SimTime::from_secs(100), SimTime::from_secs(200), 0.25);
        assert_eq!(p.factor_at(SimTime::from_secs(99)), 1.0);
        assert_eq!(p.factor_at(SimTime::from_secs(100)), 0.25);
        assert_eq!(p.factor_at(SimTime::from_secs(199)), 0.25);
        assert_eq!(p.factor_at(SimTime::from_secs(200)), 1.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_changes_panic() {
        let _ = SpeedProfile::nominal()
            .change_at(SimTime::from_secs(20), 0.5)
            .change_at(SimTime::from_secs(10), 1.0);
    }

    #[test]
    fn failure_schedule_kills_permanently() {
        let f = FailureSchedule::none().kill(NodeId(3), SimTime::from_secs(100));
        assert!(f.is_alive(NodeId(3), SimTime::from_secs(99)));
        assert!(!f.is_alive(NodeId(3), SimTime::from_secs(100)));
        assert!(!f.is_alive(NodeId(3), SimTime::from_secs(10_000)));
        assert!(f.is_alive(NodeId(4), SimTime::from_secs(10_000)));
        assert_eq!(f.doomed_nodes().count(), 1);
        assert!(!f.is_empty());
        // Re-killing replaces the death time.
        let f = f.kill(NodeId(3), SimTime::from_secs(50));
        assert!(!f.is_alive(NodeId(3), SimTime::from_secs(60)));
    }

    #[test]
    fn schedule_defaults_and_replacement() {
        let mut s = SlowdownSchedule::none();
        assert_eq!(s.factor_at(NodeId(3), SimTime::from_secs(50)), 1.0);
        s.set(
            NodeId(3),
            SpeedProfile::slow_between(SimTime::ZERO, SimTime::from_secs(10), 0.5),
        );
        assert_eq!(s.factor_at(NodeId(3), SimTime::from_secs(5)), 0.5);
        // Replace with a different profile.
        s.set(NodeId(3), SpeedProfile::nominal());
        assert_eq!(s.factor_at(NodeId(3), SimTime::from_secs(5)), 1.0);
        assert_eq!(s.affected_nodes().count(), 1);
    }
}
