//! The experiments of Section V, one function per table/figure.

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::analytic::Scenario;
use s3_core::{FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, JobProfile, RunMetrics,
    Scheduler,
};
use s3_workloads::{
    paper_lineitem_file, paper_wordcount_file, table1, wordcount_heavy, wordcount_normal,
    ArrivalPattern, Dataset,
};
use serde::Serialize;
use std::sync::Arc;

/// One scheduler's measurements in a comparison experiment.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerResult {
    /// Scheduler label (S3, FIFO, MRS1, ...).
    pub name: String,
    /// Total execution time, seconds.
    pub tet_s: f64,
    /// Average response time, seconds.
    pub art_s: f64,
    /// Block scans performed.
    pub blocks_read: u64,
    /// MB of scanning avoided through sharing.
    pub mb_saved: f64,
}

/// A Figure 4 style comparison: every scheduler over one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Which panel this is.
    pub label: String,
    /// Results; `results[0]` is always S³ (the normalization base).
    pub results: Vec<SchedulerResult>,
}

impl Fig4Result {
    /// S³'s absolute TET (the normalization base), seconds.
    pub fn s3_tet(&self) -> f64 {
        self.results[0].tet_s
    }

    /// S³'s absolute ART, seconds.
    pub fn s3_art(&self) -> f64 {
        self.results[0].art_s
    }

    /// `(name, tet/tet_S3, art/art_S3)` rows as the paper plots them.
    pub fn normalized(&self) -> Vec<(String, f64, f64)> {
        let (t0, a0) = (self.s3_tet(), self.s3_art());
        self.results
            .iter()
            .map(|r| (r.name.clone(), r.tet_s / t0, r.art_s / a0))
            .collect()
    }

    /// Look a scheduler's row up by name.
    pub fn get(&self, name: &str) -> Option<&SchedulerResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// The six panels of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Variant {
    /// (a) sparse pattern, normal wordcount, 64 MB blocks.
    SparseNormal64,
    /// (b) dense pattern, normal wordcount, 64 MB blocks.
    DenseNormal64,
    /// (c) sparse pattern, heavy wordcount, 64 MB blocks.
    SparseHeavy64,
    /// (d) sparse pattern, normal wordcount, 128 MB blocks.
    SparseNormal128,
    /// (e) sparse pattern, normal wordcount, 32 MB blocks.
    SparseNormal32,
    /// (f) sparse pattern, selection over 400 GB lineitem, 64 MB blocks.
    Selection64,
}

impl Fig4Variant {
    /// Panel label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Fig4Variant::SparseNormal64 => "Fig4(a) sparse/normal/64MB",
            Fig4Variant::DenseNormal64 => "Fig4(b) dense/normal/64MB",
            Fig4Variant::SparseHeavy64 => "Fig4(c) sparse/heavy/64MB",
            Fig4Variant::SparseNormal128 => "Fig4(d) sparse/normal/128MB",
            Fig4Variant::SparseNormal32 => "Fig4(e) sparse/normal/32MB",
            Fig4Variant::Selection64 => "Fig4(f) selection/sparse/64MB",
        }
    }

    /// All six panels.
    pub fn all() -> [Fig4Variant; 6] {
        [
            Fig4Variant::SparseNormal64,
            Fig4Variant::DenseNormal64,
            Fig4Variant::SparseHeavy64,
            Fig4Variant::SparseNormal128,
            Fig4Variant::SparseNormal32,
            Fig4Variant::Selection64,
        ]
    }

    fn profile(self) -> Arc<JobProfile> {
        match self {
            Fig4Variant::SparseHeavy64 => wordcount_heavy(),
            Fig4Variant::Selection64 => s3_workloads::selection(),
            _ => wordcount_normal(),
        }
    }

    fn block_mb(self) -> u64 {
        match self {
            Fig4Variant::SparseNormal128 => 128,
            Fig4Variant::SparseNormal32 => 32,
            _ => 64,
        }
    }

    fn dataset(self, cluster: &ClusterTopology) -> Dataset {
        match self {
            Fig4Variant::Selection64 => paper_lineitem_file(cluster, self.block_mb()),
            _ => paper_wordcount_file(cluster, self.block_mb()),
        }
    }

    fn arrivals(self) -> ArrivalPattern {
        match self {
            Fig4Variant::DenseNormal64 => ArrivalPattern::paper_dense(),
            // Heavy and selection jobs run longer; the paper keeps the same
            // submission pattern, so we keep the sparse preset everywhere.
            _ => ArrivalPattern::paper_sparse(),
        }
    }
}

fn run_one(
    cluster: &ClusterTopology,
    dataset: &Dataset,
    profile: &Arc<JobProfile>,
    arrivals: &[f64],
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> RunMetrics {
    let workload = requests_from_arrivals(profile, dataset.file, arrivals);
    simulate(
        cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    )
    .expect("experiment run must not stall")
}

fn to_result(m: &RunMetrics) -> SchedulerResult {
    SchedulerResult {
        name: m.scheduler.clone(),
        tet_s: m.tet().as_secs_f64(),
        art_s: m.art().as_secs_f64(),
        blocks_read: m.blocks_read,
        mb_saved: m.mb_saved(),
    }
}

/// Run one Figure 4 panel: S³, FIFO, MRS1, MRS2, MRS3 over the panel's
/// workload. `seed` controls task-duration noise (0x53535353 reproduces
/// the recorded EXPERIMENTS.md numbers).
pub fn run_fig4(variant: Fig4Variant, seed: u64) -> Fig4Result {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = variant.dataset(&cluster);
    let profile = variant.profile();
    let arrivals = variant.arrivals().times();
    let n = arrivals.len();

    let mut results = Vec::with_capacity(5);
    let mut s3 = S3Scheduler::default();
    results.push(to_result(&run_one(
        &cluster, &dataset, &profile, &arrivals, &mut s3, seed,
    )));
    let mut fifo = FifoScheduler::new();
    results.push(to_result(&run_one(
        &cluster, &dataset, &profile, &arrivals, &mut fifo, seed,
    )));
    for mut mrs in [
        MRShareScheduler::mrs1(n),
        MRShareScheduler::mrs2(n),
        MRShareScheduler::mrs3(n),
    ] {
        results.push(to_result(&run_one(
            &cluster, &dataset, &profile, &arrivals, &mut mrs, seed,
        )));
    }

    Fig4Result {
        label: variant.label().to_string(),
        results,
    }
}

/// One point of Figure 3: `n` co-submitted jobs processed as one merged
/// batch.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Point {
    /// Number of combined jobs.
    pub n: usize,
    /// Total execution time, seconds.
    pub tet_s: f64,
    /// Average map task time, seconds.
    pub avg_map_s: f64,
    /// Average reduce task time, seconds.
    pub avg_reduce_s: f64,
}

/// Figure 3: cost of combining 1..=`max_n` wordcount jobs submitted
/// together (maximum sharing).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// One point per batch size.
    pub points: Vec<Fig3Point>,
}

impl Fig3Result {
    /// Overhead of combining `n` jobs relative to one:
    /// `(tet_ratio, map_ratio, reduce_ratio)`.
    pub fn overhead_at(&self, n: usize) -> (f64, f64, f64) {
        let one = &self.points[0];
        let p = self
            .points
            .iter()
            .find(|p| p.n == n)
            .expect("requested batch size was measured");
        (
            p.tet_s / one.tet_s,
            p.avg_map_s / one.avg_map_s,
            p.avg_reduce_s / one.avg_reduce_s,
        )
    }
}

/// Run Figure 3 on the 160 GB wordcount dataset (2560 maps, 30 reduces).
pub fn run_fig3(max_n: usize, seed: u64) -> Fig3Result {
    assert!(max_n >= 1, "need at least one batch size");
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();
    let mut points = Vec::with_capacity(max_n);
    for n in 1..=max_n {
        let arrivals = vec![0.0; n];
        let mut mrs = MRShareScheduler::mrs1(n);
        let m = run_one(&cluster, &dataset, &profile, &arrivals, &mut mrs, seed);
        points.push(Fig3Point {
            n,
            tet_s: m.tet().as_secs_f64(),
            avg_map_s: m.map_task_time.mean,
            avg_reduce_s: m.reduce_task_time.mean,
        });
    }
    Fig3Result { points }
}

/// Table I quantities for the normal wordcount workload, plus the measured
/// single-job processing time.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Input size, MB.
    pub input_mb: f64,
    /// Map output records.
    pub map_output_records: f64,
    /// Reduce output records.
    pub reduce_output_records: f64,
    /// Map output, MB.
    pub map_output_mb: f64,
    /// Reduce output, MB.
    pub reduce_output_mb: f64,
    /// Measured single-job processing time, seconds.
    pub processing_time_s: f64,
}

/// Reproduce Table I: derive the workload quantities and measure one job.
pub fn run_table1(seed: u64) -> Table1Result {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();
    let t = table1(&profile, dataset.input_mb());
    let mut fifo = FifoScheduler::new();
    let m = run_one(&cluster, &dataset, &profile, &[0.0], &mut fifo, seed);
    Table1Result {
        input_mb: t.input_mb,
        map_output_records: t.map_output_records,
        reduce_output_records: t.reduce_output_records,
        map_output_mb: t.map_output_mb,
        reduce_output_mb: t.reduce_output_mb,
        processing_time_s: m.tet().as_secs_f64(),
    }
}

/// The Section III worked examples: closed-form TET/ART per scheme.
#[derive(Debug, Clone, Serialize)]
pub struct ExamplesResult {
    /// `(scenario, scheme, tet, art)` rows.
    pub rows: Vec<(String, String, f64, f64)>,
}

/// Reproduce Examples 1–3 exactly.
pub fn run_examples() -> ExamplesResult {
    let mut rows = Vec::new();
    for (label, arrivals) in [
        ("Example 1 (arrivals 0,20)", vec![0.0, 20.0]),
        ("Example 2 (arrivals 0,80)", vec![0.0, 80.0]),
    ] {
        let s = Scenario::new(100.0, arrivals);
        let f = s.fifo();
        rows.push((label.to_string(), "FIFO".to_string(), f.tet, f.art));
        let m = s.mrshare_single();
        rows.push((label.to_string(), "MRShare".to_string(), m.tet, m.art));
        let x = s.s3();
        rows.push((label.to_string(), "S3".to_string(), x.tet, x.art));
    }
    ExamplesResult { rows }
}

/// The seed used for all recorded EXPERIMENTS.md numbers.
pub const DEFAULT_SEED: u64 = 0x5353_5353;
