//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p s3-bench --bin repro -- all
//! cargo run --release -p s3-bench --bin repro -- fig4a
//! cargo run --release -p s3-bench --bin repro -- fig3 --json
//! ```

use s3_bench::experiments::{
    run_examples, run_fig3, run_fig4, run_table1, Fig4Variant, DEFAULT_SEED,
};
use s3_bench::report;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--json|--csv|--svg] <table1|fig3|fig4a|fig4b|fig4c|fig4d|fig4e|fig4f|examples|ablations|all>"
    );
    std::process::exit(2);
}

fn fig4_by_name(name: &str) -> Option<Fig4Variant> {
    Some(match name {
        "fig4a" => Fig4Variant::SparseNormal64,
        "fig4b" => Fig4Variant::DenseNormal64,
        "fig4c" => Fig4Variant::SparseHeavy64,
        "fig4d" => Fig4Variant::SparseNormal128,
        "fig4e" => Fig4Variant::SparseNormal32,
        "fig4f" => Fig4Variant::Selection64,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let csv = args.iter().any(|a| a == "--csv");
    let svg = args.iter().any(|a| a == "--svg");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        usage();
    }

    let expanded: Vec<&str> = if targets.contains(&"all") {
        vec![
            "table1", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "examples",
            "ablations",
        ]
    } else {
        targets
    };

    for target in expanded {
        match target {
            "table1" => {
                let r = run_table1(DEFAULT_SEED);
                if json {
                    println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
                } else {
                    println!("{}", report::table1_table(&r));
                }
            }
            "fig3" => {
                let r = run_fig3(10, DEFAULT_SEED);
                if json {
                    println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
                } else if csv {
                    print!("{}", report::fig3_csv(&r));
                } else {
                    println!("{}", report::fig3_table(&r));
                }
            }
            "ablations" => {
                // Ablations print as text only; JSON callers should use
                // the library functions in `s3_bench::ablations` directly.
                println!("{}", report::ablations_report(DEFAULT_SEED));
            }
            "examples" => {
                let r = run_examples();
                if json {
                    println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
                } else {
                    println!("{}", report::examples_table(&r));
                }
            }
            name => match fig4_by_name(name) {
                Some(variant) => {
                    let r = run_fig4(variant, DEFAULT_SEED);
                    if json {
                        println!("{}", serde_json::to_string_pretty(&r).expect("serializable"));
                    } else if csv {
                        print!("{}", report::fig4_csv(&r));
                    } else if svg {
                        print!("{}", report::fig4_svg(&r));
                    } else {
                        println!("{}", report::fig4_table(&r));
                    }
                }
                None => usage(),
            },
        }
    }
}
