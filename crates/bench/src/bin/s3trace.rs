//! `s3trace` — capture, convert, and validate engine telemetry.
//!
//! Three modes:
//!
//! - `s3trace engine [--quick] [--out-dir DIR]` — run an observed
//!   [`SharedScanServer`] workload, write its runtime trace as a
//!   Perfetto-loadable Chrome trace (`TRACE_engine.json`, with per-job
//!   journal tracks beside the server-centric view), a metrics snapshot
//!   (`METRICS_engine.json`), and the per-job flight recorder
//!   (`JOURNAL_engine.json`), and print a per-segment timeline summary:
//!   cadence p50/p95/p99, segment scan times, admission latency, pool
//!   idle fraction, and the ring-buffer drop count. A trace that lost
//!   events to ring overwrite carries a `trace_truncated` marker event.
//! - `s3trace sim SCENARIO.json [--out-dir DIR]` — run a simulator
//!   scenario and export its trace through the **same** Chrome converter
//!   (`TRACE_sim.json`), one process per scheduler.
//! - `s3trace validate FILE [--strict]` — check a file against the Chrome
//!   trace-event schema, or (for `{…}` files carrying the journal schema)
//!   against the journal invariants (CI's trace-smoke job runs this on
//!   what `engine` emitted). Truncated inputs — a `trace_truncated`
//!   marker or non-zero `dropped_events` — warn; `--strict` turns the
//!   warning into a non-zero exit.
//!
//! ```text
//! cargo run --release -p s3-bench --bin s3trace -- engine --quick
//! ```

use s3_bench::scenario::ScenarioSpec;
use s3_engine::{Obs, SharedScanServer};
use s3_obs::chrome::{engine_event_to_chrome, validate_chrome_trace, write_chrome_trace, ChromeEvent};
use s3_obs::{HistogramSnapshot, JobJournal};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const BLOCK_BYTES: usize = 4 << 10;
const THREADS: usize = 2;
const SHARED_JOBS: usize = 4;
const BLOCKS_PER_SEGMENT: usize = 2;

fn fail(msg: &str) -> ! {
    eprintln!("s3trace: {msg}");
    eprintln!("usage: s3trace [engine [--quick] [--out-dir DIR] | sim SCENARIO.json [--out-dir DIR] | validate FILE [--strict]]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("engine");
    match mode {
        "engine" => run_engine(&args[1..]),
        "sim" => run_sim(&args[1..]),
        "validate" => {
            let mut path = None;
            let mut strict = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--strict" => strict = true,
                    other if path.is_none() => path = Some(other.to_string()),
                    other => fail(&format!("unexpected argument {other:?}")),
                }
            }
            let path = path.unwrap_or_else(|| fail("validate needs a file"));
            run_validate(Path::new(&path), strict);
        }
        other => fail(&format!("unknown mode {other:?}")),
    }
}

fn parse_out_dir(args: &[String]) -> (PathBuf, bool) {
    let mut out_dir = PathBuf::from(".");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| fail("--out-dir needs a path")));
                std::fs::create_dir_all(&out_dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    (out_dir, quick)
}

fn pctls(h: &HistogramSnapshot) -> String {
    format!(
        "p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs   max {:>8} µs   (n={})",
        h.p50, h.p95, h.p99, h.max, h.count
    )
}

/// Run the observed shared-scan workload and emit trace + metrics.
fn run_engine(args: &[String]) {
    let (out_dir, quick) = parse_out_dir(args);
    let corpus_bytes = if quick { 256 << 10 } else { 2 << 20 };

    eprintln!("s3trace: building {} KiB corpus...", corpus_bytes >> 10);
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), corpus_bytes);
    let store = s3_engine::BlockStore::from_text(&text, BLOCK_BYTES);

    let obs = Obs::new();
    let server =
        SharedScanServer::new_observed(store.clone(), BLOCKS_PER_SEGMENT, THREADS, &obs);

    eprintln!(
        "s3trace: {} blocks, {} segments, {SHARED_JOBS} jobs + 1 late probe, {THREADS} threads",
        store.num_blocks(),
        server.num_segments()
    );
    let wall_t0 = Instant::now();
    let handles: Vec<_> = (0..SHARED_JOBS)
        .map(|i| {
            let p = format!("{}a", (b'b' + i as u8) as char);
            server.submit(PatternWordCount::prefix(p))
        })
        .collect();
    // A probe submitted onto the live revolution exercises admission.
    while server.iterations() < 2 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let probe = server.submit(PatternWordCount::prefix("qa"));
    for h in handles {
        h.wait().expect("job completed");
    }
    probe.wait().expect("job completed");
    let wall_us = wall_t0.elapsed().as_micros() as u64;
    server.shutdown();

    let core = obs.core().expect("Obs::new is on");
    let snapshot = core.metrics.snapshot();
    let events = core.tracer.drain();
    let dropped = core.tracer.dropped();

    // ---- per-job flight recorder ----
    let mut journal = JobJournal::from_events(&events);
    journal.dropped_events = dropped;
    journal.validate().expect("journal invariants hold");
    let journal_path = out_dir.join("JOURNAL_engine.json");
    let journal_text = serde_json::to_string_pretty(&journal).expect("journal serializes");
    std::fs::write(&journal_path, journal_text + "\n").expect("write journal");

    // ---- export ----
    let mut chrome = vec![ChromeEvent::process_name(1, "s3-engine")];
    chrome.extend(events.iter().map(|e| engine_event_to_chrome(e, 1, "engine")));
    // The journal's per-job tracks load as a second process beside the
    // server-centric view.
    chrome.extend(journal.to_chrome_events(2));
    if dropped > 0 {
        // Downstream consumers (and `validate --strict`) can see the
        // truncation without the recorder in hand.
        chrome.push(ChromeEvent {
            name: "trace_truncated".to_string(),
            cat: "meta".to_string(),
            ph: 'i',
            ts: 0.0,
            dur: None,
            pid: 1,
            tid: 0,
            args: vec![("dropped".to_string(), serde_json::Value::from(dropped))],
        });
    }
    let trace_path = out_dir.join("TRACE_engine.json");
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &chrome).expect("serialize trace");
    let trace_text = String::from_utf8(buf).expect("trace is UTF-8");
    let n = validate_chrome_trace(&trace_text).expect("emitted trace validates");
    std::fs::write(&trace_path, &trace_text).expect("write trace");

    let metrics_path = out_dir.join("METRICS_engine.json");
    let metrics_text = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write(&metrics_path, metrics_text + "\n").expect("write metrics");

    // ---- per-segment timeline summary ----
    let segments = snapshot
        .counters
        .get("engine.segments_scanned")
        .copied()
        .unwrap_or(0);
    println!("== s3trace: engine telemetry summary ==");
    println!(
        "segments scanned      {segments}   (blocks {}, bytes {})",
        snapshot.counters.get("engine.blocks_scanned").copied().unwrap_or(0),
        snapshot.counters.get("engine.bytes_scanned").copied().unwrap_or(0),
    );
    for (label, name) in [
        ("segment cadence", "engine.segment_cadence_us"),
        ("segment scan time", "engine.segment_scan_us"),
        ("admission latency", "engine.admission_latency_us"),
        ("job latency", "engine.job_latency_us"),
        ("reduce shard time", "engine.reduce_shard_us"),
    ] {
        if let Some(h) = snapshot.histograms.get(name) {
            println!("{label:<21} {}", pctls(h));
        }
    }
    // Pool idle: busy worker-µs over wall-µs × workers, per pool.
    for pool in ["scan", "reduce"] {
        let busy = snapshot
            .counters
            .get(&format!("pool.{pool}.busy_us"))
            .copied()
            .unwrap_or(0);
        let capacity = wall_us * THREADS as u64;
        let idle = 100.0 * (1.0 - busy as f64 / capacity as f64).max(0.0);
        println!(
            "{pool} pool idle        {idle:>6.1} %   ({busy} busy µs of {capacity} worker-µs)",
        );
    }
    println!(
        "combiner fold hits    {}   of {} map records",
        snapshot.counters.get("engine.combiner_fold_hits").copied().unwrap_or(0),
        snapshot.counters.get("engine.map_records").copied().unwrap_or(0),
    );
    println!("ring dropped          {dropped} events");
    if dropped > 0 {
        println!("NOTE: ring overflow truncated the trace (raise trace capacity)");
    }
    println!(
        "wrote {} ({n} events), {} ({} jobs), and {}",
        trace_path.display(),
        journal_path.display(),
        journal.jobs.len(),
        metrics_path.display()
    );
    println!("open the trace at https://ui.perfetto.dev or chrome://tracing");
}

/// Run a simulator scenario and export its trace via the shared converter.
fn run_sim(args: &[String]) {
    let path = args.first().unwrap_or_else(|| fail("sim needs a scenario file"));
    let (out_dir, _quick) = parse_out_dir(&args[1..]);
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let spec: ScenarioSpec =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("bad scenario: {e}")));
    let runs = spec
        .run()
        .unwrap_or_else(|e| fail(&format!("scenario failed: {e}")));

    let mut chrome = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let pid = i as u64 + 1;
        chrome.extend(run.trace.to_chrome_events(pid));
        if !run.violations.is_empty() {
            eprintln!(
                "s3trace: WARNING: scheduler {} trace has {} invariant violations",
                pid,
                run.violations.len()
            );
        }
    }
    let trace_path = out_dir.join("TRACE_sim.json");
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &chrome).expect("serialize trace");
    let trace_text = String::from_utf8(buf).expect("trace is UTF-8");
    let n = validate_chrome_trace(&trace_text).expect("emitted trace validates");
    std::fs::write(&trace_path, &trace_text).expect("write trace");
    println!(
        "wrote {} ({n} events from {} scheduler run(s))",
        trace_path.display(),
        runs.len()
    );
}

/// Validate an existing file: journal JSON (`{…}` with the journal
/// schema) against the journal invariants, anything else against the
/// Chrome trace-event schema. Truncation — `dropped_events > 0` in a
/// journal, or a `trace_truncated` marker in a trace — warns, and fails
/// the run under `--strict`.
fn run_validate(path: &Path, strict: bool) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let truncated = if text.trim_start().starts_with('{') {
        let journal: JobJournal = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("{}: not a journal: {e}", path.display())));
        if let Err(e) = journal.validate() {
            eprintln!("{}: INVALID journal: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "{}: valid job journal, {} jobs, {} dropped events",
            path.display(),
            journal.jobs.len(),
            journal.dropped_events
        );
        journal.dropped_events > 0
    } else {
        match validate_chrome_trace(&text) {
            Ok(n) => println!("{}: valid Chrome trace, {n} events", path.display()),
            Err(e) => {
                eprintln!("{}: INVALID trace: {e}", path.display());
                std::process::exit(1);
            }
        }
        text.contains("\"trace_truncated\"")
    };
    if truncated {
        eprintln!(
            "{}: WARNING: events were overwritten in the ring buffer; timelines may be incomplete",
            path.display()
        );
        if strict {
            std::process::exit(1);
        }
    }
}
