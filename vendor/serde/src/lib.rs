//! Offline vendored subset of the `serde` API.
//!
//! The real serde models serialization through visitor-based
//! `Serializer`/`Deserializer` traits. The only consumer in this
//! workspace is `serde_json`, so this shim collapses the data model to a
//! single in-memory tree, [`Content`]: serialization builds a `Content`,
//! deserialization reads one. The derive macros (`serde_derive`) generate
//! impls against this model, honouring the `#[serde(...)]` attributes the
//! workspace uses (`default`, `default = "path"`, `rename_all =
//! "kebab-case"`, `tag = "..."`).

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserializer-facing re-exports matching real serde's module layout.
pub mod de {
    /// With the collapsed data model there are no borrowed lifetimes, so
    /// owned deserialization is just [`Deserialize`](crate::Deserialize).
    pub use crate::Deserialize as DeserializeOwned;
}

/// The universal in-memory data tree: serde's whole data model collapsed
/// to what JSON can express.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer (kept exact).
    U64(u64),
    /// Negative integer (kept exact).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-ordered map (preserves field order for readable output).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key (None for non-maps).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::U64(_) | Content::I64(_) => "an integer",
            Content::F64(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "an array",
            Content::Map(_) => "an object",
        }
    }
}

/// Deserialization error: a message plus a reverse path of field/index
/// segments for diagnosis.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    /// A fresh error with `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// Type mismatch against `expected`.
    pub fn expected(expected: &str, got: &Content) -> Self {
        Error::new(format!("expected {expected}, found {}", got.kind_name()))
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::new(format!("missing field `{field}` of {ty}"))
    }

    /// Push a path segment (used while unwinding nested containers).
    pub fn in_segment(mut self, seg: impl Into<String>) -> Self {
        self.path.push(seg.into());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            let mut segs: Vec<&str> = self.path.iter().map(String::as_str).collect();
            segs.reverse();
            write!(f, "at {}: {}", segs.join("."), self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// A serializable value: converts itself to a [`Content`] tree.
pub trait Serialize {
    /// Build the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// A deserializable value: reconstructs itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of the content tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::expected("an unsigned integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::new(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::new(format!("integer {v} out of range")))?,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::expected("an integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::new(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(f) => Ok(*f),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::expected("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("a single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_content(v).map_err(|e| e.in_segment(format!("[{i}]"))))
                .collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    V::from_content(v)
                        .map(|v| (k.clone(), v))
                        .map_err(|e| e.in_segment(k.clone()))
                })
                .collect(),
            other => Err(Error::expected("an object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) if items.len() == $len => Ok((
                        $($t::from_content(&items[$idx])
                            .map_err(|e| e.in_segment(format!("[{}]", $idx)))?,)+
                    )),
                    other => Err(Error::expected(
                        concat!("an array of length ", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn integers_enforce_range() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        // Whole floats coerce (JSON writers often emit 3.0 for 3).
        assert_eq!(u32::from_content(&Content::F64(3.0)).unwrap(), 3);
        assert!(u32::from_content(&Content::F64(3.5)).is_err());
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let c = v.to_content();
        let back: Vec<(u32, f64)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_carry_paths() {
        let c = Content::Seq(vec![Content::U64(1), Content::Str("x".into())]);
        let err = <Vec<u32>>::from_content(&c).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("[1]"), "{msg}");
    }
}
