//! Segments: the S³ paper's unit of shared scanning (Section IV-B).
//!
//! A file of `N` blocks is organized into `k = ceil(N/m)` segments of `m`
//! consecutive blocks (the last segment may be short), where `m` is chosen
//! as the number of concurrent map slots so a segment is exactly one wave of
//! map tasks. Segments are scanned in a fixed circular order; a job admitted
//! at segment `j` processes `j, j+1, ..., k-1, 0, ..., j-1`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Index of a segment within a file's segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A file's division into segments.
///
/// Stored as cut points over file-local block indices, so both uniform and
/// variable-size segmentations (S³'s *dynamic sub-job adjustment*) share one
/// representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segmentation {
    /// `cuts[j]..cuts[j+1]` are the block indices of segment `j`.
    /// Invariants: strictly increasing, `cuts[0] == 0`,
    /// `cuts.last() == num_blocks`, length >= 2.
    cuts: Vec<u32>,
}

impl Segmentation {
    /// Uniform segmentation: segments of `blocks_per_segment` blocks, the
    /// last possibly short.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn uniform(num_blocks: u32, blocks_per_segment: u32) -> Self {
        assert!(num_blocks > 0, "cannot segment an empty file");
        assert!(blocks_per_segment > 0, "segment size must be positive");
        let mut cuts: Vec<u32> = (0..num_blocks)
            .step_by(blocks_per_segment as usize)
            .collect();
        cuts.push(num_blocks);
        Segmentation { cuts }
    }

    /// Variable segmentation from explicit per-segment sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty or contains a zero.
    pub fn from_sizes(sizes: &[u32]) -> Self {
        assert!(!sizes.is_empty(), "need at least one segment");
        let mut cuts = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0u32;
        cuts.push(0);
        for (i, &s) in sizes.iter().enumerate() {
            assert!(s > 0, "segment {i} has zero size");
            acc = acc.checked_add(s).expect("segment sizes overflow u32");
            cuts.push(acc);
        }
        Segmentation { cuts }
    }

    /// Number of segments `k`.
    pub fn num_segments(&self) -> u32 {
        (self.cuts.len() - 1) as u32
    }

    /// Total number of blocks covered.
    pub fn num_blocks(&self) -> u32 {
        *self.cuts.last().expect("segmentation has cut points")
    }

    /// File-local block index range of segment `seg`.
    ///
    /// # Panics
    /// Panics if `seg` is out of range.
    pub fn blocks_of(&self, seg: SegmentId) -> Range<u32> {
        let j = seg.0 as usize;
        assert!(j + 1 < self.cuts.len(), "segment {seg} out of range");
        self.cuts[j]..self.cuts[j + 1]
    }

    /// Number of blocks in segment `seg`.
    pub fn segment_len(&self, seg: SegmentId) -> u32 {
        let r = self.blocks_of(seg);
        r.end - r.start
    }

    /// Segment containing file-local block index `block`.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn segment_of(&self, block: u32) -> SegmentId {
        assert!(block < self.num_blocks(), "block index out of range");
        // cuts is sorted; find the last cut <= block.
        let j = match self.cuts.binary_search(&block) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        SegmentId(j as u32)
    }

    /// The segment after `seg` in circular scan order.
    pub fn next(&self, seg: SegmentId) -> SegmentId {
        SegmentId((seg.0 + 1) % self.num_segments())
    }

    /// The segment before `seg` in circular scan order — the *last* segment
    /// a job admitted at `seg` will process.
    pub fn prev(&self, seg: SegmentId) -> SegmentId {
        let k = self.num_segments();
        SegmentId((seg.0 + k - 1) % k)
    }

    /// The `k` segments in circular scan order starting at `start`:
    /// `start, start+1, ..., k-1, 0, ..., start-1`.
    pub fn scan_order(&self, start: SegmentId) -> impl Iterator<Item = SegmentId> + '_ {
        let k = self.num_segments();
        assert!(start.0 < k, "start segment out of range");
        (0..k).map(move |i| SegmentId((start.0 + i) % k))
    }

    /// Position of `seg` in the circular order started at `start`
    /// (0 = first, k-1 = last). Useful for "how far along is this job?".
    pub fn position_from(&self, start: SegmentId, seg: SegmentId) -> u32 {
        let k = self.num_segments();
        (seg.0 + k - start.0) % k
    }

    /// All segment ids in file order.
    pub fn segments(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.num_segments()).map(SegmentId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_paper_geometry() {
        // 2560 blocks / 40 map slots = 64 segments of 40 (Section IV-B).
        let s = Segmentation::uniform(2560, 40);
        assert_eq!(s.num_segments(), 64);
        assert_eq!(s.num_blocks(), 2560);
        for seg in s.segments() {
            assert_eq!(s.segment_len(seg), 40);
        }
        assert_eq!(s.blocks_of(SegmentId(1)), 40..80);
    }

    #[test]
    fn uniform_with_short_tail() {
        let s = Segmentation::uniform(100, 40);
        assert_eq!(s.num_segments(), 3);
        assert_eq!(s.segment_len(SegmentId(0)), 40);
        assert_eq!(s.segment_len(SegmentId(2)), 20);
    }

    #[test]
    fn from_sizes_variable() {
        let s = Segmentation::from_sizes(&[40, 35, 40, 12]);
        assert_eq!(s.num_segments(), 4);
        assert_eq!(s.num_blocks(), 127);
        assert_eq!(s.blocks_of(SegmentId(1)), 40..75);
        assert_eq!(s.segment_len(SegmentId(3)), 12);
    }

    #[test]
    fn segment_of_block_lookup() {
        let s = Segmentation::from_sizes(&[10, 20, 5]);
        assert_eq!(s.segment_of(0), SegmentId(0));
        assert_eq!(s.segment_of(9), SegmentId(0));
        assert_eq!(s.segment_of(10), SegmentId(1));
        assert_eq!(s.segment_of(29), SegmentId(1));
        assert_eq!(s.segment_of(30), SegmentId(2));
        assert_eq!(s.segment_of(34), SegmentId(2));
    }

    #[test]
    fn circular_next_prev() {
        let s = Segmentation::uniform(120, 40);
        assert_eq!(s.next(SegmentId(0)), SegmentId(1));
        assert_eq!(s.next(SegmentId(2)), SegmentId(0));
        assert_eq!(s.prev(SegmentId(0)), SegmentId(2));
        assert_eq!(s.prev(SegmentId(1)), SegmentId(0));
    }

    #[test]
    fn scan_order_wraps_like_the_paper() {
        // Job admitted at S_j processes S_j..S_k then S_1..S_{j-1}
        // (Section I / IV-B), 0-indexed here.
        let s = Segmentation::uniform(200, 40); // 5 segments
        let order: Vec<u32> = s.scan_order(SegmentId(3)).map(|x| x.0).collect();
        assert_eq!(order, vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn position_from_is_distance_in_scan_order() {
        let s = Segmentation::uniform(200, 40);
        assert_eq!(s.position_from(SegmentId(3), SegmentId(3)), 0);
        assert_eq!(s.position_from(SegmentId(3), SegmentId(2)), 4);
        assert_eq!(s.position_from(SegmentId(0), SegmentId(4)), 4);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_segment_size_panics() {
        Segmentation::from_sizes(&[10, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_panics() {
        Segmentation::uniform(10, 5).blocks_of(SegmentId(2));
    }
}
