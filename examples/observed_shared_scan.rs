//! Live metrics polling against an observed [`SharedScanServer`].
//!
//! A monitor thread polls the lock-free metrics registry every 50 ms while
//! jobs ride the shared scan — the gauges and counters it reads are the
//! same instruments the server's hot loops write, with no locks taken on
//! either side. After the workload drains, the engine's runtime trace is
//! written as a Perfetto-loadable Chrome trace.
//!
//! ```text
//! cargo run --release -p s3-bench --example observed_shared_scan
//! ```

use s3_engine::{BlockStore, Obs, SharedScanServer};
use s3_obs::chrome::{engine_event_to_chrome, write_chrome_trace, ChromeEvent};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("generating corpus...");
    let gen = TextGen::paper_like();
    let text = gen.generate(&mut SimRng::seed_from_u64(5), 16 << 20);
    let store = BlockStore::from_text(&text, 256 << 10);
    println!(
        "corpus: {:.0} MB in {} blocks; segments of 4 blocks\n",
        store.total_bytes() as f64 / (1 << 20) as f64,
        store.num_blocks()
    );

    let obs = Obs::new();
    let server = SharedScanServer::new_observed(store, 4, 4, &obs);

    // The monitor shares only the Obs handle with the server — reading a
    // snapshot aggregates the per-thread shards without stopping writers.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let obs = obs.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            println!(
                "{:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
                "t(ms)", "active", "segments", "jobs done", "map records", "fold hits"
            );
            let t0 = std::time::Instant::now();
            while !stop.load(Ordering::Relaxed) {
                let snap = obs.snapshot().expect("observed");
                println!(
                    "{:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
                    t0.elapsed().as_millis(),
                    snap.gauges.get("engine.active_jobs").copied().unwrap_or(0),
                    snap.counters.get("engine.segments_scanned").copied().unwrap_or(0),
                    snap.counters.get("engine.jobs_completed").copied().unwrap_or(0),
                    snap.counters.get("engine.map_records").copied().unwrap_or(0),
                    snap.counters.get("engine.combiner_fold_hits").copied().unwrap_or(0),
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    // Ten jobs arriving ~30 ms apart, landing on the live revolution.
    let prefixes = ["ba", "ta", "da", "ma", "na", "pa", "ra", "sa", "va", "za"];
    let mut handles = Vec::new();
    for p in prefixes {
        handles.push(server.submit(PatternWordCount::prefix(p)));
        std::thread::sleep(Duration::from_millis(30));
    }
    for h in handles {
        h.wait().expect("job completed");
    }
    stop.store(true, Ordering::Relaxed);
    monitor.join().expect("monitor thread");
    server.shutdown();

    // Final rollup plus the trace for Perfetto.
    let core = obs.core().expect("observed");
    let snap = core.metrics.snapshot();
    if let Some(h) = snap.histograms.get("engine.admission_latency_us") {
        println!(
            "\nadmission latency: p50 {:.0} µs, p95 {:.0} µs ({} admissions)",
            h.p50, h.p95, h.count
        );
    }
    if let Some(h) = snap.histograms.get("engine.segment_cadence_us") {
        println!("segment cadence:   p50 {:.0} µs, p99 {:.0} µs", h.p50, h.p99);
    }
    let mut chrome = vec![ChromeEvent::process_name(1, "s3-engine")];
    chrome.extend(
        core.tracer
            .drain()
            .iter()
            .map(|e| engine_event_to_chrome(e, 1, "engine")),
    );
    let path = std::env::temp_dir().join("observed_shared_scan_trace.json");
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &chrome).expect("serialize");
    std::fs::write(&path, buf).expect("write trace");
    println!(
        "trace: {} events -> {} (open in https://ui.perfetto.dev)",
        chrome.len(),
        path.display()
    );
}
