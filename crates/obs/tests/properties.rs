//! Property tests of the lock-free registry: concurrent recording from
//! many threads must aggregate to exactly what serial recording would —
//! no lost increments, no torn reads, regardless of how observations land
//! on the shards.

use proptest::prelude::*;
use s3_obs::{Obs, Registry};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads hammering one counter and one histogram concurrently
    /// equals the serial sum of their contributions.
    #[test]
    fn concurrent_recording_equals_serial_sum(
        per_thread in prop::collection::vec(
            prop::collection::vec(1u64..2_000, 1..200),
            1..8,
        ),
    ) {
        let reg = Arc::new(Registry::new());
        let threads: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|values| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat_us");
                    let g = reg.gauge("level");
                    for &v in &values {
                        c.add(v);
                        h.record(v);
                        g.add(v as i64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }

        let serial_sum: u64 = per_thread.iter().flatten().sum();
        let serial_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let serial_max: u64 = per_thread.iter().flatten().copied().max().unwrap_or(0);

        prop_assert_eq!(reg.counter("hits").get(), serial_sum);
        prop_assert_eq!(reg.gauge("level").get(), serial_sum as i64);
        let snap = reg.histogram("lat_us").snapshot();
        prop_assert_eq!(snap.count, serial_count);
        prop_assert_eq!(snap.sum, serial_sum);
        prop_assert_eq!(snap.max, serial_max);
        let bucketed: u64 = snap.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucketed, serial_count, "every observation lands in a bucket");
    }

    /// Snapshots taken mid-hammer never tear: every observed total is a
    /// valid prefix (monotonically non-decreasing, internally consistent).
    #[test]
    fn snapshots_under_concurrency_are_consistent(
        n in 200usize..2_000,
    ) {
        let obs = Obs::new();
        let writer = {
            let obs = obs.clone();
            std::thread::spawn(move || {
                let m = &obs.core().expect("on").metrics;
                let c = m.counter("ticks");
                let h = m.histogram("work_us");
                for i in 0..n {
                    c.inc();
                    h.record(i as u64 % 500 + 1);
                }
            })
        };
        let mut last = 0u64;
        loop {
            let snap = obs.snapshot().expect("on");
            let ticks = snap.counters.get("ticks").copied().unwrap_or(0);
            prop_assert!(ticks >= last, "counter went backwards: {} -> {}", last, ticks);
            prop_assert!(ticks <= n as u64);
            if let Some(h) = snap.histograms.get("work_us") {
                prop_assert!(h.sum >= h.count, "every recorded value is >= 1");
                prop_assert!(h.count <= n as u64);
            }
            last = ticks;
            if writer.is_finished() {
                break;
            }
        }
        writer.join().expect("writer thread");
        let end = obs.snapshot().expect("on");
        prop_assert_eq!(end.counters["ticks"], n as u64);
        prop_assert_eq!(end.histograms["work_us"].count, n as u64);
    }
}
