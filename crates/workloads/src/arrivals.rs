//! Job arrival patterns (Section III's dense vs sparse, Figure 1).
//!
//! The paper's experiments submit 10 jobs either densely (back to back) or
//! sparsely (three groups of 3–4 jobs with idle gaps between groups). The
//! presets here are tuned so that, with the normal wordcount profile on the
//! paper cluster (~240 s per job), the sparse pattern's inter-group gap is
//! smaller than a group's FIFO drain time — the backlog regime the paper's
//! FIFO ratios imply — while S³ clears each group before the next arrives.

use s3_engine::QosClass;
use s3_sim::SimRng;

/// A named arrival pattern producing submit times in seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// `n` jobs, consecutive submissions `spacing_s` apart.
    Dense {
        /// Number of jobs.
        n: usize,
        /// Seconds between consecutive submissions.
        spacing_s: f64,
    },
    /// Groups of jobs: group `i` starts at `group_gap_s * i`; within a
    /// group, jobs are `spacing_s` apart.
    SparseGroups {
        /// Jobs per group.
        group_sizes: Vec<usize>,
        /// Seconds between group starts.
        group_gap_s: f64,
        /// Seconds between jobs within a group.
        spacing_s: f64,
    },
    /// `n` jobs with exponential inter-arrival times of the given mean.
    Poisson {
        /// Number of jobs.
        n: usize,
        /// Mean seconds between arrivals.
        mean_gap_s: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Explicit arrival times.
    Explicit(Vec<f64>),
}

impl ArrivalPattern {
    /// The paper's dense pattern: 10 jobs, 2 s apart.
    pub fn paper_dense() -> Self {
        ArrivalPattern::Dense {
            n: 10,
            spacing_s: 2.0,
        }
    }

    /// The paper's sparse pattern: 10 jobs in three groups (3/3/4), groups
    /// 300 s apart, 30 s between jobs within a group. The gap is slightly
    /// below a group's processing time, so consecutive groups overlap on
    /// the cluster — the backlog regime the paper's FIFO ratios imply, and
    /// the regime where S³'s cross-group sharing pays off.
    pub fn paper_sparse() -> Self {
        ArrivalPattern::SparseGroups {
            group_sizes: vec![3, 3, 4],
            group_gap_s: 300.0,
            spacing_s: 30.0,
        }
    }

    /// Materialize the arrival times (sorted, starting at 0).
    pub fn times(&self) -> Vec<f64> {
        match self {
            ArrivalPattern::Dense { n, spacing_s } => {
                assert!(*n > 0, "need at least one job");
                assert!(*spacing_s >= 0.0, "negative spacing");
                (0..*n).map(|i| i as f64 * spacing_s).collect()
            }
            ArrivalPattern::SparseGroups {
                group_sizes,
                group_gap_s,
                spacing_s,
            } => {
                assert!(!group_sizes.is_empty(), "need at least one group");
                assert!(group_sizes.iter().all(|&g| g > 0), "empty group");
                let mut out = Vec::new();
                for (gi, &size) in group_sizes.iter().enumerate() {
                    let start = gi as f64 * group_gap_s;
                    for j in 0..size {
                        out.push(start + j as f64 * spacing_s);
                    }
                }
                out.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                out
            }
            ArrivalPattern::Poisson { n, mean_gap_s, seed } => {
                assert!(*n > 0, "need at least one job");
                assert!(*mean_gap_s > 0.0, "mean gap must be positive");
                let mut rng = SimRng::seed_from_u64(*seed);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(*n);
                for _ in 0..*n {
                    out.push(t);
                    t += rng.exponential(1.0 / mean_gap_s);
                }
                out
            }
            ArrivalPattern::Explicit(times) => {
                let mut out = times.clone();
                out.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                out
            }
        }
    }

    /// Number of jobs in the pattern.
    pub fn len(&self) -> usize {
        match self {
            ArrivalPattern::Dense { n, .. } | ArrivalPattern::Poisson { n, .. } => *n,
            ArrivalPattern::SparseGroups { group_sizes, .. } => group_sizes.iter().sum(),
            ArrivalPattern::Explicit(times) => times.len(),
        }
    }

    /// Whether the pattern contains no jobs (never true for valid patterns).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's group boundaries for MRShare policies: the sparse
    /// pattern maps to MRS3's 3/3/4 batching.
    pub fn group_sizes(&self) -> Option<&[usize]> {
        match self {
            ArrivalPattern::SparseGroups { group_sizes, .. } => Some(group_sizes),
            _ => None,
        }
    }
}

/// A QoS class mix for multi-tenant service workloads: relative weights
/// for High/Normal/Low submissions, assigned per job by a seeded draw so
/// the same `(mix, n, seed)` always produces the same class sequence —
/// the overload experiments (`s3load --classes`, `s3chaos service`)
/// replay identically across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Relative weight of [`QosClass::High`] submissions.
    pub high: f64,
    /// Relative weight of [`QosClass::Normal`] submissions.
    pub normal: f64,
    /// Relative weight of [`QosClass::Low`] submissions.
    pub low: f64,
}

impl Default for ClassMix {
    /// The overload-benchmark default: 20% High, 50% Normal, 30% Low.
    fn default() -> Self {
        ClassMix {
            high: 0.2,
            normal: 0.5,
            low: 0.3,
        }
    }
}

impl ClassMix {
    /// Every job in one class.
    pub fn all(class: QosClass) -> Self {
        match class {
            QosClass::High => ClassMix { high: 1.0, normal: 0.0, low: 0.0 },
            QosClass::Normal => ClassMix { high: 0.0, normal: 1.0, low: 0.0 },
            QosClass::Low => ClassMix { high: 0.0, normal: 0.0, low: 1.0 },
        }
    }

    /// Assign a class to each of `n` jobs by a seeded weighted draw.
    /// Deterministic: the same `(self, n, seed)` yields the same vector.
    pub fn assign(&self, n: usize, seed: u64) -> Vec<QosClass> {
        assert!(
            self.high >= 0.0 && self.normal >= 0.0 && self.low >= 0.0,
            "negative class weight"
        );
        let total = self.high + self.normal + self.low;
        assert!(total > 0.0, "all class weights zero");
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.uniform(0.0, total);
                if x < self.high {
                    QosClass::High
                } else if x < self.high + self.normal {
                    QosClass::Normal
                } else {
                    QosClass::Low
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_uniformly_spaced() {
        let t = ArrivalPattern::paper_dense().times();
        assert_eq!(t.len(), 10);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[9], 18.0);
    }

    #[test]
    fn sparse_has_three_groups() {
        let p = ArrivalPattern::paper_sparse();
        let t = p.times();
        assert_eq!(t.len(), 10);
        assert_eq!(p.group_sizes(), Some(&[3usize, 3, 4][..]));
        // Group starts.
        assert_eq!(t[0], 0.0);
        assert_eq!(t[3], 300.0);
        assert_eq!(t[6], 600.0);
        // Last job of the last group.
        assert_eq!(t[9], 600.0 + 3.0 * 30.0);
        // Sorted.
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = ArrivalPattern::Poisson {
            n: 50,
            mean_gap_s: 30.0,
            seed: 5,
        };
        let a = p.times();
        let b = p.times();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap is in the right ballpark.
        let mean = a.last().unwrap() / (a.len() - 1) as f64;
        assert!((15.0..45.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn explicit_is_sorted() {
        let p = ArrivalPattern::Explicit(vec![5.0, 0.0, 2.0]);
        assert_eq!(p.times(), vec![0.0, 2.0, 5.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn class_mix_is_deterministic_and_tracks_weights() {
        let mix = ClassMix::default();
        let a = mix.assign(3000, 42);
        assert_eq!(a, mix.assign(3000, 42), "same seed, same sequence");
        assert_ne!(a, mix.assign(3000, 43), "different seed differs");
        let count = |c| a.iter().filter(|&&x| x == c).count() as f64 / 3000.0;
        assert!((count(QosClass::High) - 0.2).abs() < 0.05);
        assert!((count(QosClass::Normal) - 0.5).abs() < 0.05);
        assert!((count(QosClass::Low) - 0.3).abs() < 0.05);
        assert!(ClassMix::all(QosClass::High)
            .assign(64, 1)
            .iter()
            .all(|&c| c == QosClass::High));
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        ArrivalPattern::SparseGroups {
            group_sizes: vec![2, 0],
            group_gap_s: 10.0,
            spacing_s: 1.0,
        }
        .times();
    }
}
