//! Fault tolerance and deterministic fault injection for the real engine.
//!
//! This is the engine-level analogue of the simulator's periodic slot
//! checking (`s3-core::s3`) and chaos harness (`s3-cluster::chaos`): the
//! shared-scan server can be configured to treat segment tasks as
//! **retryable** — each block claim carries a deadline derived from an
//! EWMA of recent block-scan times; claims that miss it are speculatively
//! re-executed on another pool worker with first-result-wins idempotent
//! commit — and to **exclude** virtual workers that repeatedly miss their
//! deadlines, readmitting them after a configurable window (the engine's
//! version of the paper's slow-TaskTracker exclusion, Section IV-D-1).
//!
//! [`FaultPlan`] is the injection side: a reproducible set of faults —
//! slow workers, dropped (lost) block tasks, user-function panics, reduce
//! shard panics, a dying coordinator — drawn from a single 64-bit seed,
//! mirroring `s3_cluster::ChaosPlan`. Equal seeds yield byte-identical
//! plans, so any failure the `s3chaos engine` fuzzer finds replays from
//! its seed alone, and a failing plan minimizes by dropping faults one at
//! a time ([`FaultPlan::without_fault`]).
//!
//! Faults that fire at most once (drops, panics, the coordinator kill)
//! are *armed* per server run via [`ArmedFaults`], so a dropped task is
//! lost exactly once and the retry path must recover it.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault-tolerance parameters of a [`crate::SharedScanServer`].
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Run segments as per-block claim/commit tasks with deadline-based
    /// speculative re-execution (first result wins, idempotent commit).
    /// Off, segments run as one cooperative broadcast: cheaper per block,
    /// but a lost or stalled task stalls the whole scan. Panic quarantine
    /// is always on, independent of this flag.
    pub speculation: bool,
    /// With [`speculation`](FtConfig::speculation) on, workers that drain
    /// the segment's claim cursor immediately **assist** the slow tail:
    /// they re-execute still-uncommitted blocks right away (first result
    /// wins) instead of waiting for an EWMA deadline to expire. Deadline
    /// expiry remains the crash-recovery fallback and still drives the
    /// exclusion policy. Off, the tail falls back to pure deadline-based
    /// speculation (the legacy behavior). Ignored when `speculation` is
    /// off.
    pub assist: bool,
    /// Lower bound on a block task's deadline, whatever the EWMA says.
    pub deadline_floor: Duration,
    /// Deadline = max(floor, EWMA of recent block-scan times × this).
    pub deadline_slack: f64,
    /// Consecutive deadline misses before a virtual worker is excluded.
    pub exclusion_threshold: u32,
    /// Segment iterations an excluded worker sits out before readmission.
    pub exclusion_window_iters: u64,
}

impl Default for FtConfig {
    /// Speculation off (zero-overhead scanning); enable it with
    /// [`FtConfig::resilient`] or by setting
    /// [`speculation`](FtConfig::speculation) yourself.
    fn default() -> Self {
        FtConfig {
            speculation: false,
            assist: true,
            deadline_floor: Duration::from_millis(25),
            deadline_slack: 8.0,
            exclusion_threshold: 2,
            exclusion_window_iters: 8,
        }
    }
}

impl FtConfig {
    /// Speculation on with the default deadlines — the configuration the
    /// chaos fuzzer and the fault-tolerance tests run under.
    pub fn resilient() -> Self {
        FtConfig {
            speculation: true,
            ..FtConfig::default()
        }
    }
}

/// One injected engine fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineFault {
    /// Virtual worker `worker` sleeps `delay_us` before scanning each
    /// block it claims during global segment iterations
    /// `[from_iter, until_iter)` — a transient straggler. Under
    /// speculation this triggers deadline misses, re-execution, and
    /// (if it persists) exclusion.
    SlowWorker {
        /// Virtual worker index (broadcast/task slot, `0..num_threads`).
        worker: usize,
        /// First affected iteration.
        from_iter: u64,
        /// First unaffected iteration.
        until_iter: u64,
        /// Injected delay per claimed block, microseconds.
        delay_us: u64,
    },
    /// Virtual worker `worker` silently loses the first block it claims at
    /// iteration ≥ `at_iter`: the work runs but is never committed — a
    /// lost task. Fires once. Only the retry path can recover the block.
    DropTask {
        /// Virtual worker index.
        worker: usize,
        /// Earliest iteration at which the drop arms.
        at_iter: u64,
    },
    /// The map function of the job with submit index `job` panics on the
    /// first block it maps after completing `after_segments` segments of
    /// its own revolution. Fires once; the job must be quarantined while
    /// every co-riding job keeps its exact output.
    PanicMap {
        /// Job submit index (`0` = first job submitted to the server).
        job: u64,
        /// Segments of the job's own revolution completed before the
        /// panic (0 = first block the job ever maps).
        after_segments: u64,
    },
    /// Reduce shard `shard` of job `job` panics at shard start. Fires
    /// once; the job fails with [`crate::JobError::Panicked`] and no other
    /// job is affected.
    PanicReduce {
        /// Job submit index.
        job: u64,
        /// Reduce-pool shard index the panic lands on.
        shard: usize,
    },
    /// Reduce shard `shard` of job `job` sleeps `delay_us` before running.
    DelayReduce {
        /// Job submit index.
        job: u64,
        /// Delayed shard index.
        shard: usize,
        /// Injected delay, microseconds.
        delay_us: u64,
    },
    /// The coordinator dies (returns) at the start of iteration ≥
    /// `at_iter`. Every unfinished job must resolve with
    /// [`crate::JobError::Aborted`] rather than hanging its handle.
    KillCoordinator {
        /// Earliest iteration at which the coordinator dies.
        at_iter: u64,
    },
}

impl std::fmt::Display for EngineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EngineFault::SlowWorker {
                worker,
                from_iter,
                until_iter,
                delay_us,
            } => write!(
                f,
                "slow worker {worker}: +{delay_us}us/block during iters {from_iter}..{until_iter}"
            ),
            EngineFault::DropTask { worker, at_iter } => {
                write!(f, "drop: worker {worker} loses a block at iter >= {at_iter}")
            }
            EngineFault::PanicMap {
                job,
                after_segments,
            } => write!(f, "panic: job {job} map after {after_segments} segment(s)"),
            EngineFault::PanicReduce { job, shard } => {
                write!(f, "panic: job {job} reduce shard {shard}")
            }
            EngineFault::DelayReduce {
                job,
                shard,
                delay_us,
            } => write!(f, "delay: job {job} reduce shard {shard} +{delay_us}us"),
            EngineFault::KillCoordinator { at_iter } => {
                write!(f, "kill coordinator at iter >= {at_iter}")
            }
        }
    }
}

/// Bounds for seeded engine fault-plan generation.
#[derive(Debug, Clone)]
pub struct EngineChaosConfig {
    /// Virtual workers faults may target (the server's `num_threads`).
    pub num_workers: usize,
    /// Jobs faults may target (submit indexes `0..num_jobs`).
    pub num_jobs: u64,
    /// Segment iterations the run is expected to span (fault times are
    /// drawn from this range).
    pub horizon_iters: u64,
    /// Reduce shards per job (the server's reduce-pool width).
    pub num_shards: usize,
    /// Minimum stragglers per plan (default 0; the adaptive-mode fuzzer
    /// raises it to guarantee every plan perturbs the measured scan cost).
    pub min_slow: u32,
    /// Maximum straggler / drop / map-panic / reduce-fault counts.
    pub max_slow: u32,
    /// Maximum dropped tasks per plan.
    pub max_drops: u32,
    /// Maximum map panics per plan (each targets a distinct job).
    pub max_map_panics: u32,
    /// Maximum reduce faults (panic or delay) per plan.
    pub max_reduce_faults: u32,
    /// Probability the plan kills the coordinator.
    pub coordinator_kill_prob: f64,
    /// Injected straggler delay per block, microseconds.
    pub slow_delay_us: (u64, u64),
}

impl Default for EngineChaosConfig {
    fn default() -> Self {
        EngineChaosConfig {
            num_workers: 3,
            num_jobs: 4,
            horizon_iters: 40,
            num_shards: 3,
            min_slow: 0,
            max_slow: 2,
            max_drops: 2,
            max_map_panics: 2,
            max_reduce_faults: 1,
            coordinator_kill_prob: 0.05,
            slow_delay_us: (8_000, 40_000),
        }
    }
}

/// A reproducible set of engine faults drawn from one seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults, in generation order.
    pub faults: Vec<EngineFault>,
}

impl FaultPlan {
    /// Generate the plan for `seed`. Deterministic: equal inputs yield
    /// equal plans.
    pub fn generate(seed: u64, cfg: &EngineChaosConfig) -> FaultPlan {
        assert!(cfg.num_workers > 0, "need at least one worker");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults = Vec::new();

        // `min_slow == 0` (the default) draws from `0..=max_slow`, the
        // exact historical range — existing seeds reproduce byte-identical
        // plans.
        let n_slow = rng.gen_range(cfg.min_slow..=cfg.max_slow.max(cfg.min_slow));
        for _ in 0..n_slow {
            let from_iter = rng.gen_range(0..cfg.horizon_iters.max(1));
            faults.push(EngineFault::SlowWorker {
                worker: rng.gen_range(0..cfg.num_workers),
                from_iter,
                until_iter: from_iter + rng.gen_range(1..=cfg.horizon_iters.max(2) / 2),
                delay_us: rng.gen_range(cfg.slow_delay_us.0..=cfg.slow_delay_us.1),
            });
        }
        let n_drops = rng.gen_range(0..=cfg.max_drops);
        for _ in 0..n_drops {
            faults.push(EngineFault::DropTask {
                worker: rng.gen_range(0..cfg.num_workers),
                at_iter: rng.gen_range(0..cfg.horizon_iters.max(1)),
            });
        }
        // Map panics target distinct jobs so quarantine counts are exact.
        let n_panics = rng.gen_range(0..=cfg.max_map_panics.min(cfg.num_jobs as u32));
        let mut victims: Vec<u64> = (0..cfg.num_jobs).collect();
        for i in (1..victims.len()).rev() {
            victims.swap(i, rng.gen_range(0..=i));
        }
        for &job in victims.iter().take(n_panics as usize) {
            faults.push(EngineFault::PanicMap {
                job,
                after_segments: rng.gen_range(0..cfg.horizon_iters.max(1)),
            });
        }
        // Reduce faults target jobs *not* already doomed by a map panic.
        let n_reduce = rng.gen_range(0..=cfg.max_reduce_faults);
        let spared = &victims[n_panics as usize..];
        for _ in 0..n_reduce {
            if spared.is_empty() {
                break;
            }
            let job = spared[rng.gen_range(0..spared.len())];
            let shard = rng.gen_range(0..cfg.num_shards.max(1));
            if rng.gen_bool(0.5) {
                faults.push(EngineFault::PanicReduce { job, shard });
            } else {
                faults.push(EngineFault::DelayReduce {
                    job,
                    shard,
                    delay_us: rng.gen_range(cfg.slow_delay_us.0..=cfg.slow_delay_us.1),
                });
            }
        }
        if rng.gen_bool(cfg.coordinator_kill_prob) {
            faults.push(EngineFault::KillCoordinator {
                at_iter: rng.gen_range(1..cfg.horizon_iters.max(2)),
            });
        }
        FaultPlan { faults }
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plan with fault `idx` removed — the minimization step.
    pub fn without_fault(&self, idx: usize) -> FaultPlan {
        let mut faults = self.faults.clone();
        faults.remove(idx);
        FaultPlan { faults }
    }

    /// Job submit indexes doomed by a map or reduce panic in this plan.
    pub fn doomed_jobs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                EngineFault::PanicMap { job, .. } | EngineFault::PanicReduce { job, .. } => {
                    Some(job)
                }
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the plan kills the coordinator.
    pub fn kills_coordinator(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, EngineFault::KillCoordinator { .. }))
    }

    /// One line per fault, for fuzzer reports.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return "  (no faults)\n".into();
        }
        let mut out = String::new();
        for (i, fault) in self.faults.iter().enumerate() {
            out.push_str(&format!("  [{i}] {fault}\n"));
        }
        out
    }

    /// Arm the plan for one server run.
    pub fn arm(&self) -> Arc<ArmedFaults> {
        Arc::new(ArmedFaults {
            faults: self.faults.clone(),
            fired: self.faults.iter().map(|_| AtomicBool::new(false)).collect(),
        })
    }
}

/// A [`FaultPlan`] armed for one server run: one-shot faults (drops,
/// panics, the coordinator kill) fire at most once. Queried from the
/// engine's hot paths; every query is a linear scan over the (tiny) fault
/// list, and servers without a plan skip the queries entirely.
pub struct ArmedFaults {
    faults: Vec<EngineFault>,
    fired: Vec<AtomicBool>,
}

impl ArmedFaults {
    /// Claim a one-shot fault: true exactly once per fault index.
    fn fire(&self, idx: usize) -> bool {
        !self.fired[idx].swap(true, Ordering::Relaxed)
    }

    /// Injected per-block delay for `worker` at global iteration `iter`.
    pub fn map_delay_us(&self, worker: usize, iter: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                EngineFault::SlowWorker {
                    worker: w,
                    from_iter,
                    until_iter,
                    delay_us,
                } if w == worker && (from_iter..until_iter).contains(&iter) => Some(delay_us),
                _ => None,
            })
            .sum()
    }

    /// Should `worker` lose the block it just claimed at iteration `iter`?
    pub fn drops_task(&self, worker: usize, iter: u64) -> bool {
        self.faults.iter().enumerate().any(|(i, f)| match *f {
            EngineFault::DropTask {
                worker: w,
                at_iter,
            } => w == worker && iter >= at_iter && self.fire(i),
            _ => false,
        })
    }

    /// Should job `job`'s map panic now, given it has completed
    /// `segments_done` segments of its own revolution?
    pub fn panics_map(&self, job: u64, segments_done: u64) -> bool {
        self.faults.iter().enumerate().any(|(i, f)| match *f {
            EngineFault::PanicMap {
                job: j,
                after_segments,
            } => j == job && segments_done >= after_segments && self.fire(i),
            _ => false,
        })
    }

    /// Should reduce shard `shard` of job `job` panic?
    pub fn panics_reduce(&self, job: u64, shard: usize) -> bool {
        self.faults.iter().enumerate().any(|(i, f)| match *f {
            EngineFault::PanicReduce { job: j, shard: s } => {
                j == job && s == shard && self.fire(i)
            }
            _ => false,
        })
    }

    /// Injected delay before reduce shard `shard` of job `job` runs.
    pub fn reduce_delay_us(&self, job: u64, shard: usize) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                EngineFault::DelayReduce {
                    job: j,
                    shard: s,
                    delay_us,
                } if j == job && s == shard => Some(delay_us),
                _ => None,
            })
            .sum()
    }

    /// Should the coordinator die at the start of iteration `iter`?
    pub fn kills_coordinator(&self, iter: u64) -> bool {
        self.faults.iter().enumerate().any(|(i, f)| match *f {
            EngineFault::KillCoordinator { at_iter } => iter >= at_iter && self.fire(i),
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = EngineChaosConfig::default();
        let a = FaultPlan::generate(7, &cfg);
        let b = FaultPlan::generate(7, &cfg);
        assert_eq!(a, b);
        // Different seeds differ for at least one of a few tries.
        assert!((0..8).any(|s| FaultPlan::generate(s, &cfg) != a));
    }

    #[test]
    fn one_shot_faults_fire_exactly_once() {
        let plan = FaultPlan {
            faults: vec![
                EngineFault::DropTask {
                    worker: 1,
                    at_iter: 3,
                },
                EngineFault::PanicMap {
                    job: 0,
                    after_segments: 2,
                },
            ],
        };
        let armed = plan.arm();
        assert!(!armed.drops_task(1, 2), "not armed before at_iter");
        assert!(armed.drops_task(1, 5));
        assert!(!armed.drops_task(1, 6), "a drop fires once");
        assert!(!armed.panics_map(0, 1));
        assert!(armed.panics_map(0, 2));
        assert!(!armed.panics_map(0, 3), "a panic fires once");
        // Re-arming resets the one-shot state.
        assert!(plan.arm().drops_task(1, 5));
    }

    #[test]
    fn delays_stack_and_windows_bound() {
        let plan = FaultPlan {
            faults: vec![
                EngineFault::SlowWorker {
                    worker: 0,
                    from_iter: 2,
                    until_iter: 5,
                    delay_us: 100,
                },
                EngineFault::SlowWorker {
                    worker: 0,
                    from_iter: 4,
                    until_iter: 6,
                    delay_us: 50,
                },
            ],
        };
        let armed = plan.arm();
        assert_eq!(armed.map_delay_us(0, 1), 0);
        assert_eq!(armed.map_delay_us(0, 2), 100);
        assert_eq!(armed.map_delay_us(0, 4), 150);
        assert_eq!(armed.map_delay_us(0, 5), 50);
        assert_eq!(armed.map_delay_us(1, 4), 0, "other workers unaffected");
    }

    #[test]
    fn doomed_jobs_lists_panicked_jobs_once() {
        let plan = FaultPlan {
            faults: vec![
                EngineFault::PanicMap {
                    job: 2,
                    after_segments: 0,
                },
                EngineFault::PanicReduce { job: 2, shard: 1 },
                EngineFault::PanicReduce { job: 0, shard: 0 },
                EngineFault::DelayReduce {
                    job: 1,
                    shard: 0,
                    delay_us: 10,
                },
            ],
        };
        assert_eq!(plan.doomed_jobs(), vec![0, 2]);
        assert!(!plan.kills_coordinator());
    }

    #[test]
    fn generated_faults_respect_bounds() {
        let cfg = EngineChaosConfig::default();
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &cfg);
            let mut panicked_jobs = std::collections::BTreeSet::new();
            for f in &plan.faults {
                match *f {
                    EngineFault::SlowWorker {
                        worker,
                        from_iter,
                        until_iter,
                        delay_us,
                    } => {
                        assert!(worker < cfg.num_workers);
                        assert!(until_iter > from_iter);
                        assert!(delay_us >= cfg.slow_delay_us.0 && delay_us <= cfg.slow_delay_us.1);
                    }
                    EngineFault::DropTask { worker, .. } => assert!(worker < cfg.num_workers),
                    EngineFault::PanicMap { job, .. } => {
                        assert!(job < cfg.num_jobs);
                        assert!(panicked_jobs.insert(job), "seed {seed}: duplicate map-panic victim");
                    }
                    EngineFault::PanicReduce { job, shard } | EngineFault::DelayReduce { job, shard, .. } => {
                        assert!(job < cfg.num_jobs);
                        assert!(shard < cfg.num_shards);
                        assert!(
                            !panicked_jobs.contains(&job),
                            "seed {seed}: reduce fault on a map-panicked job"
                        );
                    }
                    EngineFault::KillCoordinator { .. } => {}
                }
            }
        }
    }

    #[test]
    fn min_slow_guarantees_a_straggler_in_every_plan() {
        let cfg = EngineChaosConfig {
            min_slow: 1,
            ..EngineChaosConfig::default()
        };
        for seed in 0..100 {
            let plan = FaultPlan::generate(seed, &cfg);
            let stragglers = plan
                .faults
                .iter()
                .filter(|f| matches!(f, EngineFault::SlowWorker { .. }))
                .count();
            assert!(stragglers >= 1, "seed {seed} generated no straggler");
        }
    }

    #[test]
    fn minimization_removes_one_fault() {
        let cfg = EngineChaosConfig::default();
        let plan = (0..100)
            .map(|s| FaultPlan::generate(s, &cfg))
            .find(|p| p.len() >= 2)
            .expect("some seed has >= 2 faults");
        let smaller = plan.without_fault(0);
        assert_eq!(smaller.len(), plan.len() - 1);
        assert_eq!(smaller.faults[0], plan.faults[1]);
        assert!(plan.describe().lines().count() == plan.len());
    }
}
