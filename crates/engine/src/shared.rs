//! Shared-scan execution: many jobs, one pass over the data.
//!
//! This is the execution primitive both MRShare batches and S³ merged
//! sub-jobs rely on: each block is read and parsed **once**, every job's
//! map function runs over the same records, and intermediate tuples are
//! tagged with their job index (MRShare's tuple tagging) so the reduce side
//! can keep the jobs' groups apart.
//!
//! Beyond sharing the *read*, jobs that declare
//! [`map_is_per_token`](crate::MapReduceJob::map_is_per_token) also share
//! the *parse*: each line is tokenized once and every such job's
//! [`map_token`](crate::MapReduceJob::map_token) runs over the shared
//! tokens — removing the dominant per-job cost once I/O is shared.
//!
//! The correctness contract — outputs identical to running each job alone —
//! is what makes shared scanning a pure optimization; the test suite and
//! `tests/` integration tests enforce it record-for-record.

use crate::arena::TokenMap;
use crate::exec::{partition_of, ExecConfig, JobOutput, ScanPath, ScanStats};
use crate::partition::{key_hash, KeySketch, PartitionPlan};
use crate::pool::WorkerPool;
use crate::store::BlockStore;
use crate::types::MapReduceJob;
use fxhash::FxHashMap;
use parking_lot::Mutex;
use s3_obs::trace::Ids;
use s3_obs::Obs;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Values gathered for one `(job, key)` group on the reduce side: fold
/// jobs keep a single streamed accumulator, buffering jobs keep the run.
enum Gathered<V> {
    One(V),
    Many(Vec<V>),
}

fn fold_into<J: MapReduceJob>(job: &J, acc: &mut FxHashMap<J::K, J::V>, k: J::K, v: J::V) {
    match acc.entry(k) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            job.combine_fold(e.get_mut(), v);
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(v);
        }
    }
}

/// Run every job in `jobs` over one shared scan of `store`.
///
/// Returns one [`JobOutput`] per job, in order. Each output's
/// `stats.blocks_scanned` reports the *shared* scan (the store is read once
/// in total, not once per job); `map_output_records` is per job.
///
/// Spawns one [`WorkerPool`] for the call; to amortize pool creation over
/// many calls, create a pool once and use [`run_merged_on`].
///
/// # Panics
/// Panics if `jobs` is empty or `cfg` has zero threads or reducers.
pub fn run_merged<J: MapReduceJob>(
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
) -> Vec<JobOutput<J::K, J::Out>> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    let pool = WorkerPool::new(cfg.num_threads);
    run_merged_on(&pool, jobs, store, cfg)
}

/// Run a shared scan on an existing pool (thread creation stays O(pools)
/// no matter how many merged batches run). `cfg.num_threads` is ignored;
/// the phases fan out to the pool's worker count.
///
/// # Panics
/// Panics if `jobs` is empty or `cfg.num_reducers` is zero.
pub fn run_merged_on<J: MapReduceJob>(
    pool: &WorkerPool,
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
) -> Vec<JobOutput<J::K, J::Out>> {
    run_merged_observed(pool, jobs, store, cfg, &Obs::off())
}

/// [`run_merged_on`] with telemetry: records `merged_map_phase` /
/// `merged_reduce_phase` spans (the `n` id carries the merged job count)
/// plus the `engine.*` scan, shuffle, and combiner counters into `obs`.
/// Passing [`Obs::off`] is exactly [`run_merged_on`].
///
/// # Panics
/// Panics if `jobs` is empty or `cfg.num_reducers` is zero.
pub fn run_merged_observed<J: MapReduceJob>(
    pool: &WorkerPool,
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
    obs: &Obs,
) -> Vec<JobOutput<J::K, J::Out>> {
    run_merged_path(pool, jobs, store, cfg, obs, ScanPath::Kernel)
}

/// Run a shared scan over the legacy `&str` path (see
/// [`ScanPath::Legacy`](crate::ScanPath::Legacy)) — the byte-equality
/// oracle for [`run_merged`]. Spawns its own pool.
///
/// # Panics
/// Panics if `jobs` is empty or `cfg` has zero threads or reducers.
pub fn run_merged_legacy<J: MapReduceJob>(
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
) -> Vec<JobOutput<J::K, J::Out>> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    let pool = WorkerPool::new(cfg.num_threads);
    run_merged_path(&pool, jobs, store, cfg, &Obs::off(), ScanPath::Legacy)
}

fn run_merged_path<J: MapReduceJob>(
    pool: &WorkerPool,
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
    obs: &Obs,
    scan_path: ScanPath,
) -> Vec<JobOutput<J::K, J::Out>> {
    assert!(!jobs.is_empty(), "merged run needs at least one job");
    // Degenerate reducer counts clamp to one shard instead of faulting
    // mid-reduce; `ExecConfig::try_new` is the typed front door.
    let num_reducers = cfg.num_reducers.max(1);
    let weighted = cfg.partition.is_weighted();
    let core = obs.core();

    let next_block = AtomicUsize::new(0);
    let num_blocks = store.num_blocks();
    let num_jobs = jobs.len();
    let num_threads = pool.num_threads();

    let fold_flags: Vec<bool> = jobs.iter().map(|j| j.combine_is_fold()).collect();
    // Jobs that share the tokenization pass vs. jobs that see whole lines.
    let token_jobs: Vec<usize> = (0..num_jobs).filter(|&ji| jobs[ji].map_is_per_token()).collect();
    let line_jobs: Vec<usize> = (0..num_jobs).filter(|&ji| !jobs[ji].map_is_per_token()).collect();
    // Token-identity fast path (kernel only): fold under raw token bytes in
    // a per-worker arena, building each distinct key once at flush.
    let fast_flags: Vec<bool> = (0..num_jobs)
        .map(|ji| {
            scan_path == ScanPath::Kernel && fold_flags[ji] && jobs[ji].map_emits_token()
        })
        .collect();
    let fast_flags = &fast_flags;

    // ---- shared map phase: tag tuples with their job index ----
    let map_t0 = core.map(|c| c.tracer.now_us());
    type Tagged<K, V> = (usize, K, V);
    type MapOut<K, V> = (Vec<Vec<Tagged<K, V>>>, Vec<u64>, u64, KeySketch);
    let worker_outputs: Vec<MapOut<J::K, J::V>> = pool.broadcast(num_threads, &|_| {
        // Weighted mode defers partitioning to the shuffle: each worker
        // emits one unpartitioned run plus a key-frequency sketch, and the
        // merged sketches drive a weighted plan over all workers' records.
        let nparts = if weighted { 1 } else { num_reducers };
        let mut partitions: Vec<Vec<Tagged<J::K, J::V>>> =
            (0..nparts).map(|_| Vec::new()).collect();
        let mut sketch = KeySketch::new();
        let mut emitted = vec![0u64; num_jobs];
        let mut bytes = 0u64;
        // Fold jobs stream into one accumulator per key for the worker's
        // whole run; buffering jobs group per block and combine at block end.
        let mut fold_accs: Vec<FxHashMap<J::K, J::V>> =
            (0..num_jobs).map(|_| FxHashMap::default()).collect();
        let mut bufs: Vec<FxHashMap<J::K, Vec<J::V>>> =
            (0..num_jobs).map(|_| FxHashMap::default()).collect();
        let mut tok_maps: Vec<TokenMap<J::V>> = (0..num_jobs).map(|_| TokenMap::new()).collect();
        loop {
            let idx = next_block.fetch_add(1, Ordering::Relaxed);
            if idx >= num_blocks {
                break;
            }
            let block = store.block(idx);
            bytes += block.len() as u64;
            match scan_path {
                ScanPath::Kernel => {
                    // One pass over the records; every job maps each one.
                    // Token jobs share a single tokenization of the whole
                    // block (exact: `\n`/`\r` are whitespace, so block
                    // tokens == every line's tokens concatenated).
                    if !token_jobs.is_empty() {
                        memchr::for_each_token(block, |token| {
                            for &ji in &token_jobs {
                                let job = jobs[ji];
                                let cnt = &mut emitted[ji];
                                if fast_flags[ji] {
                                    if let Some(v) = job.token_value(token) {
                                        *cnt += 1;
                                        tok_maps[ji].upsert_within(block, token, v, |acc, next| {
                                            job.combine_fold(acc, next)
                                        });
                                    }
                                } else if fold_flags[ji] {
                                    let acc = &mut fold_accs[ji];
                                    job.map_token_bytes(token, &mut |k, v| {
                                        *cnt += 1;
                                        fold_into(job, acc, k, v);
                                    });
                                } else {
                                    let buf = &mut bufs[ji];
                                    job.map_token_bytes(token, &mut |k, v| {
                                        *cnt += 1;
                                        buf.entry(k).or_default().push(v);
                                    });
                                }
                            }
                        });
                    }
                    if !line_jobs.is_empty() {
                        for line in memchr::lines(block) {
                            for &ji in &line_jobs {
                                let job = jobs[ji];
                                let cnt = &mut emitted[ji];
                                if fold_flags[ji] {
                                    let acc = &mut fold_accs[ji];
                                    job.map_bytes(line, &mut |k, v| {
                                        *cnt += 1;
                                        fold_into(job, acc, k, v);
                                    });
                                } else {
                                    let buf = &mut bufs[ji];
                                    job.map_bytes(line, &mut |k, v| {
                                        *cnt += 1;
                                        buf.entry(k).or_default().push(v);
                                    });
                                }
                            }
                        }
                    }
                }
                ScanPath::Legacy => {
                    // Pre-kernel behavior, kept as the oracle: `&str` lines,
                    // per-line shared tokenization.
                    let text = String::from_utf8_lossy(block);
                    for line in text.lines() {
                        if !token_jobs.is_empty() {
                            for token in line.split_whitespace() {
                                for &ji in &token_jobs {
                                    let job = jobs[ji];
                                    let cnt = &mut emitted[ji];
                                    if fold_flags[ji] {
                                        let acc = &mut fold_accs[ji];
                                        job.map_token(token, &mut |k, v| {
                                            *cnt += 1;
                                            fold_into(job, acc, k, v);
                                        });
                                    } else {
                                        let buf = &mut bufs[ji];
                                        job.map_token(token, &mut |k, v| {
                                            *cnt += 1;
                                            buf.entry(k).or_default().push(v);
                                        });
                                    }
                                }
                            }
                        }
                        for &ji in &line_jobs {
                            let job = jobs[ji];
                            let cnt = &mut emitted[ji];
                            if fold_flags[ji] {
                                let acc = &mut fold_accs[ji];
                                job.map(line, &mut |k, v| {
                                    *cnt += 1;
                                    fold_into(job, acc, k, v);
                                });
                            } else {
                                let buf = &mut bufs[ji];
                                job.map(line, &mut |k, v| {
                                    *cnt += 1;
                                    buf.entry(k).or_default().push(v);
                                });
                            }
                        }
                    }
                }
            }
            // Flush buffering jobs through their combiner at block end.
            for (ji, buf) in bufs.iter_mut().enumerate() {
                for (k, vs) in buf.drain() {
                    let folded = jobs[ji].combine(&k, vs);
                    if weighted {
                        sketch.observe(key_hash(&k), folded.len() as u64);
                        for v in folded {
                            partitions[0].push((ji, k.clone(), v));
                        }
                    } else {
                        let p = partition_of(&k, num_reducers);
                        for v in folded {
                            partitions[p].push((ji, k.clone(), v));
                        }
                    }
                }
            }
        }
        // Flush fold accumulators: one record per key for the whole worker.
        for (ji, acc) in fold_accs.into_iter().enumerate() {
            for (k, v) in acc {
                let p = if weighted {
                    sketch.observe(key_hash(&k), 1);
                    0
                } else {
                    partition_of(&k, num_reducers)
                };
                partitions[p].push((ji, k, v));
            }
        }
        // Flush arena maps: build each distinct token's key exactly once.
        // The sketch hashes the *materialized* key — `token_key` may
        // collapse distinct tokens — so sketch and shuffle agree.
        for (ji, m) in tok_maps.into_iter().enumerate() {
            let job = jobs[ji];
            m.drain_into(|tok, v| {
                let k = job.token_key(tok);
                let p = if weighted {
                    sketch.observe(key_hash(&k), 1);
                    0
                } else {
                    partition_of(&k, num_reducers)
                };
                partitions[p].push((ji, k, v));
            });
        }
        (partitions, emitted, bytes, sketch.finish())
    });

    // ---- shuffle ----
    // Weighted: merge the per-worker sketches into one plan and route every
    // record by its key hash; the plan may split hot bins past the base
    // width (the reduce loop iterates partition count, not pool width).
    let plan = weighted.then(|| {
        let mut merged = KeySketch::new().finish();
        for (_, _, _, s) in &worker_outputs {
            merged.merge(s.clone());
        }
        PartitionPlan::build(&merged, num_reducers, cfg.partition.split_factor_x1000())
    });
    let nbins = plan.as_ref().map_or(num_reducers, PartitionPlan::nbins);
    let mut shuffled: Vec<Vec<Tagged<J::K, J::V>>> = (0..nbins).map(|_| Vec::new()).collect();
    let mut per_job_emitted = vec![0u64; num_jobs];
    let mut bytes_scanned = 0u64;
    for (parts, emitted, bytes, _) in worker_outputs {
        bytes_scanned += bytes;
        for (ji, e) in emitted.into_iter().enumerate() {
            per_job_emitted[ji] += e;
        }
        match &plan {
            Some(plan) => {
                for recs in parts {
                    for (ji, k, v) in recs {
                        shuffled[plan.bin_of_hash(key_hash(&k))].push((ji, k, v));
                    }
                }
            }
            None => {
                for (p, mut recs) in parts.into_iter().enumerate() {
                    shuffled[p].append(&mut recs);
                }
            }
        }
    }
    if let (Some(c), Some(t0)) = (core, map_t0) {
        c.tracer
            .span("merged_map_phase", t0, Ids::none().jobs(num_jobs as u64));
        let emitted_total: u64 = per_job_emitted.iter().sum();
        let shuffle_records: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        let m = &c.metrics;
        m.counter("engine.map_records").add(emitted_total);
        m.counter("engine.blocks_scanned").add(num_blocks as u64);
        m.counter("engine.bytes_scanned").add(bytes_scanned);
        m.counter("engine.shuffle_records").add(shuffle_records);
        m.counter("engine.combiner_fold_hits")
            .add(emitted_total.saturating_sub(shuffle_records));
    }

    // ---- reduce phase: group by (job, key), moving records ----
    let reduce_t0 = core.map(|c| c.tracer.now_us());
    let next_partition = AtomicUsize::new(0);
    let num_partitions = shuffled.len();
    type LockedPartition<J> =
        Mutex<Vec<Tagged<<J as MapReduceJob>::K, <J as MapReduceJob>::V>>>;
    let shuffled: Vec<LockedPartition<J>> = shuffled.into_iter().map(Mutex::new).collect();
    let shuffled = &shuffled;
    let fold_flags = &fold_flags;
    // One unordered (key, output) part per job, per reduce worker.
    type ReducedParts<J> = Vec<Vec<(<J as MapReduceJob>::K, <J as MapReduceJob>::Out)>>;
    let reduced: Vec<ReducedParts<J>> = pool.broadcast(num_threads, &|_| {
        let mut out: ReducedParts<J> = (0..num_jobs).map(|_| Vec::new()).collect();
        loop {
            let p = next_partition.fetch_add(1, Ordering::Relaxed);
            if p >= num_partitions {
                break;
            }
            let part = std::mem::take(&mut *shuffled[p].lock());
            // Hash-map grouping (O(1) per record, no log-n key compares);
            // ordering is paid once on insertion into the sorted output.
            let mut grouped: FxHashMap<(usize, J::K), Gathered<J::V>> = FxHashMap::default();
            for (ji, k, v) in part {
                match grouped.entry((ji, k)) {
                    std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                        Gathered::One(acc) => jobs[ji].combine_fold(acc, v),
                        Gathered::Many(vs) => vs.push(v),
                    },
                    std::collections::hash_map::Entry::Vacant(e) => {
                        if fold_flags[ji] {
                            e.insert(Gathered::One(v));
                        } else {
                            e.insert(Gathered::Many(vec![v]));
                        }
                    }
                }
            }
            for ((ji, k), gathered) in grouped {
                let reduced = match gathered {
                    Gathered::One(v) => jobs[ji].reduce(&k, std::slice::from_ref(&v)),
                    Gathered::Many(vs) => jobs[ji].reduce(&k, &vs),
                };
                if let Some(o) = reduced {
                    out[ji].push((k, o));
                }
            }
        }
        out
    });

    // Per job: concatenate every worker's (duplicate-free) part, sort once,
    // bulk-build the ordered output.
    let mut flat: Vec<Vec<(J::K, J::Out)>> = (0..num_jobs).map(|_| Vec::new()).collect();
    for worker in reduced {
        for (ji, part) in worker.into_iter().enumerate() {
            flat[ji].extend(part);
        }
    }
    let mut records: Vec<BTreeMap<J::K, J::Out>> = Vec::with_capacity(num_jobs);
    for mut part in flat {
        part.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        records.push(BTreeMap::from_iter(part));
    }
    if let (Some(c), Some(t0)) = (core, reduce_t0) {
        c.tracer
            .span("merged_reduce_phase", t0, Ids::none().jobs(num_jobs as u64));
    }

    records
        .into_iter()
        .enumerate()
        .map(|(ji, recs)| {
            let stats = ScanStats {
                blocks_scanned: num_blocks as u64,
                bytes_scanned,
                map_output_records: per_job_emitted[ji],
                reduce_output_records: recs.len() as u64,
            };
            JobOutput {
                records: recs,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_job;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        let text =
            "alpha beta alpha gamma\nbeta delta alpha\nepsilon beta gamma delta\n".repeat(40);
        BlockStore::from_text(&text, 256)
    }

    fn cfg() -> ExecConfig {
        ExecConfig {
            num_threads: 4,
            num_reducers: 5,
        ..ExecConfig::default()
        }
    }

    #[test]
    fn merged_equals_independent() {
        // The central correctness property of shared scanning.
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
            PrefixCount { prefix: "".into() },
            PrefixCount { prefix: "zz".into() }, // empty output
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let merged = run_merged(&refs, &store(), &cfg());
        for (job, m) in jobs.iter().zip(&merged) {
            let solo = run_job(job, &store(), &cfg());
            assert_eq!(m.records, solo.records, "prefix {:?}", job.prefix);
            assert_eq!(
                m.stats.map_output_records, solo.stats.map_output_records,
                "map output must match per job"
            );
        }
    }

    #[test]
    fn merged_scans_once() {
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let s = store();
        let merged = run_merged(&refs, &s, &cfg());
        // Every output reports the single shared scan, not one per job.
        for m in &merged {
            assert_eq!(m.stats.blocks_scanned as usize, s.num_blocks());
            assert_eq!(m.stats.bytes_scanned as usize, s.total_bytes());
        }
    }

    #[test]
    fn single_job_merge_degenerates_to_run_job() {
        let j = PrefixCount { prefix: "d".into() };
        let merged = run_merged(&[&j], &store(), &cfg());
        let solo = run_job(&j, &store(), &cfg());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].records, solo.records);
    }

    #[test]
    fn merged_on_shared_pool_equals_fresh_pools() {
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "ga".into() },
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let s = store();
        let pool = WorkerPool::new(3);
        let on_pool = run_merged_on(&pool, &refs, &s, &cfg());
        let fresh = run_merged(&refs, &s, &cfg());
        for (a, b) in on_pool.iter().zip(&fresh) {
            assert_eq!(a.records, b.records);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(pool.threads_spawned(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_merge_panics() {
        let refs: Vec<&PrefixCount> = vec![];
        run_merged(&refs, &store(), &cfg());
    }
}
