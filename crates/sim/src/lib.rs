#![warn(missing_docs)]

//! # s3-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the simulation substrate that the MapReduce cluster
//! model (`s3-mapreduce`) runs on. It deliberately contains **no** domain
//! knowledge: only simulated time, an event calendar with deterministic
//! tie-breaking, seeded random number utilities, and summary statistics.
//!
//! Everything is reproducible: two runs with the same seed produce the same
//! event trace bit-for-bit. Wall-clock time is never consulted.
//!
//! ```
//! use s3_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs_f64(2.0), "later");
//! q.schedule(SimTime::ZERO, "now");
//! let (t0, e0) = q.pop().unwrap();
//! assert_eq!((t0, e0), (SimTime::ZERO, "now"));
//! ```

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use stats::{Accumulator, Histogram, Summary};
pub use time::{SimDuration, SimTime};
