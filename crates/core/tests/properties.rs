//! Property-based tests of the schedulers: for random arrival patterns and
//! file geometries, every scheduler completes every job, every job logically
//! scans the whole file exactly once, and S³ never scans more than FIFO.

use proptest::prelude::*;
use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{FifoScheduler, MRShareScheduler, S3Config, S3Scheduler, SubJobSizing};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, RunMetrics, Scheduler,
};
use s3_workloads::wordcount_normal;

fn run(
    scheduler: &mut dyn Scheduler,
    blocks: u64,
    block_mb: u64,
    arrivals: &[f64],
    seed: u64,
) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    let mut dfs = s3_dfs::Dfs::new();
    let file = dfs
        .create_file(
            &cluster,
            "p",
            blocks * block_mb * s3_dfs::MB,
            block_mb * s3_dfs::MB,
            1,
            &mut s3_dfs::RoundRobinPlacement::default(),
        )
        .expect("create file");
    let workload = requests_from_arrivals(&wordcount_normal(), file, arrivals);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    )
    .expect("scheduler must not stall")
}

proptest! {
    // Full simulations are not free; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// S³ invariant: for any arrival pattern and geometry, every job's
    /// logical scan volume equals the file size exactly once — no block
    /// skipped, none rescanned — and all jobs complete.
    #[test]
    fn s3_covers_every_block_exactly_once_per_job(
        blocks in 41u64..300,
        arrivals in prop::collection::vec(0.0f64..600.0, 1..6),
        waves in 1u32..8,
        seed in any::<u64>(),
    ) {
        let mut sched = S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Waves(waves),
            ..S3Config::default()
        });
        let m = run(&mut sched, blocks, 64, &arrivals, seed);
        prop_assert_eq!(m.outcomes.len(), arrivals.len());
        let file_mb = (blocks * 64) as f64;
        let expected = arrivals.len() as f64 * file_mb;
        prop_assert!(
            (m.logical_mb_scanned - expected).abs() < 1e-6,
            "scanned {} expected {}", m.logical_mb_scanned, expected
        );
        // Physical reads never exceed one scan per job and never fall
        // below one scan total.
        prop_assert!(m.mb_read <= expected + 1e-6);
        prop_assert!(m.mb_read >= file_mb - 1e-6);
    }

    /// All schedulers complete all jobs and respect the same logical-scan
    /// accounting; sharing schedulers never read more than FIFO.
    #[test]
    fn schedulers_agree_on_work_accounting(
        blocks in 41u64..200,
        arrivals in prop::collection::vec(0.0f64..400.0, 2..5),
        seed in any::<u64>(),
    ) {
        let n = arrivals.len();
        let fifo = run(&mut FifoScheduler::new(), blocks, 64, &arrivals, seed);
        let file_mb = (blocks * 64) as f64;
        prop_assert!((fifo.mb_read - n as f64 * file_mb).abs() < 1e-6, "FIFO never shares");

        let mut others: Vec<Box<dyn Scheduler>> = vec![
            Box::new(S3Scheduler::default()),
            Box::new(MRShareScheduler::mrs1(n)),
            Box::new(MRShareScheduler::mrs3(n)),
        ];
        for s in &mut others {
            let m = run(s.as_mut(), blocks, 64, &arrivals, seed);
            prop_assert_eq!(m.outcomes.len(), n, "{}", m.scheduler);
            prop_assert!(
                (m.logical_mb_scanned - n as f64 * file_mb).abs() < 1e-6,
                "{}: logical volume", m.scheduler
            );
            prop_assert!(m.blocks_read <= fifo.blocks_read, "{}", m.scheduler);
            // Completions never precede submissions.
            for o in &m.outcomes {
                prop_assert!(o.completed >= o.submitted);
            }
        }
    }

    /// MRShare single-batch: all jobs complete at the same instant, after
    /// the last arrival.
    #[test]
    fn mrs1_completes_jobs_together(
        blocks in 41u64..150,
        arrivals in prop::collection::vec(0.0f64..300.0, 2..5),
        seed in any::<u64>(),
    ) {
        let n = arrivals.len();
        let m = run(&mut MRShareScheduler::mrs1(n), blocks, 64, &arrivals, seed);
        let first = m.outcomes[0].completed;
        for o in &m.outcomes {
            prop_assert_eq!(o.completed, first);
        }
        let last_arrival = m.outcomes.iter().map(|o| o.submitted).max().unwrap();
        prop_assert!(first > last_arrival);
        // Exactly one scan of the file.
        prop_assert_eq!(m.blocks_read, blocks);
    }

    /// Priority-aware S³: for any mix of priorities and any width cap,
    /// every job completes and still scans the whole file exactly once
    /// (deferral only reorders segments, never drops or repeats them).
    #[test]
    fn priority_s3_preserves_coverage(
        blocks in 80u64..250,
        priorities in prop::collection::vec(0u8..3, 2..6),
        cap in 0u32..4,
        seed in any::<u64>(),
    ) {
        use s3_core::PriorityPolicy;
        use s3_mapreduce::job::requests_with_priorities;
        use s3_mapreduce::Priority;

        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = s3_dfs::Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "pp",
                blocks * 64 * s3_dfs::MB,
                64 * s3_dfs::MB,
                1,
                &mut s3_dfs::RoundRobinPlacement::default(),
            )
            .expect("create file");
        let spec: Vec<(f64, Priority)> = priorities
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let prio = match p {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                };
                (i as f64 * 15.0, prio)
            })
            .collect();
        let workload = requests_with_priorities(&wordcount_normal(), file, &spec);
        let mut sched = S3Scheduler::new(S3Config {
            priority_policy: Some(PriorityPolicy {
                low_priority_width_cap: cap,
            }),
            ..S3Config::default()
        });
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::default(),
            &workload,
            &mut sched,
            &EngineConfig {
                seed,
                ..EngineConfig::default()
            },
        )
        .expect("priority runs must not stall");
        prop_assert_eq!(m.outcomes.len(), spec.len());
        let expected = spec.len() as f64 * (blocks * 64) as f64;
        prop_assert!(
            (m.logical_mb_scanned - expected).abs() < 1e-6,
            "coverage {} vs {}", m.logical_mb_scanned, expected
        );
    }

    /// FIFO responses are non-decreasing in submission order whenever the
    /// queue is continuously backlogged (arrivals inside one job length).
    #[test]
    fn fifo_backlog_responses_ramp(
        blocks in 80u64..160,
        n in 3usize..6,
        seed in any::<u64>(),
    ) {
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
        let m = run(&mut FifoScheduler::new(), blocks, 64, &arrivals, seed);
        let responses: Vec<f64> = m.outcomes.iter().map(|o| o.response().as_secs_f64()).collect();
        for w in responses.windows(2) {
            prop_assert!(w[1] > w[0], "responses must ramp: {responses:?}");
        }
    }
}
