//! Real shared-scan execution: five pattern-filtered wordcount jobs over
//! one pass of a synthetic Gutenberg-like corpus, on this machine's
//! threads.
//!
//! Demonstrates the semantic contract behind both MRShare and S³: a merged
//! scan computes *exactly* what the jobs compute independently — while
//! reading the data once instead of five times.
//!
//! ```text
//! cargo run --release -p s3-bench --example shared_scan_wordcount
//! ```

use s3_engine::{run_job, run_merged, BlockStore, ExecConfig};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::Instant;

fn main() {
    // ~64 MB of Zipfian prose split into 1 MB blocks.
    let gen = TextGen::paper_like();
    let mut rng = SimRng::seed_from_u64(42);
    println!("generating corpus...");
    let text = gen.generate(&mut rng, 64 << 20);
    let store = BlockStore::from_text(&text, 1 << 20);
    println!(
        "corpus: {:.1} MB in {} blocks, vocabulary {} words\n",
        store.total_bytes() as f64 / (1 << 20) as f64,
        store.num_blocks(),
        gen.vocab_size()
    );

    // Five different jobs — the paper's "count only the words that match a
    // user-specified pattern".
    let jobs = [
        PatternWordCount::all(),
        PatternWordCount::prefix("ba"),
        PatternWordCount::prefix("ta"),
        PatternWordCount::prefix("da"),
        PatternWordCount::prefix("ma"),
    ];
    let cfg = ExecConfig::default();

    // Independent execution: five scans.
    let t0 = Instant::now();
    let solo: Vec<_> = jobs.iter().map(|j| run_job(j, &store, &cfg)).collect();
    let solo_time = t0.elapsed();

    // Shared scan: one pass for all five.
    let refs: Vec<&PatternWordCount> = jobs.iter().collect();
    let t1 = Instant::now();
    let merged = run_merged(&refs, &store, &cfg);
    let merged_time = t1.elapsed();

    // The contract: identical outputs, record for record.
    for (i, (s, m)) in solo.iter().zip(&merged).enumerate() {
        assert_eq!(s.records, m.records, "job {i} outputs must match");
    }

    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "job", "out keys", "map records", "top count"
    );
    for (j, m) in jobs.iter().zip(&merged) {
        let top = m.records.values().max().copied().unwrap_or(0);
        println!(
            "{:<22} {:>10} {:>14} {:>14}",
            format!("{:?}", j.pattern),
            m.records.len(),
            m.stats.map_output_records,
            top
        );
    }

    let bytes_solo: u64 = solo.iter().map(|s| s.stats.bytes_scanned).sum();
    let bytes_merged = merged[0].stats.bytes_scanned;
    println!("\nindependent: {solo_time:?} ({bytes_solo} bytes scanned over 5 passes)");
    println!("shared scan: {merged_time:?} ({bytes_merged} bytes scanned in 1 pass)");
    println!(
        "speedup {:.2}x, scan volume reduced {:.1}x — outputs verified identical",
        solo_time.as_secs_f64() / merged_time.as_secs_f64(),
        bytes_solo as f64 / bytes_merged as f64
    );
}
