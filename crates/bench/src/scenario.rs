//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] describes a whole experiment — cluster shape,
//! dataset, workload, arrival pattern, schedulers, straggler injection —
//! as plain data (JSON via serde). The `s3sim` binary runs these files;
//! tests and sweeps build them programmatically.

use s3_cluster::{ClusterBuilder, ClusterTopology, NodeId, SlowdownSchedule, SpeedProfile};
use s3_core::{
    BatchPolicy, CapacityScheduler, FairScheduler, FifoScheduler, MRShareScheduler,
    PriorityPolicy, S3Config, S3Scheduler, SubJobSizing,
};
use s3_mapreduce::job::requests_with_priorities;
use s3_mapreduce::{
    simulate_traced, CostModel, EngineConfig, InvariantChecker, Priority, RunMetrics, Scheduler,
    Trace, Violation,
};
use s3_sim::SimTime;
use s3_workloads::{selection, wordcount_heavy, wordcount_normal, ArrivalPattern, Dataset};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Nodes per rack.
    pub racks: Vec<u32>,
    /// Map slots per node.
    #[serde(default = "one")]
    pub map_slots: u32,
    /// Reduce slots per node.
    #[serde(default = "one")]
    pub reduce_slots: u32,
}

fn one() -> u32 {
    1
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            racks: vec![15, 15, 10],
            map_slots: 1,
            reduce_slots: 1,
        }
    }
}

/// Input dataset shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// GB stored per node (the paper uses 4 for wordcount, 10 for
    /// selection).
    pub gb_per_node: u64,
    /// Block size in MB (32 / 64 / 128 in the paper).
    pub block_mb: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            gb_per_node: 4,
            block_mb: 64,
        }
    }
}

/// Which cost profile the jobs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ProfileSpec {
    /// Table I's normal wordcount.
    Wordcount,
    /// Section V-E's heavy wordcount.
    WordcountHeavy,
    /// Section V-G's lineitem selection.
    Selection,
}

/// Arrival pattern (mirrors [`ArrivalPattern`], serializable).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum ArrivalSpec {
    /// `n` jobs `spacing_s` apart.
    Dense {
        /// Number of jobs.
        n: usize,
        /// Spacing in seconds.
        spacing_s: f64,
    },
    /// Grouped sparse pattern.
    SparseGroups {
        /// Jobs per group.
        group_sizes: Vec<usize>,
        /// Seconds between group starts.
        group_gap_s: f64,
        /// Seconds between jobs within a group.
        spacing_s: f64,
    },
    /// Poisson arrivals.
    Poisson {
        /// Number of jobs.
        n: usize,
        /// Mean inter-arrival gap, seconds.
        mean_gap_s: f64,
        /// RNG seed for the arrival draw.
        seed: u64,
    },
    /// Explicit `(time, priority)` pairs.
    Explicit {
        /// Arrival times, seconds.
        times: Vec<f64>,
        /// Optional per-job priorities (parallel to `times` after sort).
        #[serde(default)]
        priorities: Vec<PrioritySpec>,
    },
}

/// Serializable priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "kebab-case")]
pub enum PrioritySpec {
    /// Deferrable.
    Low,
    /// Default.
    #[default]
    Normal,
    /// Latency-sensitive.
    High,
}

impl From<PrioritySpec> for Priority {
    fn from(p: PrioritySpec) -> Priority {
        match p {
            PrioritySpec::Low => Priority::Low,
            PrioritySpec::Normal => Priority::Normal,
            PrioritySpec::High => Priority::High,
        }
    }
}

/// A scheduler to run the workload under.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum SchedulerSpec {
    /// Hadoop default FIFO.
    Fifo,
    /// Fair sharing.
    Fair,
    /// Static capacity partition.
    Capacity {
        /// Number of queues.
        queues: u32,
    },
    /// MRShare batching.
    MrShare {
        /// Consecutive group sizes; empty = one batch of all jobs.
        #[serde(default)]
        groups: Vec<usize>,
        /// Label override.
        #[serde(default)]
        label: Option<String>,
    },
    /// The S³ scheduler.
    S3 {
        /// Waves per sub-job (default 5).
        #[serde(default = "five")]
        waves: u32,
        /// Enable periodic slot checking with this period (seconds).
        #[serde(default)]
        slot_check_period_s: Option<f64>,
        /// Use dynamic sub-job sizing (requires slot checking).
        #[serde(default)]
        dynamic_sizing: bool,
        /// Low-priority merge-width cap (enables the priority extension).
        #[serde(default)]
        low_priority_width_cap: Option<u32>,
    },
}

fn five() -> u32 {
    5
}

/// A transient per-node slowdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownSpec {
    /// Affected node id.
    pub node: u32,
    /// Window start, seconds.
    pub from_s: f64,
    /// Window end, seconds.
    pub until_s: f64,
    /// Speed multiplier inside the window (< 1 is slower).
    pub factor: f64,
}

/// A permanent TaskTracker death.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Node whose TaskTracker dies.
    pub node: u32,
    /// Death time, seconds.
    pub at_s: f64,
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (reports).
    pub name: String,
    /// Cluster shape.
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// Dataset shape.
    #[serde(default)]
    pub dataset: DatasetSpec,
    /// Job cost profile.
    pub profile: ProfileSpec,
    /// Arrival pattern.
    pub arrivals: ArrivalSpec,
    /// Schedulers to compare.
    pub schedulers: Vec<SchedulerSpec>,
    /// Task-noise seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Straggler injection.
    #[serde(default)]
    pub slowdowns: Vec<SlowdownSpec>,
    /// TaskTracker deaths.
    #[serde(default)]
    pub failures: Vec<FailureSpec>,
}

fn default_seed() -> u64 {
    crate::experiments::DEFAULT_SEED
}

/// Scenario validation / execution errors.
#[derive(Debug)]
pub enum ScenarioError {
    /// The spec is internally inconsistent.
    Invalid(String),
    /// A simulation failed.
    Sim(s3_mapreduce::SimError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Result of one scheduler within a scenario.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The run's metrics.
    pub metrics: RunMetrics,
    /// Full execution trace.
    pub trace: Trace,
    /// Trace-invariant violations found by replaying the trace through
    /// the [`InvariantChecker`] — always empty for a correct scheduler.
    pub violations: Vec<Violation>,
}

impl ScenarioSpec {
    /// A ready-to-edit template: the paper's sparse Figure 4(a) setup.
    pub fn template() -> Self {
        ScenarioSpec {
            name: "fig4a-sparse-wordcount".into(),
            cluster: ClusterSpec::default(),
            dataset: DatasetSpec::default(),
            profile: ProfileSpec::Wordcount,
            arrivals: ArrivalSpec::SparseGroups {
                group_sizes: vec![3, 3, 4],
                group_gap_s: 300.0,
                spacing_s: 30.0,
            },
            schedulers: vec![
                SchedulerSpec::S3 {
                    waves: 5,
                    slot_check_period_s: None,
                    dynamic_sizing: false,
                    low_priority_width_cap: None,
                },
                SchedulerSpec::Fifo,
                SchedulerSpec::MrShare {
                    groups: vec![],
                    label: Some("MRS1".into()),
                },
            ],
            seed: default_seed(),
            slowdowns: vec![],
            failures: vec![],
        }
    }

    fn arrivals_with_priorities(&self) -> Result<Vec<(f64, Priority)>, ScenarioError> {
        Ok(match &self.arrivals {
            ArrivalSpec::Dense { n, spacing_s } => ArrivalPattern::Dense {
                n: *n,
                spacing_s: *spacing_s,
            }
            .times()
            .into_iter()
            .map(|t| (t, Priority::Normal))
            .collect(),
            ArrivalSpec::SparseGroups {
                group_sizes,
                group_gap_s,
                spacing_s,
            } => ArrivalPattern::SparseGroups {
                group_sizes: group_sizes.clone(),
                group_gap_s: *group_gap_s,
                spacing_s: *spacing_s,
            }
            .times()
            .into_iter()
            .map(|t| (t, Priority::Normal))
            .collect(),
            ArrivalSpec::Poisson { n, mean_gap_s, seed } => ArrivalPattern::Poisson {
                n: *n,
                mean_gap_s: *mean_gap_s,
                seed: *seed,
            }
            .times()
            .into_iter()
            .map(|t| (t, Priority::Normal))
            .collect(),
            ArrivalSpec::Explicit { times, priorities } => {
                if !priorities.is_empty() && priorities.len() != times.len() {
                    return Err(ScenarioError::Invalid(format!(
                        "{} priorities for {} arrival times",
                        priorities.len(),
                        times.len()
                    )));
                }
                let mut pairs: Vec<(f64, Priority)> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        let p = priorities.get(i).copied().unwrap_or_default();
                        (t, p.into())
                    })
                    .collect();
                pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
                pairs
            }
        })
    }

    fn build_scheduler(spec: &SchedulerSpec, n_jobs: usize) -> Box<dyn Scheduler> {
        match spec {
            SchedulerSpec::Fifo => Box::new(FifoScheduler::new()),
            SchedulerSpec::Fair => Box::new(FairScheduler::new()),
            SchedulerSpec::Capacity { queues } => Box::new(CapacityScheduler::new(*queues)),
            SchedulerSpec::MrShare { groups, label } => {
                let policy = if groups.is_empty() {
                    BatchPolicy::SingleBatch {
                        expected_jobs: n_jobs,
                    }
                } else {
                    BatchPolicy::FixedGroups(groups.clone())
                };
                let name = label.clone().unwrap_or_else(|| "MRShare".into());
                Box::new(MRShareScheduler::new(policy, name))
            }
            SchedulerSpec::S3 {
                waves,
                slot_check_period_s,
                dynamic_sizing,
                low_priority_width_cap,
            } => {
                let sizing = if *dynamic_sizing {
                    SubJobSizing::Dynamic { waves: *waves }
                } else {
                    SubJobSizing::Waves(*waves)
                };
                Box::new(S3Scheduler::new(S3Config {
                    sizing,
                    slot_check_period_s: *slot_check_period_s,
                    priority_policy: low_priority_width_cap.map(|cap| PriorityPolicy {
                        low_priority_width_cap: cap,
                    }),
                    ..S3Config::default()
                }))
            }
        }
    }

    /// Build the world and run every scheduler; returns one
    /// [`ScenarioRun`] per scheduler, in spec order.
    pub fn run(&self) -> Result<Vec<ScenarioRun>, ScenarioError> {
        if self.schedulers.is_empty() {
            return Err(ScenarioError::Invalid("no schedulers listed".into()));
        }
        if self.cluster.racks.is_empty() || self.cluster.racks.contains(&0) {
            return Err(ScenarioError::Invalid("bad rack layout".into()));
        }
        if self.dataset.gb_per_node == 0 || self.dataset.block_mb == 0 {
            return Err(ScenarioError::Invalid("bad dataset sizes".into()));
        }

        let mut builder = ClusterBuilder::new()
            .map_slots(self.cluster.map_slots)
            .reduce_slots(self.cluster.reduce_slots);
        for &r in &self.cluster.racks {
            builder = builder.rack(r);
        }
        let cluster: ClusterTopology = builder.build();

        let dataset: Dataset = s3_workloads::per_node_file(
            &cluster,
            "scenario-input",
            self.dataset.gb_per_node,
            self.dataset.block_mb,
        );
        let profile = match self.profile {
            ProfileSpec::Wordcount => wordcount_normal(),
            ProfileSpec::WordcountHeavy => wordcount_heavy(),
            ProfileSpec::Selection => selection(),
        };
        let pairs = self.arrivals_with_priorities()?;
        let workload = requests_with_priorities(&profile, dataset.file, &pairs);

        let mut slowdowns = SlowdownSchedule::none();
        for s in &self.slowdowns {
            if s.factor <= 0.0 || s.until_s <= s.from_s {
                return Err(ScenarioError::Invalid(format!(
                    "bad slowdown window on node {}",
                    s.node
                )));
            }
            slowdowns.set(
                NodeId(s.node),
                SpeedProfile::slow_between(
                    SimTime::from_secs_f64(s.from_s),
                    SimTime::from_secs_f64(s.until_s),
                    s.factor,
                ),
            );
        }

        let mut failures = s3_cluster::FailureSchedule::none();
        for f in &self.failures {
            failures = failures.kill(NodeId(f.node), SimTime::from_secs_f64(f.at_s));
        }

        let mut out = Vec::with_capacity(self.schedulers.len());
        for spec in &self.schedulers {
            let mut scheduler = Self::build_scheduler(spec, workload.len());
            let (metrics, trace) = simulate_traced(
                &cluster,
                &slowdowns,
                &dataset.dfs,
                &CostModel::default(),
                &workload,
                scheduler.as_mut(),
                &EngineConfig {
                    seed: self.seed,
                    failures: failures.clone(),
                    ..EngineConfig::default()
                },
                Some(Trace::new()),
            )
            .map_err(ScenarioError::Sim)?;
            let violations = InvariantChecker {
                cluster: &cluster,
                dfs: &dataset.dfs,
                workload: &workload,
                failures: &failures,
                speculation: false,
            }
            .check(&trace);
            out.push(ScenarioRun {
                metrics,
                trace,
                violations,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            cluster: ClusterSpec {
                racks: vec![4, 4],
                map_slots: 1,
                reduce_slots: 1,
            },
            dataset: DatasetSpec {
                gb_per_node: 1,
                block_mb: 128,
            },
            profile: ProfileSpec::Wordcount,
            arrivals: ArrivalSpec::Dense { n: 2, spacing_s: 10.0 },
            schedulers: vec![
                SchedulerSpec::S3 {
                    waves: 2,
                    slot_check_period_s: None,
                    dynamic_sizing: false,
                    low_priority_width_cap: None,
                },
                SchedulerSpec::Fifo,
            ],
            seed: 1,
            slowdowns: vec![],
            failures: vec![],
        }
    }

    #[test]
    fn template_roundtrips_through_json() {
        let spec = ScenarioSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.schedulers.len(), spec.schedulers.len());
    }

    #[test]
    fn small_scenario_runs_all_schedulers() {
        let runs = small().run().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].metrics.scheduler, "S3");
        assert_eq!(runs[1].metrics.scheduler, "FIFO");
        for r in &runs {
            assert_eq!(r.metrics.outcomes.len(), 2);
            assert!(!r.trace.events().is_empty());
            assert!(r.violations.is_empty(), "{:?}", r.violations);
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = small();
        s.schedulers.clear();
        assert!(matches!(s.run(), Err(ScenarioError::Invalid(_))));

        let mut s = small();
        s.cluster.racks = vec![];
        assert!(matches!(s.run(), Err(ScenarioError::Invalid(_))));

        let mut s = small();
        s.arrivals = ArrivalSpec::Explicit {
            times: vec![0.0, 1.0],
            priorities: vec![PrioritySpec::High],
        };
        assert!(matches!(s.run(), Err(ScenarioError::Invalid(_))));

        let mut s = small();
        s.slowdowns = vec![SlowdownSpec {
            node: 0,
            from_s: 10.0,
            until_s: 5.0,
            factor: 0.5,
        }];
        assert!(matches!(s.run(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn every_scheduler_spec_variant_builds_and_runs() {
        let mut s = small();
        s.schedulers = vec![
            SchedulerSpec::Fifo,
            SchedulerSpec::Fair,
            SchedulerSpec::Capacity { queues: 2 },
            SchedulerSpec::MrShare {
                groups: vec![],
                label: None,
            },
            SchedulerSpec::MrShare {
                groups: vec![1, 1],
                label: Some("MRS2".into()),
            },
            SchedulerSpec::S3 {
                waves: 2,
                slot_check_period_s: Some(5.0),
                dynamic_sizing: true,
                low_priority_width_cap: None,
            },
        ];
        let runs = s.run().unwrap();
        assert_eq!(runs.len(), 6);
        let names: Vec<&str> = runs.iter().map(|r| r.metrics.scheduler.as_str()).collect();
        assert_eq!(names, ["FIFO", "Fair", "Capacity2", "MRShare", "MRS2", "S3"]);
        for r in &runs {
            assert_eq!(r.metrics.outcomes.len(), 2, "{}", r.metrics.scheduler);
        }
    }

    #[test]
    fn failure_injection_flows_through_scenarios() {
        let mut s = small();
        s.failures = vec![FailureSpec {
            node: 1,
            at_s: 5.0,
        }];
        let runs = s.run().unwrap();
        for r in &runs {
            assert_eq!(r.metrics.outcomes.len(), 2, "{}", r.metrics.scheduler);
        }
        // At least one scheduler lost an attempt to the death (node 1 dies
        // 5 s in, while first-wave maps are running).
        assert!(
            runs.iter().any(|r| r.metrics.tasks_failed > 0),
            "the death at t=5 should cost somebody an attempt"
        );
    }

    #[test]
    fn explicit_priorities_flow_through() {
        let mut s = small();
        s.arrivals = ArrivalSpec::Explicit {
            times: vec![0.0, 5.0],
            priorities: vec![PrioritySpec::High, PrioritySpec::Low],
        };
        s.schedulers = vec![SchedulerSpec::S3 {
            waves: 2,
            slot_check_period_s: None,
            dynamic_sizing: false,
            low_priority_width_cap: Some(1),
        }];
        let runs = s.run().unwrap();
        assert_eq!(runs[0].metrics.outcomes.len(), 2);
    }

    #[test]
    fn slowdown_injection_slows_the_run() {
        let base = small().run().unwrap()[1].metrics.tet();
        let mut s = small();
        // Slow half the nodes drastically for a long window.
        s.slowdowns = (0..4)
            .map(|n| SlowdownSpec {
                node: n,
                from_s: 0.0,
                until_s: 10_000.0,
                factor: 0.2,
            })
            .collect();
        let slowed = s.run().unwrap()[1].metrics.tet();
        assert!(slowed > base, "{slowed} vs {base}");
    }
}
