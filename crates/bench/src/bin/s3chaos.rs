//! s3chaos — deterministic fault-injection fuzzer with trace-level
//! invariant checking.
//!
//! For every seed, a [`ChaosPlan`] of node deaths, persistent stragglers
//! and transient slot slowdowns is generated, a seeded workload (1–3
//! wordcount jobs with staggered arrivals) is run under every scheduler
//! (FIFO, Fair, Capacity, MRShare, S³), and the recorded trace is replayed
//! through the [`InvariantChecker`]:
//!
//! - every block of every job's file is scanned exactly once per job;
//! - no task is assigned to a dead node or an excluded slot;
//! - batches only merge sub-jobs targeting the same segment;
//! - per-node slot capacities are respected;
//! - for single-job seeds, TET/ART never improve by more than one
//!   heartbeat plus 3% of the clean runtime when faults are added
//!   (monotonicity — sharing effects can legitimately invert this with
//!   overlapping jobs, so multi-job seeds are exempt, and greedy
//!   heartbeat-quantized assignment permits small improvements: a
//!   Graham-style scheduling anomaly, observed up to ~2% on Capacity).
//!
//! Everything is deterministic: `--seed <n>` re-runs one scenario and
//! proves the trace reproduces byte-for-byte; a failing seed's fault plan
//! is automatically minimized by dropping faults while the failure
//! persists.
//!
//! `s3chaos engine` applies the same discipline to the *real* engine: for
//! every seed a [`FaultPlan`](s3_engine::FaultPlan) of stragglers, task
//! drops, map/reduce panics and coordinator death is injected into a live
//! [`SharedScanServer`](s3_engine::SharedScanServer) running seeded
//! wordcount jobs, and the run is checked against an exact oracle —
//! panicked jobs quarantine, killed-coordinator runs abort every
//! unresolved handle, every surviving job's output is byte-identical to
//! running it solo — plus the engine trace invariants
//! ([`check_engine_events`](s3_mapreduce::check_engine_events)) and a
//! run-twice replay-identity proof.
//!
//! `s3chaos engine --adaptive` runs the engine fuzzer with adaptive
//! segment sizing on and every plan guaranteed at least one straggler, so
//! segment boundaries actually move mid-scan; plans keep only the
//! outcome-neutral faults (stragglers, drops, reduce faults) because
//! iteration-indexed map panics and coordinator kills land on different
//! blocks once segment sizes drift. Each seed must additionally emit at
//! least one `segment_resized` event, and every resize must stay inside
//! the configured clamp.
//!
//! `s3chaos engine --assist` hammers the work-assisting claim protocol:
//! every plan is guaranteed at least one straggler (so segments have a
//! real uncommitted tail to assist) alongside the usual map panics and
//! drops, blocks are big enough that every virtual worker actually
//! contends for claims, and each seed must additionally show at least one
//! assisted block in `engine.blocks_assisted`, with the assist/win/attempt
//! counters mutually consistent. The exactly-once claim invariant itself
//! rides on `check_engine_events` in every engine mode.
//!
//! `s3chaos service` fuzzes the multi-tenant
//! [`ScanService`](s3_engine::ScanService): seeded bursts of jobs (mixed
//! QoS classes, tight deadlines, two tenants) arrive faster than the
//! service's small admission bounds can drain, while each tenant's server
//! runs under its own seeded worker fault plan. Every seed must keep the
//! accounting identity (`submitted == completed + quarantined +
//! rejected + expired + aborted`, cross-checked against the client's own
//! tally),
//! resolve every handle within a bound, return surviving outputs
//! byte-identical to solo runs, and pass the `svc_*` admission-queue and
//! per-tenant engine trace invariants.
//!
//! ```text
//! s3chaos [--seeds N] [--seed K] [--verbose]
//! s3chaos engine [--adaptive | --assist] [--seeds N] [--seed K] [--verbose]
//! s3chaos service [--seeds N] [--seed K] [--verbose]
//! ```

use s3_cluster::{ChaosConfig, ChaosPlan, ClusterTopology, NodeId};
use s3_core::{
    CapacityScheduler, FairScheduler, FifoScheduler, MRShareScheduler, S3Config, S3Scheduler,
    SubJobSizing,
};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate_traced, CostModel, EngineConfig, InvariantChecker,
    JobRequest, RunMetrics, Scheduler, Trace,
};
use s3_sim::SimRng;
use s3_workloads::{per_node_file, wordcount_normal, Dataset};
use std::process::ExitCode;

const SCHEDULERS: [&str; 5] = ["FIFO", "Fair", "Capacity", "MRShare", "S3"];
/// Salt separating the workload stream from the fault-plan stream so the
/// two never correlate.
const WORKLOAD_SALT: u64 = 0x0053_33AB_1E0F_00D5;

fn usage() -> ! {
    eprintln!(
        "s3chaos: seeded chaos fuzzer over all schedulers\n\n\
         USAGE:\n  s3chaos [--seeds N]     fuzz seeds 0..N (default 200)\n  \
         s3chaos --seed K        replay one seed in detail (plan, metrics,\n  \
         \x20                       digests, byte-for-byte reproduction proof)\n  \
         s3chaos --verbose       one line per seed during a sweep\n  \
         s3chaos engine [...]    same flags, but fuzz the real shared-scan\n  \
         \x20                       engine (default 100 seeds)\n  \
         s3chaos engine --adaptive  engine fuzzing with adaptive segment\n  \
         \x20                       sizing on (outcome-neutral faults only)\n  \
         s3chaos engine --assist    engine fuzzing with a guaranteed\n  \
         \x20                       straggler per plan and mandatory\n  \
         \x20                       work-assist accounting checks\n  \
         s3chaos engine --weighted  engine fuzzing with skew-aware\n  \
         \x20                       weighted reduce partitioning on\n  \
         s3chaos service [...]   fuzz the multi-tenant ScanService under\n  \
         \x20                       seeded overload bursts, QoS classes,\n  \
         \x20                       deadlines, and per-tenant worker faults\n  \
         \x20                       (default 100 seeds)"
    );
    std::process::exit(2)
}

struct Args {
    engine: bool,
    service: bool,
    adaptive: bool,
    assist: bool,
    weighted: bool,
    seeds: u64,
    seed: Option<u64>,
    verbose: bool,
}

fn parse_args() -> Args {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let engine = raw.first().map(String::as_str) == Some("engine");
    let service = raw.first().map(String::as_str) == Some("service");
    let mut args = Args {
        engine,
        service,
        adaptive: false,
        assist: false,
        weighted: false,
        seeds: if engine || service { 100 } else { 200 },
        seed: None,
        verbose: false,
    };
    let mut it = raw.into_iter().skip(usize::from(engine || service));
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                args.seeds = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => {
                args.seed =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--adaptive" => args.adaptive = true,
            "--assist" => args.assist = true,
            "--weighted" => args.weighted = true,
            "--verbose" | "-v" => args.verbose = true,
            _ => usage(),
        }
    }
    if (args.adaptive || args.assist || args.weighted) && !args.engine {
        usage()
    }
    if args.adaptive && args.assist {
        // The assist oracle needs fixed segment boundaries; pick one mode.
        usage()
    }
    args
}

fn make_scheduler(name: &str, n_jobs: usize) -> Box<dyn Scheduler> {
    match name {
        "FIFO" => Box::new(FifoScheduler::new()),
        "Fair" => Box::new(FairScheduler::new()),
        "Capacity" => Box::new(CapacityScheduler::new(4)),
        "MRShare" => Box::new(MRShareScheduler::mrs1(n_jobs)),
        // Slot checking + dynamic sizing on, so chaos exercises the
        // exclusion / re-admission / sub-job adjustment paths.
        "S3" => Box::new(S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Dynamic { waves: 5 },
            slot_check_period_s: Some(5.0),
            ..S3Config::default()
        })),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Seeded workload: 1–3 wordcount jobs with arrivals in the first 45 s.
fn workload_for(seed: u64, dataset: &Dataset) -> Vec<JobRequest> {
    let mut rng = SimRng::seed_from_u64(seed ^ WORKLOAD_SALT);
    let n = 1 + rng.index(3);
    let mut arrivals: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 45.0)).collect();
    arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    requests_from_arrivals(&wordcount_normal(), dataset.file, &arrivals)
}

/// FNV-1a over the serialized trace: the reproducibility fingerprint.
fn trace_digest(serialized: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in serialized.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct RunOutput {
    metrics: RunMetrics,
    serialized_trace: String,
    violations: Vec<String>,
}

/// One (scheduler, plan) execution plus invariant replay.
fn run_checked(
    name: &str,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    workload: &[JobRequest],
    plan: &ChaosPlan,
    engine_seed: u64,
) -> Result<RunOutput, String> {
    let mut scheduler = make_scheduler(name, workload.len());
    let failures = plan.failures();
    let config = EngineConfig {
        seed: engine_seed,
        failures: failures.clone(),
        ..EngineConfig::default()
    };
    let (metrics, trace) = simulate_traced(
        cluster,
        &plan.slowdowns(),
        &dataset.dfs,
        &CostModel::deterministic(),
        workload,
        scheduler.as_mut(),
        &config,
        Some(Trace::new()),
    )
    .map_err(|e| format!("{name}: simulation failed: {e}"))?;

    let checker = InvariantChecker {
        cluster,
        dfs: &dataset.dfs,
        workload,
        failures: &failures,
        speculation: false,
    };
    let violations = checker
        .check(&trace)
        .into_iter()
        .map(|v| format!("{name}: {v}"))
        .collect();
    let serialized_trace =
        serde_json::to_string(&trace).map_err(|e| format!("{name}: trace serialize: {e}"))?;
    Ok(RunOutput {
        metrics,
        serialized_trace,
        violations,
    })
}

/// All failures of one seed across every scheduler (empty = clean).
fn seed_failures(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
) -> Vec<String> {
    let workload = workload_for(seed, dataset);
    let mut failures = Vec::new();
    for name in SCHEDULERS {
        match run_checked(name, cluster, dataset, &workload, plan, seed) {
            Ok(out) => {
                failures.extend(out.violations);
                // TET/ART monotonicity: a lone job can only get slower
                // when capacity is removed (deterministic cost model).
                // Greedy heartbeat-driven assignment is subject to
                // Graham-style scheduling anomalies: a fault that shifts
                // one assignment decision can re-pack the remaining tasks
                // slightly better, legitimately improving the schedule by
                // up to about one task length (observed on the Capacity
                // scheduler, whose per-queue packing is the most brittle).
                // Allow one heartbeat plus 3% relative slack; anything
                // larger is a real violation.
                if workload.len() == 1 && !plan.is_empty() {
                    if let Ok(clean) = run_checked(
                        name,
                        cluster,
                        dataset,
                        &workload,
                        &ChaosPlan::default(),
                        seed,
                    ) {
                        let slack = |clean_s: f64| {
                            CostModel::deterministic().heartbeat_s + 0.03 * clean_s
                        };
                        let (t_f, t_c) = (
                            out.metrics.tet().as_secs_f64(),
                            clean.metrics.tet().as_secs_f64(),
                        );
                        if t_f + slack(t_c) < t_c {
                            failures.push(format!(
                                "{name}: [tet-monotonicity] faulted TET {t_f:.3}s beats clean {t_c:.3}s"
                            ));
                        }
                        let (a_f, a_c) = (
                            out.metrics.art().as_secs_f64(),
                            clean.metrics.art().as_secs_f64(),
                        );
                        if a_f + slack(a_c) < a_c {
                            failures.push(format!(
                                "{name}: [art-monotonicity] faulted ART {a_f:.3}s beats clean {a_c:.3}s"
                            ));
                        }
                    }
                }
            }
            Err(e) => failures.push(e),
        }
    }
    // Reproducibility: the same seed must yield a byte-identical S³ trace.
    let workload2 = workload_for(seed, dataset);
    let digest = |w: &[JobRequest]| {
        run_checked("S3", cluster, dataset, w, plan, seed).map(|o| o.serialized_trace)
    };
    match (digest(&workload), digest(&workload2)) {
        (Ok(a), Ok(b)) if a != b => {
            failures.push("S3: [determinism] re-run produced a different trace".into())
        }
        _ => {}
    }
    failures
}

/// Shrink a failing plan: repeatedly drop any fault whose removal keeps
/// the seed failing, until no single removal does.
fn minimize_plan(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
) -> ChaosPlan {
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.len() {
            let candidate = current.without_fault(i);
            if !seed_failures(seed, cluster, dataset, &candidate).is_empty() {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

fn report_failure(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
    failures: &[String],
) {
    println!("seed {seed}: FAILED");
    println!(" fault plan:\n{}", plan.describe());
    for f in failures {
        println!("  {f}");
    }
    let minimal = minimize_plan(seed, cluster, dataset, plan);
    if minimal.len() < plan.len() {
        println!(
            " minimized to {} fault(s):\n{}",
            minimal.len(),
            minimal.describe()
        );
    } else {
        println!(" plan is already minimal");
    }
    println!(" replay with: s3chaos --seed {seed}");
}

fn replay_one(seed: u64, cluster: &ClusterTopology, dataset: &Dataset, plan: &ChaosPlan) -> bool {
    let workload = workload_for(seed, dataset);
    println!(
        "seed {seed}: {} job(s), fault plan:\n{}",
        workload.len(),
        plan.describe()
    );
    let mut ok = true;
    for name in SCHEDULERS {
        match run_checked(name, cluster, dataset, &workload, plan, seed) {
            Ok(first) => {
                let digest = trace_digest(&first.serialized_trace);
                let status = if first.violations.is_empty() {
                    "ok".to_string()
                } else {
                    ok = false;
                    format!("{} violation(s)", first.violations.len())
                };
                // Byte-for-byte reproduction proof: run again, compare.
                let repro = match run_checked(name, cluster, dataset, &workload, plan, seed) {
                    Ok(second) if second.serialized_trace == first.serialized_trace => {
                        "byte-identical"
                    }
                    Ok(_) => {
                        ok = false;
                        "MISMATCH"
                    }
                    Err(_) => {
                        ok = false;
                        "re-run failed"
                    }
                };
                println!(
                    "  {:<8} tet {:>8.2}s  art {:>8.2}s  failed-attempts {:>3}  \
                     trace {:>7} events  digest {digest:#018x} ({repro})  {status}",
                    first.metrics.scheduler,
                    first.metrics.tet().as_secs_f64(),
                    first.metrics.art().as_secs_f64(),
                    first.metrics.tasks_failed,
                    first.serialized_trace.matches("\"kind\"").count(),
                );
                for v in &first.violations {
                    println!("    {v}");
                }
            }
            Err(e) => {
                ok = false;
                println!("  {e}");
            }
        }
    }
    ok
}

/// Fuzzer over the real shared-scan engine: seeded jobs + a seeded
/// [`s3_engine::FaultPlan`] against a live server, checked against an
/// exact per-job outcome oracle, the engine trace invariants, the metrics
/// accounting identity, and a run-twice replay proof.
mod engine_fuzz {
    use s3_engine::{
        run_job, AdaptiveConfig, BlockStore, EngineChaosConfig, EngineFault, ExecConfig,
        FaultPlan, FtConfig, Obs, PartitionMode, ServerConfig, SharedScanServer,
    };
    use s3_mapreduce::check_engine_events;
    use s3_sim::SimRng;
    use s3_workloads::jobs::PatternWordCount;
    use s3_workloads::text::TextGen;
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    const BLOCKS_PER_SEGMENT: usize = 4;
    /// Clamp window for `--adaptive` runs; every `segment_resized` event
    /// must land inside it.
    const ADAPTIVE_MIN_BPS: usize = 1;
    const ADAPTIVE_MAX_BPS: usize = 8;
    /// Per-seed jobs draw their prefix filters from this pool.
    const JOB_PREFIXES: [&str; 8] = ["", "a", "ba", "d", "ga", "ma", "s", "ta"];
    /// Salt separating the job-mix stream from the fault-plan stream.
    const JOB_SALT: u64 = 0x00E6_61FE_C0DE_F00D;
    /// A handle not resolving within this bound is reported as a hang.
    const WAIT_BOUND: Duration = Duration::from_secs(30);

    /// The immutable world every seed runs against: one corpus, one
    /// chaos envelope, and per-prefix solo reference outputs.
    pub struct World {
        store: BlockStore,
        cfg: EngineChaosConfig,
        num_segments: u64,
        adaptive: bool,
        assist: bool,
        weighted: bool,
        solo: BTreeMap<&'static str, BTreeMap<String, i64>>,
    }

    pub fn build_world(adaptive: bool, assist: bool, weighted: bool) -> World {
        let text = TextGen::paper_like().generate(&mut SimRng::seed_from_u64(7), 96 << 10);
        // Assist mode scans coarser blocks: with 2 KiB blocks one eager
        // worker can drain a whole segment's claim cursor before its
        // rivals' pool tasks even wake, so the guaranteed straggler might
        // never hold a claim and the mandatory assisted-block check would
        // be judging thread-dispatch luck. At 8 KiB every virtual worker
        // genuinely contends for claims.
        let store = BlockStore::from_text(&text, if assist { 8192 } else { 2048 });
        let num_segments = store.num_blocks().div_ceil(BLOCKS_PER_SEGMENT) as u64;
        // Fault times are drawn from one revolution, so with gang
        // admission every generated map panic and coordinator kill
        // actually lands — the oracle below is exact, never vacuous.
        let cfg = if adaptive {
            // Adaptive sizing moves how many blocks one iteration covers,
            // which shifts where iteration-indexed faults land. That is
            // harmless for outcome-neutral faults (stragglers, drops,
            // reduce faults — reduce faults key on job, not iteration)
            // but would make the map-panic / coordinator-kill oracle
            // guesswork, so those are zeroed. One straggler minimum
            // guarantees every plan perturbs the measured scan cost.
            EngineChaosConfig {
                horizon_iters: num_segments,
                min_slow: 1,
                max_map_panics: 0,
                coordinator_kill_prob: 0.0,
                ..EngineChaosConfig::default()
            }
        } else if assist {
            // One straggler minimum guarantees a real uncommitted tail to
            // assist in every plan; map panics and drops stay in (the
            // protocol must hold mid-quarantine and mid-recovery). The
            // coordinator kill is zeroed so the mandatory assisted-block
            // check below can never be starved by an early abort.
            EngineChaosConfig {
                horizon_iters: num_segments,
                min_slow: 1,
                coordinator_kill_prob: 0.0,
                ..EngineChaosConfig::default()
            }
        } else {
            EngineChaosConfig {
                horizon_iters: num_segments,
                ..EngineChaosConfig::default()
            }
        };
        let solo = JOB_PREFIXES
            .iter()
            .map(|p| {
                let out = run_job(
                    &PatternWordCount::prefix(*p),
                    &store,
                    &ExecConfig {
                        num_threads: 1,
                        num_reducers: 4,
                    ..ExecConfig::default()
                    },
                );
                (*p, out.records)
            })
            .collect();
        World {
            store,
            cfg,
            num_segments,
            adaptive,
            assist,
            weighted,
            solo,
        }
    }

    pub fn plan_for(world: &World, seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, &world.cfg)
    }

    fn prefixes_for(world: &World, seed: u64) -> Vec<&'static str> {
        let mut rng = SimRng::seed_from_u64(seed ^ JOB_SALT);
        (0..world.cfg.num_jobs)
            .map(|_| JOB_PREFIXES[rng.index(JOB_PREFIXES.len())])
            .collect()
    }

    /// What the plan dictates for each job, derived exactly: with gang
    /// admission at iteration 0, job `j`'s `segments_done` equals the
    /// global iteration, a `PanicMap { after_segments: s }` fires during
    /// iteration `s`, and a `KillCoordinator { at_iter: k }` fires at the
    /// top of iteration `k` — so the panic lands iff `s < k`.
    fn expected_outcomes(world: &World, plan: &FaultPlan) -> Vec<&'static str> {
        let kill = plan
            .faults
            .iter()
            .find_map(|f| match f {
                EngineFault::KillCoordinator { at_iter } => Some(*at_iter),
                _ => None,
            })
            .filter(|k| *k < world.num_segments);
        (0..world.cfg.num_jobs)
            .map(|j| {
                let map_panic = plan.faults.iter().find_map(|f| match f {
                    EngineFault::PanicMap {
                        job,
                        after_segments,
                    } if *job == j => Some(*after_segments),
                    _ => None,
                });
                let reduce_panic = plan.faults.iter().any(|f| {
                    matches!(f, EngineFault::PanicReduce { job, .. } if *job == j)
                });
                match (map_panic, kill) {
                    (Some(s), Some(k)) if s < k => "panicked",
                    (Some(_), None) => "panicked",
                    (_, Some(_)) => "aborted",
                    (None, None) if reduce_panic => "panicked",
                    (None, None) => "ok",
                }
            })
            .collect()
    }

    /// One engine run under `plan`: per-job outcome summaries (the
    /// replay fingerprint), every oracle / invariant / accounting
    /// failure found, and the run's assisted-block count.
    pub fn run_checked(
        world: &World,
        seed: u64,
        plan: &FaultPlan,
    ) -> (Vec<String>, Vec<String>, u64) {
        let prefixes = prefixes_for(world, seed);
        let expected = expected_outcomes(world, plan);
        let mut violations = Vec::new();

        let mut cfg = ServerConfig::new(BLOCKS_PER_SEGMENT, world.cfg.num_workers);
        cfg.obs = Obs::new();
        if world.weighted {
            cfg.partition = PartitionMode::weighted();
        }
        cfg.ft = FtConfig {
            deadline_floor: Duration::from_millis(3),
            ..FtConfig::resilient()
        };
        if world.adaptive {
            cfg.adaptive = AdaptiveConfig {
                enabled: true,
                target_cadence: Duration::from_millis(2),
                min_blocks_per_segment: ADAPTIVE_MIN_BPS,
                max_blocks_per_segment: ADAPTIVE_MAX_BPS,
            };
        }
        cfg.faults = Some(plan.clone());
        let obs = cfg.obs.clone();
        let server = SharedScanServer::with_config(world.store.clone(), cfg);
        let handles = server.submit_all(
            prefixes
                .iter()
                .map(|p| PatternWordCount::prefix(*p))
                .collect(),
        );

        // Bounded resolution: the fuzzer must detect a hang, not inherit
        // it. On timeout the server is leaked rather than dropped (drop
        // would block on the same hang).
        let deadline = Instant::now() + WAIT_BOUND;
        let mut summaries = Vec::with_capacity(handles.len());
        for (i, h) in handles.into_iter().enumerate() {
            let result = loop {
                if let Some(r) = h.try_take() {
                    break Some(r);
                }
                if Instant::now() >= deadline {
                    break None;
                }
                std::thread::sleep(Duration::from_micros(500));
            };
            let Some(result) = result else {
                violations.push(format!("job {i}: handle unresolved after {WAIT_BOUND:?}"));
                std::mem::forget(server);
                return (summaries, violations, 0);
            };
            let (summary, outcome) = match &result {
                Ok(out) => {
                    let json = serde_json::to_string(&out.records).expect("serialize records");
                    if out.records != world.solo[prefixes[i]] {
                        violations.push(format!(
                            "job {i} (prefix {:?}): output differs from solo run",
                            prefixes[i]
                        ));
                    }
                    (format!("ok:{json}"), "ok")
                }
                Err(s3_engine::JobError::Panicked(msg)) => {
                    (format!("panicked:{msg}"), "panicked")
                }
                Err(s3_engine::JobError::Aborted) => ("aborted".to_string(), "aborted"),
                // Service-layer errors can't come out of a bare server.
                Err(e @ s3_engine::JobError::Rejected { .. })
                | Err(e @ s3_engine::JobError::DeadlineExpired) => {
                    violations.push(format!("job {i}: service-layer error {e} from a bare server"));
                    (format!("unexpected:{e}"), "unexpected")
                }
            };
            if outcome != expected[i] {
                violations.push(format!(
                    "job {i} (prefix {:?}): {outcome}, oracle says {}",
                    prefixes[i], expected[i]
                ));
            }
            summaries.push(summary);
        }
        server.shutdown();

        // Engine trace invariants: unique terminal per job, single
        // admission, paired exclusion windows.
        let core = obs.core().expect("observed");
        let events = core.tracer.drain();
        if core.tracer.dropped() > 0 {
            violations.push(format!("trace dropped {} events", core.tracer.dropped()));
        }
        violations.extend(check_engine_events(&events).into_iter().map(|v| v.to_string()));

        // Adaptive mode: the guaranteed straggler must move the segment
        // size at least once, and every resize must land in the clamp.
        if world.adaptive {
            let resizes: Vec<_> = events.iter().filter(|e| e.name == "segment_resized").collect();
            if resizes.is_empty() {
                violations.push(
                    "adaptive: no segment_resized event despite a guaranteed straggler".into(),
                );
            }
            for ev in resizes {
                let new = ev.ids.seg as usize;
                if !(ADAPTIVE_MIN_BPS..=ADAPTIVE_MAX_BPS).contains(&new) {
                    violations.push(format!(
                        "adaptive: resize to {new} escapes the clamp \
                         [{ADAPTIVE_MIN_BPS}, {ADAPTIVE_MAX_BPS}]"
                    ));
                }
            }
        }

        // Metrics accounting: every submitted job is in exactly one
        // terminal bucket, and the buckets match the oracle.
        let snap = obs.snapshot().expect("observed");
        let (sub, done, quar, abort) = (
            snap.counter("engine.jobs_submitted"),
            snap.counter("engine.jobs_completed"),
            snap.counter("engine.jobs_quarantined"),
            snap.counter("engine.jobs_aborted"),
        );
        if sub != done + quar + abort {
            violations.push(format!(
                "metrics: {sub} submitted != {done} completed + {quar} quarantined + {abort} aborted"
            ));
        }
        let count = |what: &str| expected.iter().filter(|o| **o == what).count() as u64;
        if (done, quar, abort) != (count("ok"), count("panicked"), count("aborted")) {
            violations.push(format!(
                "metrics: (done, quarantined, aborted) = ({done}, {quar}, {abort}), oracle says \
                 ({}, {}, {})",
                count("ok"),
                count("panicked"),
                count("aborted")
            ));
        }

        // Assist mode: the claim-protocol accounting must be internally
        // consistent. Checked against the metrics registry, not the
        // replay summaries — timing-dependent counts would break replay
        // identity. (Whether a given seed's straggler actually gets
        // assisted is thread-dispatch luck on a loaded box, so "assists
        // happened at all" is asserted per *batch*, in `engine_main`.)
        let mut assisted = 0;
        if world.assist {
            let attempts = snap.counter("engine.tasks_speculated");
            let wins = snap.counter("engine.speculation_wins");
            assisted = snap.counter("engine.blocks_assisted");
            if wins > attempts {
                violations.push(format!(
                    "assist: {wins} re-execution wins exceed {attempts} attempts"
                ));
            }
            if assisted > wins {
                violations.push(format!(
                    "assist: {assisted} assisted blocks exceed {wins} re-execution wins"
                ));
            }
            let ratio = snap.gauge("engine.assist_ratio");
            if !(0..=10_000).contains(&ratio) {
                violations.push(format!(
                    "assist: assist_ratio gauge {ratio} escapes [0, 10000] basis points"
                ));
            }
        }
        (summaries, violations, assisted)
    }

    /// All failures of one seed, plus the run's assisted-block count: a
    /// checked run plus replay identity (the second run must produce
    /// byte-identical per-job summaries).
    pub fn seed_failures(world: &World, seed: u64, plan: &FaultPlan) -> (Vec<String>, u64) {
        let (first, mut failures, assisted) = run_checked(world, seed, plan);
        let (second, _, _) = run_checked(world, seed, plan);
        if first != second {
            failures.push("replay: re-run produced different per-job outcomes".into());
        }
        (failures, assisted)
    }

    /// Shrink a failing plan as the simulator fuzzer does: drop any fault
    /// whose removal keeps the seed failing, to a local minimum.
    pub fn minimize_plan(world: &World, seed: u64, plan: &FaultPlan) -> FaultPlan {
        let mut current = plan.clone();
        loop {
            let mut reduced = false;
            for i in 0..current.len() {
                let candidate = current.without_fault(i);
                if !seed_failures(world, seed, &candidate).0.is_empty() {
                    current = candidate;
                    reduced = true;
                    break;
                }
            }
            if !reduced {
                return current;
            }
        }
    }

    pub fn replay_one(world: &World, seed: u64) -> bool {
        let plan = plan_for(world, seed);
        println!(
            "seed {seed}: {} job(s) over {} segments, fault plan:\n{}",
            world.cfg.num_jobs,
            world.num_segments,
            plan.describe()
        );
        let (first, failures, assisted) = run_checked(world, seed, &plan);
        let (second, _, _) = run_checked(world, seed, &plan);
        for (i, s) in first.iter().enumerate() {
            let shown = if s.len() > 72 { &s[..72] } else { s };
            println!("  job {i}: {shown}{}", if s.len() > 72 { "..." } else { "" });
        }
        let repro = if first == second {
            "byte-identical"
        } else {
            "MISMATCH"
        };
        println!("  replay: {repro} ({assisted} assisted block(s))");
        for f in &failures {
            println!("  {f}");
        }
        failures.is_empty() && first == second
    }
}

/// Fuzzer over the multi-tenant [`ScanService`](s3_engine::ScanService):
/// for every seed, a burst of jobs (seeded tenants, QoS classes, and
/// deadlines) is fired at a small-bounded service faster than its tenants
/// can drain — roughly 2–4× the sustainable rate, so queues genuinely
/// fill — while each tenant's server runs under its own seeded worker
/// [`FaultPlan`](s3_engine::FaultPlan). Hard per-seed checks:
///
/// - **Accounting identity** — `submitted == completed + quarantined +
///   rejected + expired + aborted`, and the service's counters agree
///   exactly with what the client observed handle by handle;
/// - **No hangs** — every handle (admitted, queued, shed, or expiring)
///   resolves within a bound;
/// - **Output integrity** — every surviving output is byte-identical to
///   running the same job solo on that tenant's store;
/// - **Trace invariants** — the service trace passes the `svc_*`
///   admission-queue checks and each tenant trace the engine checks
///   (both via [`check_engine_events`](s3_mapreduce::check_engine_events)).
///
/// Which jobs shed is timing-dependent under real overload, so there is
/// no per-job outcome oracle and no replay-identity proof here — the
/// invariants above must hold on *every* interleaving.
mod service_fuzz {
    use s3_engine::{
        run_job, BlockStore, EngineChaosConfig, ExecConfig, FaultPlan, FileSpec, FtConfig,
        JobError, Obs, QosConfig, ScanService, ServerConfig, ServiceConfig,
    };
    use s3_mapreduce::check_engine_events;
    use s3_sim::SimRng;
    use s3_workloads::jobs::PatternWordCount;
    use s3_workloads::text::TextGen;
    use s3_workloads::ClassMix;
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    const BLOCKS_PER_SEGMENT: usize = 4;
    const THREADS: usize = 3;
    const TENANTS: [&str; 2] = ["logs", "events"];
    const JOB_PREFIXES: [&str; 8] = ["", "a", "ba", "d", "ga", "ma", "s", "ta"];
    /// Salt separating the job-mix stream from the fault-plan streams.
    const JOB_SALT: u64 = 0x5EC7_0A11_0C1A_55E5;
    const CLASS_SALT: u64 = 0xC1A5_5E5A_0000_0001;
    const TENANT_SALTS: [u64; 2] = [0x7E4A_4475_0000_0000, 0x7E4A_4475_0000_0001];
    /// A handle not resolving within this bound is reported as a hang.
    const WAIT_BOUND: Duration = Duration::from_secs(30);

    /// The immutable world every seed runs against: one corpus and one
    /// set of per-prefix solo reference outputs per tenant, plus the
    /// chaos envelope tenant fault plans are drawn from.
    pub struct World {
        stores: Vec<BlockStore>,
        solo: Vec<BTreeMap<&'static str, BTreeMap<String, i64>>>,
        chaos: EngineChaosConfig,
    }

    pub fn build_world() -> World {
        let stores: Vec<BlockStore> = [7u64, 11]
            .iter()
            .map(|s| {
                let text = TextGen::paper_like().generate(&mut SimRng::seed_from_u64(*s), 48 << 10);
                BlockStore::from_text(&text, 2048)
            })
            .collect();
        let solo = stores
            .iter()
            .map(|store| {
                JOB_PREFIXES
                    .iter()
                    .map(|p| {
                        let out = run_job(
                            &PatternWordCount::prefix(*p),
                            store,
                            &ExecConfig {
                                num_threads: 1,
                                num_reducers: 4,
                            ..ExecConfig::default()
                            },
                        );
                        (*p, out.records)
                    })
                    .collect()
            })
            .collect();
        // Worker faults only: stragglers, drops, map/reduce panics. The
        // coordinator stays alive — killing it is the bare-engine fuzzer's
        // business; here every tenant must keep serving through overload.
        let chaos = EngineChaosConfig {
            num_workers: THREADS,
            num_jobs: 8,
            horizon_iters: 24,
            coordinator_kill_prob: 0.0,
            ..EngineChaosConfig::default()
        };
        World {
            stores,
            solo,
            chaos,
        }
    }

    /// One service run under seed `seed`. Returns (jobs submitted,
    /// violations).
    pub fn run_checked(world: &World, seed: u64, verbose: bool) -> (usize, Vec<String>) {
        let mut violations = Vec::new();
        let mut rng = SimRng::seed_from_u64(seed ^ JOB_SALT);

        // Small bounds so a burst genuinely overloads: per-class queues
        // of 4, 12 queued service-wide, 3 merged jobs in flight per
        // tenant with Low admitted only below width 1.
        let qos = QosConfig {
            queue_cap: 4,
            max_inflight: 3,
            low_priority_width_cap: 1,
            max_queued_total: 12,
            default_deadline: None,
        };
        let svc_obs = Obs::new();
        let mut tenant_obs = Vec::new();
        let files: Vec<FileSpec> = TENANTS
            .iter()
            .zip(&world.stores)
            .zip(TENANT_SALTS)
            .map(|((name, store), salt)| {
                let mut server = ServerConfig::new(BLOCKS_PER_SEGMENT, THREADS);
                server.obs = Obs::new();
                server.ft = FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                };
                server.faults = Some(FaultPlan::generate(seed ^ salt, &world.chaos));
                tenant_obs.push(server.obs.clone());
                FileSpec {
                    name: (*name).to_string(),
                    store: store.clone(),
                    server,
                }
            })
            .collect();
        let svc = ScanService::new(
            files,
            ServiceConfig {
                qos,
                obs: svc_obs.clone(),
            },
        );

        // A seeded burst, submitted as fast as the classes draw: 18–33
        // jobs against two tenants that drain at most 3 at a time —
        // far past sustainable, so sheds and deferrals actually happen.
        let n = 18 + rng.index(16);
        let classes = ClassMix::default().assign(n, seed ^ CLASS_SALT);
        let mut handles = Vec::new();
        let (mut c_rejected, mut expected_of) = (0u64, Vec::new());
        for class in classes.iter().take(n).copied() {
            let tenant = rng.index(TENANTS.len());
            let prefix = JOB_PREFIXES[rng.index(JOB_PREFIXES.len())];
            // A quarter of jobs carry a tight deadline; queue waits under
            // overload overrun some of them in the queue, others mid-
            // revolution.
            let deadline = (rng.uniform(0.0, 1.0) < 0.25)
                .then(|| Duration::from_micros(rng.uniform(500.0, 20_000.0) as u64));
            let file = svc.file_id(TENANTS[tenant]).expect("registered tenant");
            match svc.submit_with_deadline(file, class, PatternWordCount::prefix(prefix), deadline)
            {
                Ok(h) => {
                    handles.push((h, tenant, prefix));
                    expected_of.push("live");
                }
                Err(JobError::Rejected { .. }) => c_rejected += 1,
                Err(e) => violations.push(format!("submit returned non-rejection error {e}")),
            }
        }

        // Bounded resolution: the fuzzer must detect a hang, not inherit
        // it. On timeout the service is leaked rather than dropped (drop
        // would block on the same hang).
        let deadline = Instant::now() + WAIT_BOUND;
        let (mut c_done, mut c_quar, mut c_expired, mut c_aborted) = (0u64, 0u64, 0u64, 0u64);
        for (i, (h, tenant, prefix)) in handles.into_iter().enumerate() {
            let result = loop {
                if let Some(r) = h.try_take() {
                    break Some(r);
                }
                if Instant::now() >= deadline {
                    break None;
                }
                std::thread::sleep(Duration::from_micros(500));
            };
            let Some(result) = result else {
                violations.push(format!("job {i}: handle unresolved after {WAIT_BOUND:?}"));
                std::mem::forget(svc);
                return (n, violations);
            };
            match result {
                Ok(out) => {
                    c_done += 1;
                    if out.records != world.solo[tenant][prefix] {
                        violations.push(format!(
                            "job {i} (tenant {:?}, prefix {prefix:?}): output differs from \
                             solo run",
                            TENANTS[tenant]
                        ));
                    }
                }
                Err(JobError::Panicked(_)) => c_quar += 1,
                Err(JobError::DeadlineExpired) => c_expired += 1,
                Err(JobError::Aborted) => c_aborted += 1,
                Err(e @ JobError::Rejected { .. }) => {
                    violations.push(format!("job {i}: admitted handle resolved {e}"))
                }
            }
        }

        // Accounting identity, checked two ways: internally, and against
        // the client's own per-handle tally.
        let stats = svc.stats();
        if !stats.identity_holds() {
            violations.push(format!(
                "accounting identity broken: {} submitted vs {} completed + {} quarantined \
                 + {} rejected + {} expired + {} aborted",
                stats.submitted,
                stats.completed,
                stats.quarantined,
                stats.rejected,
                stats.expired,
                stats.aborted
            ));
        }
        let client = (n as u64, c_done, c_quar, c_rejected, c_expired, c_aborted);
        let server = (
            stats.submitted,
            stats.completed,
            stats.quarantined,
            stats.rejected,
            stats.expired,
            stats.aborted,
        );
        if client != server {
            violations.push(format!(
                "client saw (submitted, done, quarantined, rejected, expired, aborted) = \
                 {client:?} but the service counted {server:?}"
            ));
        }
        if verbose {
            println!(
                "seed {seed}: {n} submitted, {c_done} done, {c_quar} quarantined, \
                 {c_rejected} rejected, {c_expired} expired, {} deferred",
                stats.deferred
            );
        }
        svc.shutdown();

        // Admission-queue invariants on the service trace, engine
        // invariants on each tenant's trace.
        let core = svc_obs.core().expect("observed");
        if core.tracer.dropped() > 0 {
            violations.push(format!(
                "service trace dropped {} events",
                core.tracer.dropped()
            ));
        }
        violations.extend(
            check_engine_events(&core.tracer.drain())
                .into_iter()
                .map(|v| format!("service: {v}")),
        );
        for (name, obs) in TENANTS.iter().zip(tenant_obs) {
            let core = obs.core().expect("observed");
            if core.tracer.dropped() > 0 {
                violations.push(format!(
                    "tenant {name} trace dropped {} events",
                    core.tracer.dropped()
                ));
            }
            violations.extend(
                check_engine_events(&core.tracer.drain())
                    .into_iter()
                    .map(|v| format!("tenant {name}: {v}")),
            );
        }
        (n, violations)
    }
}

fn service_main(args: &Args) -> ExitCode {
    // Same filter as the engine fuzzer: injected panics are expected.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("injected") {
            default_hook(info);
        }
    }));
    let world = service_fuzz::build_world();
    if let Some(seed) = args.seed {
        let (n, failures) = service_fuzz::run_checked(&world, seed, true);
        println!("seed {seed}: {n} jobs, {} violation(s)", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        return if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!(
        "s3chaos service: fuzzing seeds 0..{} over the multi-tenant scan service",
        args.seeds
    );
    let mut failed_seeds = 0u64;
    for seed in 0..args.seeds {
        let (_, failures) = service_fuzz::run_checked(&world, seed, args.verbose);
        if !failures.is_empty() {
            failed_seeds += 1;
            println!("seed {seed}: FAILED");
            for f in &failures {
                println!("  {f}");
            }
            println!(" replay with: s3chaos service --seed {seed}");
        }
    }
    println!(
        "s3chaos service: {}/{} seeds clean",
        args.seeds - failed_seeds.min(args.seeds),
        args.seeds
    );
    if failed_seeds == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn engine_main(args: &Args) -> ExitCode {
    // Injected panics are the point of the exercise: the engine catches
    // and quarantines them, so keep their backtraces off stderr. Anything
    // else still reports through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("injected") {
            default_hook(info);
        }
    }));
    let world = engine_fuzz::build_world(args.adaptive, args.assist, args.weighted);
    if let Some(seed) = args.seed {
        return if engine_fuzz::replay_one(&world, seed) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!(
        "s3chaos engine: fuzzing seeds 0..{} over the shared-scan server{}",
        args.seeds,
        match (args.adaptive, args.assist, args.weighted) {
            (true, _, true) => " (adaptive segment sizing, weighted partitioning)",
            (true, _, false) => " (adaptive segment sizing)",
            (_, true, true) => " (work-assist accounting, weighted partitioning)",
            (_, true, false) => " (work-assist accounting)",
            (_, _, true) => " (weighted partitioning)",
            _ => "",
        }
    );
    let mut failed_seeds = 0u64;
    let mut total_assisted = 0u64;
    for seed in 0..args.seeds {
        let plan = engine_fuzz::plan_for(&world, seed);
        let (failures, assisted) = engine_fuzz::seed_failures(&world, seed, &plan);
        total_assisted += assisted;
        if failures.is_empty() {
            if args.verbose {
                println!("seed {seed}: ok ({} fault(s))", plan.len());
            }
        } else {
            failed_seeds += 1;
            println!("seed {seed}: FAILED");
            println!(" fault plan:\n{}", plan.describe());
            for f in &failures {
                println!("  {f}");
            }
            let minimal = engine_fuzz::minimize_plan(&world, seed, &plan);
            if minimal.len() < plan.len() {
                println!(
                    " minimized to {} fault(s):\n{}",
                    minimal.len(),
                    minimal.describe()
                );
            } else {
                println!(" plan is already minimal");
            }
            let mut mode = String::new();
            if args.adaptive {
                mode.push_str(" --adaptive");
            }
            if args.assist {
                mode.push_str(" --assist");
            }
            if args.weighted {
                mode.push_str(" --weighted");
            }
            println!(" replay with: s3chaos engine{mode} --seed {seed}");
        }
    }
    // Whether any *single* straggler-bearing seed assists is dispatch
    // luck on small hosts (one eager worker can drain a whole cursor
    // before its rivals wake), but across a sweep of plans that each
    // guarantee a straggler, zero assists overall would mean the assist
    // path never engaged at all.
    if args.assist {
        println!("s3chaos engine: {total_assisted} assisted block(s) across the sweep");
        if total_assisted == 0 && args.seeds > 0 {
            failed_seeds += 1;
            println!(
                "assist: zero assisted blocks across the whole sweep despite \
                 guaranteed stragglers"
            );
        }
    }
    println!(
        "s3chaos engine: {}/{} seeds clean",
        args.seeds - failed_seeds.min(args.seeds),
        args.seeds
    );
    if failed_seeds == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.engine {
        return engine_main(&args);
    }
    if args.service {
        return service_main(&args);
    }
    let cluster = ClusterTopology::paper_cluster();
    // 4 blocks per node (160 total): big enough for several S³ sub-jobs,
    // small enough to fuzz hundreds of seeds quickly.
    let dataset = per_node_file(&cluster, "chaos", 1, 256);
    let node_ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    let chaos_cfg = ChaosConfig::default();

    if let Some(seed) = args.seed {
        let plan = ChaosPlan::generate(seed, &node_ids, &chaos_cfg);
        return if replay_one(seed, &cluster, &dataset, &plan) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "s3chaos: fuzzing seeds 0..{} over {} schedulers ({} nodes, {} blocks)",
        args.seeds,
        SCHEDULERS.len(),
        node_ids.len(),
        dataset.dfs.file(dataset.file).blocks.len(),
    );
    let mut failed_seeds = 0u64;
    for seed in 0..args.seeds {
        let plan = ChaosPlan::generate(seed, &node_ids, &chaos_cfg);
        let failures = seed_failures(seed, &cluster, &dataset, &plan);
        if failures.is_empty() {
            if args.verbose {
                println!(
                    "seed {seed}: ok ({} fault(s), {} job(s))",
                    plan.len(),
                    workload_for(seed, &dataset).len()
                );
            }
        } else {
            failed_seeds += 1;
            report_failure(seed, &cluster, &dataset, &plan, &failures);
        }
    }
    println!(
        "s3chaos: {}/{} seeds clean",
        args.seeds - failed_seeds,
        args.seeds
    );
    if failed_seeds == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
