//! The in-memory block store the real engine scans.
//!
//! Mirrors the HDFS view at a small scale: a file is a sequence of blocks,
//! each a chunk of newline-delimited data. Blocks are the unit of map-task
//! input and of shared scanning.
//!
//! Storage is one contiguous `Arc<[u8]>` plus a block-offset index, so
//! [`BlockStore::block`] hands out a borrowed `&[u8]` slice with no per-block
//! heap object and no copy. Blocks are byte slices — the store accepts
//! arbitrary bytes, including invalid UTF-8; the [`BlockStore::block_str`]
//! shim recovers the old `&str` view with a typed error instead of a panic.

use std::collections::HashMap;
use std::sync::Arc;

/// Stable identity of one named file (one [`BlockStore`]) inside a
/// [`FileCatalog`] — and therefore inside a [`crate::ScanService`].
///
/// Ids are dense indices assigned at registration and never reused, so a
/// `FileId` stays valid for the catalog's lifetime. Callers route by this
/// token (or by name) instead of by construction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub(crate) u32);

impl FileId {
    /// The dense index this id maps to (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Typed error for a name or id that no registered file matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFile {
    /// What the caller asked for — a name, or a stringified [`FileId`]
    /// from a foreign catalog.
    pub requested: String,
}

impl std::fmt::Display for UnknownFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown file: {}", self.requested)
    }
}

impl std::error::Error for UnknownFile {}

/// A name ↔ [`FileId`] registry over a set of [`BlockStore`]s.
///
/// The catalog owns the stores; registration order defines the dense id
/// space. Lookups by unknown name return a typed [`UnknownFile`] instead
/// of forcing callers to index by construction order and panic on a
/// mistake.
#[derive(Debug, Default)]
pub struct FileCatalog {
    names: Vec<String>,
    stores: Vec<BlockStore>,
    index: HashMap<String, FileId>,
}

impl FileCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a named store, returning its stable id. Re-registering an
    /// existing name replaces nothing — the original id and store win and
    /// the duplicate is reported via `Err` with the existing id.
    pub fn register(&mut self, name: impl Into<String>, store: BlockStore) -> Result<FileId, FileId> {
        let name = name.into();
        if let Some(&id) = self.index.get(&name) {
            return Err(id);
        }
        let id = FileId(self.names.len() as u32);
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.stores.push(store);
        Ok(id)
    }

    /// Resolve a name to its id.
    pub fn resolve(&self, name: &str) -> Result<FileId, UnknownFile> {
        self.index.get(name).copied().ok_or_else(|| UnknownFile {
            requested: name.to_string(),
        })
    }

    /// The store behind an id, if the id belongs to this catalog.
    pub fn store(&self, id: FileId) -> Option<&BlockStore> {
        self.stores.get(id.index())
    }

    /// The name behind an id, if the id belongs to this catalog.
    pub fn name(&self, id: FileId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Registered files in id order.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name, store)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &str, &BlockStore)> {
        (0..self.names.len())
            .map(move |i| (FileId(i as u32), self.names[i].as_str(), &self.stores[i]))
    }
}

/// An immutable, shareable sequence of byte blocks backed by one contiguous
/// allocation.
#[derive(Debug, Clone)]
pub struct BlockStore {
    /// All block payloads, concatenated in block order.
    data: Arc<[u8]>,
    /// `cuts[i]..cuts[i+1]` is block `i`; always `num_blocks + 1` entries
    /// starting at 0 and ending at `data.len()`.
    cuts: Arc<[usize]>,
}

/// Typed error returned by [`BlockStore::block_str`] when a block is not
/// valid UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonUtf8Block {
    /// Index of the offending block.
    pub block: usize,
    /// Number of leading bytes of the block that are valid UTF-8.
    pub valid_up_to: usize,
}

impl std::fmt::Display for NonUtf8Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block {} is not valid UTF-8 (valid up to byte {})",
            self.block, self.valid_up_to
        )
    }
}

impl std::error::Error for NonUtf8Block {}

impl BlockStore {
    /// Build from explicit text blocks. An empty store is valid: it models a
    /// zero-length file, and a [`crate::SharedScanServer`] over one
    /// resolves every submitted job immediately with empty output.
    pub fn new(blocks: Vec<String>) -> Self {
        Self::from_byte_blocks(blocks.into_iter().map(String::into_bytes).collect())
    }

    /// Build from explicit byte blocks; the payloads may be arbitrary bytes.
    pub fn from_byte_blocks(blocks: Vec<Vec<u8>>) -> Self {
        let mut cuts = Vec::with_capacity(blocks.len() + 1);
        let mut data = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
        cuts.push(0);
        for b in &blocks {
            data.extend_from_slice(b);
            cuts.push(data.len());
        }
        BlockStore { data: data.into(), cuts: cuts.into() }
    }

    /// Split one text into blocks of roughly `block_bytes` bytes, breaking
    /// only at line boundaries so no record straddles two blocks (HDFS
    /// splits mid-record; Hadoop's record reader re-aligns — we model the
    /// post-alignment view).
    ///
    /// # Panics
    /// Panics if `block_bytes` is zero. Empty `text` yields an empty
    /// (zero-block) store.
    pub fn from_text(text: &str, block_bytes: usize) -> Self {
        Self::from_bytes(text.as_bytes(), block_bytes)
    }

    /// Byte-level [`BlockStore::from_text`]: splits at `\n` boundaries, with
    /// the same block sizing, but accepts arbitrary (possibly non-UTF-8)
    /// bytes.
    ///
    /// # Panics
    /// Panics if `block_bytes` is zero.
    pub fn from_bytes(bytes: &[u8], block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let mut cuts = vec![0usize];
        let mut data = Vec::with_capacity(bytes.len() + 1);
        for line in memchr::lines(bytes) {
            data.extend_from_slice(line);
            data.push(b'\n');
            if data.len() - cuts.last().unwrap() >= block_bytes {
                cuts.push(data.len());
            }
        }
        if *cuts.last().unwrap() != data.len() {
            cuts.push(data.len());
        }
        BlockStore { data: data.into(), cuts: cuts.into() }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.cuts.len() - 1
    }

    /// A block's bytes, borrowed straight from the contiguous backing store.
    pub fn block(&self, idx: usize) -> &[u8] {
        &self.data[self.cuts[idx]..self.cuts[idx + 1]]
    }

    /// A block's text — the migration shim for `str`-level consumers.
    ///
    /// Returns a typed [`NonUtf8Block`] error (instead of panicking) when the
    /// block holds invalid UTF-8.
    pub fn block_str(&self, idx: usize) -> Result<&str, NonUtf8Block> {
        std::str::from_utf8(self.block(idx))
            .map_err(|e| NonUtf8Block { block: idx, valid_up_to: e.valid_up_to() })
    }

    /// Byte offset of the start of each block plus a final total-length
    /// entry: `num_blocks() + 1` monotone values starting at 0. Useful for
    /// exact per-revolution byte accounting without re-summing block lengths.
    pub fn block_offsets(&self) -> &[usize] {
        &self.cuts
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Iterate over blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.num_blocks()).map(|i| self.block(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_respects_line_boundaries() {
        let text = "aaaa\nbbbb\ncccc\ndddd\n";
        let store = BlockStore::from_text(text, 8);
        assert!(store.num_blocks() >= 2);
        for i in 0..store.num_blocks() {
            let b = store.block_str(i).unwrap();
            assert!(b.ends_with('\n'));
            for line in b.lines() {
                assert_eq!(line.len(), 4, "no split lines");
            }
        }
        let rejoined: Vec<u8> = store.iter().flatten().copied().collect();
        assert_eq!(rejoined, text.as_bytes());
    }

    #[test]
    fn total_bytes_is_preserved() {
        let text = "one two three\nfour five\n".repeat(100);
        let store = BlockStore::from_text(&text, 64);
        assert_eq!(store.total_bytes(), text.len());
    }

    #[test]
    fn single_small_text_is_one_block() {
        let store = BlockStore::from_text("hello\n", 1024);
        assert_eq!(store.num_blocks(), 1);
        assert_eq!(store.block(0), b"hello\n");
        assert_eq!(store.block_str(0), Ok("hello\n"));
    }

    #[test]
    fn empty_store_is_a_zero_length_file() {
        let store = BlockStore::new(vec![]);
        assert_eq!(store.num_blocks(), 0);
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.iter().count(), 0);
        let from_text = BlockStore::from_text("", 64);
        assert_eq!(from_text.num_blocks(), 0);
    }

    #[test]
    fn block_offsets_index_the_contiguous_payload() {
        let text = "aa\nbb\ncc\ndd\nee\n";
        let store = BlockStore::from_text(text, 6);
        let cuts = store.block_offsets();
        assert_eq!(cuts.len(), store.num_blocks() + 1);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), store.total_bytes());
        for i in 0..store.num_blocks() {
            assert_eq!(store.block(i).len(), cuts[i + 1] - cuts[i]);
        }
    }

    #[test]
    fn non_utf8_blocks_are_stored_and_reported() {
        let store = BlockStore::from_byte_blocks(vec![
            b"valid line\n".to_vec(),
            b"bad \xff\xfe bytes\n".to_vec(),
        ]);
        assert_eq!(store.num_blocks(), 2);
        assert!(store.block_str(0).is_ok());
        let err = store.block_str(1).unwrap_err();
        assert_eq!(err.block, 1);
        assert_eq!(err.valid_up_to, 4);
        assert!(err.to_string().contains("not valid UTF-8"));
        // The byte view is untouched.
        assert_eq!(store.block(1), b"bad \xff\xfe bytes\n");
    }

    #[test]
    fn catalog_assigns_stable_ids_and_types_unknown_names() {
        let mut cat = FileCatalog::new();
        let logs = cat.register("logs", BlockStore::from_text("a b\n", 16)).unwrap();
        let events = cat.register("events", BlockStore::from_text("c d\ne f\n", 4)).unwrap();
        assert_eq!(logs.index(), 0);
        assert_eq!(events.index(), 1);
        assert_eq!(cat.resolve("logs"), Ok(logs));
        assert_eq!(cat.resolve("events"), Ok(events));
        assert_eq!(cat.name(events), Some("events"));
        assert_eq!(cat.store(logs).unwrap().total_bytes(), 4);
        assert_eq!(cat.len(), 2);
        let err = cat.resolve("missing").unwrap_err();
        assert_eq!(err.requested, "missing");
        assert!(err.to_string().contains("unknown file"));
        // Duplicate registration reports the existing id and changes nothing.
        assert_eq!(cat.register("logs", BlockStore::new(vec![])), Err(logs));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.store(logs).unwrap().total_bytes(), 4);
        let ids: Vec<_> = cat.iter().map(|(id, name, _)| (id, name.to_string())).collect();
        assert_eq!(ids, vec![(logs, "logs".into()), (events, "events".into())]);
    }

    #[test]
    fn from_bytes_accepts_invalid_utf8_and_preserves_payload() {
        let raw = b"ok line\n\xf0\x28\x8c\x28 mangled\nlast".to_vec();
        let store = BlockStore::from_bytes(&raw, 8);
        // from_bytes normalizes the missing trailing newline (line-aligned
        // blocks), so compare against the line-rejoined form.
        let mut want = Vec::new();
        for line in memchr::lines(&raw) {
            want.extend_from_slice(line);
            want.push(b'\n');
        }
        let got: Vec<u8> = store.iter().flatten().copied().collect();
        assert_eq!(got, want);
    }
}
