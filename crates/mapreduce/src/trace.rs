//! Structured execution traces.
//!
//! When enabled, the engine records one [`TraceEvent`] per task start and
//! finish plus job lifecycle points. Traces feed the ASCII timeline
//! renderer (used by examples and debugging) and give tests a precise view
//! of *when* and *where* work ran — e.g. "no two maps of one batch
//! overlapped on one slot", or "S³'s sub-jobs never overlap their map
//! phases".

use crate::batch::BatchKey;
use crate::job::JobId;
use s3_cluster::NodeId;
use s3_sim::SimTime;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A job was submitted.
    JobSubmitted,
    /// A job's results became available.
    JobCompleted,
    /// A map task started on a node.
    MapStart,
    /// A map task finished.
    MapEnd,
    /// A map attempt was lost to a TaskTracker death.
    MapFailed,
    /// A reduce task started on a node.
    ReduceStart,
    /// A reduce task finished.
    ReduceEnd,
    /// A reduce attempt was lost to a TaskTracker death.
    ReduceFailed,
    /// Periodic slot checking excluded a slow node from assignment.
    SlotExcluded,
    /// A previously excluded node passed its speed check and was
    /// re-admitted to assignment.
    SlotReadmitted,
    /// Dynamic sub-job adjustment launched a sub-job sized from the
    /// healthy slot count rather than the static total (the batch and the
    /// merged jobs are recorded on the event).
    SubJobAdjusted,
}

/// One trace record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Node involved (None for job lifecycle events).
    pub node: Option<NodeId>,
    /// Jobs involved: the submitted/completed job, or every job sharing a
    /// task's scan.
    pub jobs: Vec<JobId>,
    /// Batch the task belonged to (None for job lifecycle events).
    pub batch: Option<BatchKey>,
    /// Block a map task scanned (None for reduce/lifecycle events). This
    /// is what lets the invariant checker prove scan-exactly-once coverage
    /// from the trace alone.
    #[serde(default)]
    pub block: Option<s3_dfs::BlockId>,
}

/// An in-memory trace.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event (engine-internal, but public so custom drivers can
    /// record into the same format).
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at <= ev.at),
            "trace must be appended in time order"
        );
        self.events.push(ev);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Completed (start, end) intervals of map tasks on `node`; a failed
    /// attempt still closes its interval (the slot was busy until the
    /// failure was detected).
    pub fn map_intervals_on(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        self.task_intervals_on(node, TraceKind::MapStart, &[TraceKind::MapEnd, TraceKind::MapFailed])
    }

    /// Completed (start, end) intervals of reduce tasks on `node`.
    pub fn reduce_intervals_on(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        self.task_intervals_on(
            node,
            TraceKind::ReduceStart,
            &[TraceKind::ReduceEnd, TraceKind::ReduceFailed],
        )
    }

    fn task_intervals_on(
        &self,
        node: NodeId,
        start: TraceKind,
        ends: &[TraceKind],
    ) -> Vec<(SimTime, SimTime)> {
        // With one slot per kind per node in the default configuration,
        // starts and ends alternate; pair them positionally per node.
        let mut out = Vec::new();
        let mut open: Vec<SimTime> = Vec::new();
        for e in &self.events {
            if e.node != Some(node) {
                continue;
            }
            if e.kind == start {
                open.push(e.at);
            } else if ends.contains(&e.kind) {
                let s = open.pop().expect("end without start");
                out.push((s, e.at));
            }
        }
        out
    }

    /// Busy fraction of `node`'s map slot between the first and last event
    /// in the trace (0 when the trace is empty).
    pub fn map_utilization_of(&self, node: NodeId) -> f64 {
        let Some(first) = self.events.first().map(|e| e.at) else {
            return 0.0;
        };
        let last = self.events.last().expect("non-empty").at;
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .map_intervals_on(node)
            .iter()
            .map(|(s, e)| e.saturating_since(*s).as_secs_f64())
            .sum();
        (busy / span).min(1.0)
    }

    /// Render an ASCII timeline: one row per node, time bucketed into
    /// `width` columns; `M` = map busy, `R` = reduce busy, `B` = both,
    /// `.` = idle.
    pub fn render_timeline(&self, nodes: &[NodeId], width: usize) -> String {
        assert!(width > 0, "timeline needs at least one column");
        let Some(first) = self.events.first().map(|e| e.at) else {
            return String::from("(empty trace)\n");
        };
        let last = self.events.last().expect("non-empty").at;
        let span = last.saturating_since(first).as_secs_f64().max(1e-9);
        let bucket_of = |t: SimTime| -> usize {
            let frac = t.saturating_since(first).as_secs_f64() / span;
            ((frac * width as f64) as usize).min(width - 1)
        };

        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {:.1}s .. {:.1}s ({} columns of {:.1}s)\n",
            first.as_secs_f64(),
            last.as_secs_f64(),
            width,
            span / width as f64
        ));
        for &node in nodes {
            let mut row = vec![b'.'; width];
            for (s, e) in self.map_intervals_on(node) {
                for cell in &mut row[bucket_of(s)..=bucket_of(e)] {
                    *cell = b'M';
                }
            }
            for (s, e) in self.reduce_intervals_on(node) {
                for cell in &mut row[bucket_of(s)..=bucket_of(e)] {
                    *cell = if *cell == b'M' { b'B' } else { b'R' };
                }
            }
            out.push_str(&format!(
                "{:>7} |{}|\n",
                node.to_string(),
                String::from_utf8(row).expect("ASCII")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, kind: TraceKind, node: Option<u32>) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_s),
            kind,
            node: node.map(NodeId),
            jobs: vec![JobId(0)],
            batch: None,
            block: None,
        }
    }

    #[test]
    fn intervals_pair_starts_and_ends() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(1)));
        t.push(ev(3, TraceKind::MapEnd, Some(1)));
        t.push(ev(4, TraceKind::MapStart, Some(1)));
        t.push(ev(9, TraceKind::MapEnd, Some(1)));
        let iv = t.map_intervals_on(NodeId(1));
        assert_eq!(
            iv,
            vec![
                (SimTime::ZERO, SimTime::from_secs(3)),
                (SimTime::from_secs(4), SimTime::from_secs(9))
            ]
        );
        assert!(t.map_intervals_on(NodeId(2)).is_empty());
    }

    #[test]
    fn utilization_is_busy_over_span() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(1)));
        t.push(ev(5, TraceKind::MapEnd, Some(1)));
        t.push(ev(10, TraceKind::JobCompleted, None));
        assert!((t.map_utilization_of(NodeId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(t.map_utilization_of(NodeId(2)), 0.0);
    }

    #[test]
    fn timeline_marks_busy_cells() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(0)));
        t.push(ev(5, TraceKind::MapEnd, Some(0)));
        t.push(ev(5, TraceKind::ReduceStart, Some(0)));
        t.push(ev(10, TraceKind::ReduceEnd, Some(0)));
        let s = t.render_timeline(&[NodeId(0), NodeId(1)], 10);
        assert!(s.contains('M'));
        assert!(s.contains('R'));
        let idle_row = s.lines().last().unwrap();
        assert!(idle_row.contains(".........."), "node1 is idle: {idle_row}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::new();
        assert_eq!(t.render_timeline(&[NodeId(0)], 5), "(empty trace)\n");
        assert_eq!(t.map_utilization_of(NodeId(0)), 0.0);
    }

    #[test]
    fn kind_filter() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::JobSubmitted, None));
        t.push(ev(1, TraceKind::MapStart, Some(0)));
        assert_eq!(t.of_kind(TraceKind::JobSubmitted).count(), 1);
        assert_eq!(t.of_kind(TraceKind::ReduceEnd).count(), 0);
    }
}
