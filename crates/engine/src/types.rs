//! The job interface: user-defined map, combine, and reduce logic.

use std::hash::Hash;

/// A MapReduce job over newline-delimited text blocks.
///
/// `K`/`V` are the intermediate key/value types. Jobs merged into one
/// shared scan must share `K`/`V` (as MRShare requires jobs to agree on
/// their intermediate schema to share a scan).
pub trait MapReduceJob: Send + Sync {
    /// Intermediate (and output) key.
    type K: Clone + Ord + Hash + Send + Sync;
    /// Intermediate value.
    type V: Clone + Send + Sync;
    /// Final output value.
    type Out: Clone + Send + Sync + PartialEq + std::fmt::Debug;

    /// Map one input record (a line of text), emitting intermediate pairs.
    fn map(&self, line: &str, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Optional map-side combiner: fold a run of values for one key into a
    /// smaller run. Defaults to the identity (no combining).
    fn combine(&self, _key: &Self::K, values: Vec<Self::V>) -> Vec<Self::V> {
        values
    }

    /// Reduce all values of one key to the final output value; returning
    /// `None` suppresses the key from the output.
    fn reduce(&self, key: &Self::K, values: &[Self::V]) -> Option<Self::Out>;
}

#[cfg(test)]
pub(crate) mod test_jobs {
    use super::MapReduceJob;

    /// Count words that start with a given prefix — the paper's modified
    /// wordcount ("count only the words that match a user-specified
    /// pattern").
    pub struct PrefixCount {
        pub prefix: String,
    }

    impl MapReduceJob for PrefixCount {
        type K = String;
        type V = i64;
        type Out = i64;

        fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
            for w in line.split_whitespace() {
                if w.starts_with(&self.prefix) {
                    emit(w.to_string(), 1);
                }
            }
        }

        fn combine(&self, _key: &String, values: Vec<i64>) -> Vec<i64> {
            vec![values.iter().sum()]
        }

        fn reduce(&self, _key: &String, values: &[i64]) -> Option<i64> {
            Some(values.iter().sum())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_jobs::PrefixCount;
    use super::*;

    #[test]
    fn prefix_count_maps_and_reduces() {
        let j = PrefixCount {
            prefix: "a".into(),
        };
        let mut out = Vec::new();
        j.map("an apple and a banana", &mut |k, v| out.push((k, v)));
        assert_eq!(out.len(), 4); // an, apple, and, a
        assert_eq!(j.reduce(&"a".into(), &[1, 1, 1]), Some(3));
        assert_eq!(j.combine(&"a".into(), vec![1, 1, 1]), vec![3]);
    }

    #[test]
    fn default_combiner_is_identity() {
        struct NoCombine;
        impl MapReduceJob for NoCombine {
            type K = String;
            type V = i64;
            type Out = i64;
            fn map(&self, _: &str, _: &mut dyn FnMut(String, i64)) {}
            fn reduce(&self, _: &String, v: &[i64]) -> Option<i64> {
                Some(v.len() as i64)
            }
        }
        let j = NoCombine;
        assert_eq!(j.combine(&"k".into(), vec![1, 2, 3]), vec![1, 2, 3]);
    }
}
