//! Offline vendored FxHash, the non-cryptographic hash rustc uses for its
//! internal tables (`rustc-hash` / `fxhash` crates): multiply-xor over
//! 8-byte chunks with a Fibonacci-style constant. Several times faster
//! than the std `DefaultHasher` (SipHash-1-3) on the short string and
//! integer keys MapReduce hot paths hash millions of times, at the cost of
//! no HashDoS resistance — fine for trusted in-process workloads.
//!
//! Surface mirrors the real crates: [`FxHasher`], [`FxBuildHasher`], and
//! the [`FxHashMap`]/[`FxHashSet`] aliases.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and deterministic
/// (no per-map random seed, so iteration-order-independent code must not
/// rely on adversarial inputs being spread).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one 64-bit word folded with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (chunk, tail) = rest.split_at(4);
            self.add_to_hash(u32::from_le_bytes(chunk.try_into().expect("4-byte chunk")) as u64);
            rest = tail;
        }
        if rest.len() >= 2 {
            let (chunk, tail) = rest.split_at(2);
            self.add_to_hash(u16::from_le_bytes(chunk.try_into().expect("2-byte chunk")) as u64);
            rest = tail;
        }
        if let Some(&b) = rest.first() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash one value with FxHash in a single call.
pub fn hash64<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash64("alpha"), hash64("alpha"));
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_ne!(hash64("alpha"), hash64("beta"));
    }

    #[test]
    fn chunked_write_equals_whole_write() {
        // write() folds 8/4/2/1-byte chunks; a 15-byte input exercises all.
        let bytes: Vec<u8> = (0u8..15).collect();
        let mut h = FxHasher::default();
        h.write(&bytes);
        let whole = h.finish();
        assert_ne!(whole, 0);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        m.insert("k".into(), 7);
        assert_eq!(m["k"], 7);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }

    #[test]
    fn distributes_small_integer_keys() {
        // Sanity: consecutive integers should not collide mod a small table.
        let buckets = 16u64;
        let mut seen = FxHashSet::default();
        for i in 0u64..1000 {
            seen.insert(hash64(&i) % buckets);
        }
        assert_eq!(seen.len() as u64, buckets, "all buckets hit");
    }
}
