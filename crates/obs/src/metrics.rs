//! Lock-free metrics: named counters, gauges, and fixed-bucket histograms.
//!
//! The hot path never takes a lock and never allocates: a write is one
//! relaxed `fetch_add` (plus a `fetch_max` for histograms) on a
//! cache-line-padded cell owned by the calling thread's **shard**. Reads
//! aggregate across shards, so `get()`/`snapshot()` are linear in the
//! shard count — cheap, but meant for polling and reports, not for inner
//! loops.
//!
//! The [`Registry`] maps names to instruments under a mutex, but that lock
//! is only touched at *registration* (get-or-create). Instrumented code
//! resolves its instruments once at setup, holds the `Arc`s, and then
//! records lock-free forever after. Relaxed ordering is deliberate
//! throughout: these are statistics, not synchronization — readers may see
//! a value that is a few in-flight increments stale, never a torn one.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of per-thread shards in counters and histograms. A power of two;
/// threads are assigned shards round-robin, so up to `SHARDS` threads
/// write contention-free and larger pools wrap around.
pub const SHARDS: usize = 16;

/// Round-robin shard index of the calling thread, assigned on first use
/// and cached in a thread-local.
fn shard_id() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Cell64(AtomicU64);

/// A monotonically increasing counter, sharded per thread.
pub struct Counter {
    cells: Vec<Cell64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            cells: (0..SHARDS).map(|_| Cell64::default()).collect(),
        }
    }

    /// Add `n` (one relaxed RMW on this thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total, summed over shards.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// An instantaneous signed value (queue depth, active jobs). A single
/// atomic — gauge updates are orders of magnitude rarer than counter
/// bumps, so sharding would only slow the read side.
pub struct Gauge {
    value: AtomicU64, // i64 stored as two's-complement bits
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v as u64, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) as i64
    }
}

/// Default histogram bounds: exponential microsecond buckets from 1 µs to
/// ~67 s (doubling), which covers segment cadences, admission latencies,
/// and reduce-shard times at ~2× resolution.
pub fn default_us_bounds() -> Vec<u64> {
    (0..27).map(|i| 1u64 << i).collect()
}

/// Per-shard histogram cells: bucket counts plus sum/count/min/max.
struct HistShard {
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (last = overflow)
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX until the first observation
    max: AtomicU64,
}

/// A fixed-bucket histogram, sharded per thread.
///
/// `bounds` are inclusive upper edges (`value <= bounds[i]` lands in
/// bucket `i`); values above the last bound land in an overflow bucket.
/// Quantiles are estimated from the aggregated bucket counts by linear
/// interpolation inside the containing bucket.
pub struct Histogram {
    bounds: Vec<u64>,
    shards: Vec<HistShard>,
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            })
            .collect();
        Histogram { bounds, shards }
    }

    /// Record one observation (relaxed RMWs on this thread's shard; zero
    /// allocation).
    #[inline]
    pub fn record(&self, value: u64) {
        let b = self.bounds.partition_point(|&bound| bound < value);
        let shard = &self.shards[shard_id()];
        shard.buckets[b].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .sum()
    }

    /// Aggregate the shards into a serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for s in &self.shards {
            for (agg, b) in buckets.iter_mut().zip(&s.buckets) {
                *agg += b.load(Ordering::Relaxed);
            }
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        if count == 0 {
            min = 0;
        }
        let pairs: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .map(|&b| b as f64)
            .chain(std::iter::once(f64::INFINITY))
            .zip(buckets.iter().copied())
            .collect();
        let quantile = |q: f64| quantile_from_buckets(&pairs, min as f64, max as f64, q);
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            buckets: self
                .bounds
                .iter()
                .map(|&le| le.to_string())
                .chain(std::iter::once("+inf".into()))
                .zip(buckets)
                .filter(|&(_, c)| c > 0)
                .map(|(le, count)| BucketCount { le, count })
                .collect(),
        }
    }
}

/// Estimate the `q`-quantile from non-cumulative `(upper_edge, count)`
/// buckets ordered by edge (`f64::INFINITY` for an overflow bucket).
///
/// The estimate interpolates linearly inside the containing bucket, then
/// clamps to the observed `[min, max]` range — which makes it **exact** for
/// zero observations (returns 0) and for a single observation (the clamp
/// collapses to the one observed value), instead of reporting an
/// interpolated point the process never actually measured. The first
/// bucket's lower edge is raised to `min` and infinite edges cap at `max`,
/// so estimates also tighten when the data occupies only part of a bucket.
///
/// Shared by [`Histogram::snapshot`] and by consumers that re-derive
/// quantiles from windowed bucket *deltas* (e.g. the `s3top` dashboard).
pub fn quantile_from_buckets(buckets: &[(f64, u64)], min: f64, max: f64, q: f64) -> f64 {
    let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if count == 0 {
        return 0.0;
    }
    let rank = q * count as f64;
    let mut seen = 0u64;
    let mut lower = 0.0f64;
    for &(edge, c) in buckets {
        let hi = if edge.is_finite() { edge.min(max) } else { max };
        if c > 0 && seen as f64 + c as f64 >= rank {
            let lo = lower.max(min).min(hi);
            let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
            return (lo + (hi - lo) * frac).clamp(min, max);
        }
        seen += c;
        lower = hi;
    }
    max.max(min)
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper edge (`"+inf"` for the overflow bucket).
    pub le: String,
    /// Observations in this bucket.
    pub count: u64,
}

/// Aggregated view of one histogram.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty). Defaults to 0 when
    /// deserializing snapshots written before this field existed.
    #[serde(default)]
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Non-empty buckets, in bound order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Schema tag written into every [`MetricsSnapshot`].
pub const SNAPSHOT_SCHEMA: &str = "s3obs-metrics/v1";

/// A serializable point-in-time aggregate of one registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot schema version ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total by name, defaulting to 0 for counters never touched.
    ///
    /// Instruments register lazily on first use, so a recovery counter
    /// like `engine.jobs_quarantined` is absent from a snapshot of a run
    /// with no faults; assertions and fuzzer oracles want "absent == 0"
    /// rather than a map lookup panic.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, defaulting to 0 when never touched.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named instruments.
///
/// Registration (get-or-create by name) takes a mutex; recording through
/// the returned `Arc`s is lock-free. Re-registering a name returns the
/// existing instrument, so concurrent setup is safe; registering one name
/// as two different instrument kinds panics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        kind: &str,
        make: impl FnOnce() -> Instrument,
        project: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut inner = self.inner.lock();
        if let Some((_, inst)) = inner.iter().find(|(n, _)| n == name) {
            return project(inst)
                .unwrap_or_else(|| panic!("instrument {name:?} already registered as a non-{kind}"));
        }
        let inst = make();
        let out = project(&inst).expect("just-made instrument matches its kind");
        inner.push((name.to_string(), inst));
        out
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            "counter",
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            "gauge",
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name` with the default exponential
    /// microsecond bounds.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_bounds(name, default_us_bounds())
    }

    /// Get or create the histogram `name`; `bounds` apply only on first
    /// registration.
    pub fn histogram_with_bounds(&self, name: &str, bounds: Vec<u64>) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            "histogram",
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Aggregate every instrument into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut snap = MetricsSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for (name, inst) in inner.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_deltas() {
        let g = Gauge::new();
        g.add(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [1, 5, 9, 50, 75, 200, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 5340);
        let s = h.snapshot();
        assert_eq!(s.max, 5000);
        assert!(s.p50 <= 100.0, "median in the low buckets: {}", s.p50);
        assert!(s.p99 > 100.0, "p99 in the tail: {}", s.p99);
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 7);
        assert!(s.buckets.iter().any(|b| b.le == "+inf" && b.count == 1));
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::new(default_us_bounds());
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // A lone observation sits mid-bucket; interpolation alone would
        // report a value never observed. The min/max clamp makes every
        // quantile collapse to the one sample.
        let h = Histogram::new(vec![10, 100, 1000]);
        h.record(37);
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (37, 37));
        for q in [s.p50, s.p95, s.p99] {
            assert_eq!(q, 37.0, "single-sample quantile must be exact");
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_min_max() {
        // Two equal samples at the top of the [11, 100] bucket: naive
        // interpolation lands below 99; the clamp pins both ends.
        let h = Histogram::new(vec![10, 100, 1000]);
        h.record(99);
        h.record(99);
        let s = h.snapshot();
        assert_eq!(s.p50, 99.0);
        assert_eq!(s.p99, 99.0);

        // Spread samples: no quantile may leave [min, max].
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [42, 43, 44, 700] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50 >= 42.0 && s.p50 <= 700.0, "p50 {}", s.p50);
        assert!(s.p99 >= 42.0 && s.p99 <= 700.0, "p99 {}", s.p99);
        assert_eq!((s.min, s.max), (42, 700));
    }

    #[test]
    fn overflow_only_histogram_reports_max() {
        let h = Histogram::new(vec![10]);
        h.record(5000);
        let s = h.snapshot();
        assert_eq!(s.p99, 5000.0);
        assert_eq!(s.p50, 5000.0);
    }

    #[test]
    fn quantile_from_buckets_handles_sparse_windows() {
        // Windowed deltas hand this helper sparse (edge, count) pairs.
        let pairs = [(10.0, 0), (100.0, 3), (f64::INFINITY, 1)];
        let p50 = quantile_from_buckets(&pairs, 20.0, 400.0, 0.50);
        assert!((20.0..=100.0).contains(&p50), "p50 {p50}");
        let p99 = quantile_from_buckets(&pairs, 20.0, 400.0, 0.99);
        assert!((100.0..=400.0).contains(&p99), "p99 {p99}");
        assert_eq!(quantile_from_buckets(&[], 0.0, 0.0, 0.5), 0.0);
    }

    #[test]
    fn registry_get_or_create_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(1);
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let r = Registry::new();
        r.counter("c").add(4);
        r.gauge("g").set(-2);
        r.histogram("h").record(37);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters["c"], 4);
        assert_eq!(back.gauges["g"], -2);
        assert_eq!(back.histograms["h"].count, 1);
        assert_eq!(back.schema, SNAPSHOT_SCHEMA);
    }
}
