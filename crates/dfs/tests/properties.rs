//! Property-based tests for the block store and segmentation.

use proptest::prelude::*;
use s3_cluster::{ClusterBuilder, ClusterTopology};
use s3_dfs::{Dfs, RoundRobinPlacement, SegmentId, Segmentation};

fn small_cluster() -> ClusterTopology {
    ClusterBuilder::new().rack(4).rack(4).rack(2).build()
}

proptest! {
    /// Any uniform segmentation covers every block exactly once, in order.
    #[test]
    fn uniform_segmentation_partitions_blocks(n in 1u32..5000, m in 1u32..200) {
        let s = Segmentation::uniform(n, m);
        prop_assert_eq!(s.num_blocks(), n);
        let mut covered = Vec::new();
        for seg in s.segments() {
            let r = s.blocks_of(seg);
            prop_assert!(!r.is_empty());
            prop_assert!(r.end - r.start <= m);
            covered.extend(r);
        }
        prop_assert_eq!(covered, (0..n).collect::<Vec<_>>());
    }

    /// segment_of() inverts blocks_of() for every block.
    #[test]
    fn segment_of_inverts_blocks_of(sizes in prop::collection::vec(1u32..50, 1..40)) {
        let s = Segmentation::from_sizes(&sizes);
        for seg in s.segments() {
            for b in s.blocks_of(seg) {
                prop_assert_eq!(s.segment_of(b), seg);
            }
        }
    }

    /// The circular scan order from any start is a permutation of all
    /// segments, starts at `start`, and ends at its predecessor.
    #[test]
    fn scan_order_is_a_rotation(n in 1u32..5000, m in 1u32..200, start_raw in 0u32..5000) {
        let s = Segmentation::uniform(n, m);
        let k = s.num_segments();
        let start = SegmentId(start_raw % k);
        let order: Vec<SegmentId> = s.scan_order(start).collect();
        prop_assert_eq!(order.len() as u32, k);
        prop_assert_eq!(order[0], start);
        prop_assert_eq!(*order.last().unwrap(), s.prev(start));
        let mut sorted: Vec<u32> = order.iter().map(|x| x.0).collect();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..k).collect::<Vec<_>>());
        // next() walks the same order.
        for w in order.windows(2) {
            prop_assert_eq!(s.next(w[0]), w[1]);
        }
    }

    /// Segment count is exactly k = ceil(N/m) (Section IV-B), every
    /// segment except possibly the last holds exactly m blocks, and the
    /// last holds the remainder.
    #[test]
    fn uniform_segment_count_is_ceil(n in 1u32..5000, m in 1u32..200) {
        let s = Segmentation::uniform(n, m);
        let k = n.div_ceil(m);
        prop_assert_eq!(s.num_segments(), k);
        for seg in s.segments() {
            let expect = if seg.0 + 1 < k { m } else { n - m * (k - 1) };
            prop_assert_eq!(s.segment_len(seg), expect);
        }
    }

    /// A segment size of at least the file size collapses to one segment
    /// spanning the whole file — a single wave scans everything.
    #[test]
    fn oversized_segment_is_whole_file(n in 1u32..2000, extra in 0u32..100) {
        let s = Segmentation::uniform(n, n + extra);
        prop_assert_eq!(s.num_segments(), 1);
        prop_assert_eq!(s.blocks_of(SegmentId(0)), 0..n);
        // Degenerate circular order: the lone segment is its own
        // successor and predecessor.
        prop_assert_eq!(s.next(SegmentId(0)), SegmentId(0));
        prop_assert_eq!(s.prev(SegmentId(0)), SegmentId(0));
    }

    /// next() and prev() are inverse bijections on any segmentation,
    /// including variable-size ones from dynamic sub-job adjustment.
    #[test]
    fn next_prev_are_inverses(sizes in prop::collection::vec(1u32..50, 1..40)) {
        let s = Segmentation::from_sizes(&sizes);
        for seg in s.segments() {
            prop_assert_eq!(s.prev(s.next(seg)), seg);
            prop_assert_eq!(s.next(s.prev(seg)), seg);
        }
    }

    /// position_from is the inverse index of scan_order.
    #[test]
    fn position_from_matches_scan_order(n in 1u32..2000, m in 1u32..100, start_raw in any::<u32>()) {
        let s = Segmentation::uniform(n, m);
        let k = s.num_segments();
        let start = SegmentId(start_raw % k);
        for (i, seg) in s.scan_order(start).enumerate() {
            prop_assert_eq!(s.position_from(start, seg), i as u32);
        }
    }

    /// Files: block sizes sum to the file size, all blocks but the last
    /// are full, replicas are distinct nodes.
    #[test]
    fn file_blocks_are_consistent(size_mb in 1u64..4000, block_mb in 1u64..256, replication in 1u32..3) {
        let cluster = small_cluster();
        let mut dfs = Dfs::new();
        let mb = s3_dfs::MB;
        let id = dfs.create_file(
            &cluster, "f", size_mb * mb, block_mb * mb, replication,
            &mut RoundRobinPlacement::default(),
        ).unwrap();
        let file = dfs.file(id);
        let blocks: Vec<_> = dfs.blocks_of(id).collect();
        prop_assert_eq!(blocks.len() as u32, file.num_blocks());
        let total: u64 = blocks.iter().map(|b| b.size_bytes).sum();
        prop_assert_eq!(total, size_mb * mb);
        for (i, b) in blocks.iter().enumerate() {
            if i + 1 < blocks.len() {
                prop_assert_eq!(b.size_bytes, block_mb * mb);
            }
            prop_assert_eq!(b.replicas.len() as u32, replication);
            let mut reps = b.replicas.clone();
            reps.sort_unstable();
            reps.dedup();
            prop_assert_eq!(reps.len() as u32, replication, "replicas must be distinct");
        }
    }

    /// Round-robin placement balances primaries within one block of even.
    #[test]
    fn round_robin_is_balanced(num_blocks in 1u64..2000) {
        let cluster = small_cluster();
        let mut dfs = Dfs::new();
        let mb = s3_dfs::MB;
        let id = dfs.create_file(
            &cluster, "f", num_blocks * mb, mb, 1,
            &mut RoundRobinPlacement::default(),
        ).unwrap();
        let mut counts = vec![0u64; cluster.num_nodes()];
        for b in dfs.blocks_of(id) {
            counts[b.replicas[0].0 as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "imbalance: {counts:?}");
    }
}
