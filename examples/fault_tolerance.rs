//! Fault tolerance under S³: TaskTrackers die mid-run, their in-flight
//! work is lost, and the merged sub-jobs re-execute it on survivors —
//! rendered as a per-node timeline so the deaths are visible.
//!
//! ```text
//! cargo run --release -p s3-bench --example fault_tolerance
//! ```

use s3_cluster::{ClusterTopology, FailureSchedule, NodeId, SlowdownSchedule};
use s3_core::S3Scheduler;
use s3_mapreduce::{
    job::requests_from_arrivals, simulate_traced, CostModel, EngineConfig, Trace, TraceKind,
};
use s3_sim::SimTime;
use s3_workloads::{per_node_file, wordcount_normal};

fn main() {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "ft-demo", 1, 64); // 40 GB, 640 blocks
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 20.0]);

    // Three TaskTrackers die while the jobs run. Their DataNodes survive,
    // so the blocks stay readable from other nodes.
    let doomed = [(4u32, 15u64), (18, 30), (31, 45)];
    let mut failures = FailureSchedule::none();
    for &(node, at) in &doomed {
        failures = failures.kill(NodeId(node), SimTime::from_secs(at));
    }

    let (metrics, trace) = simulate_traced(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        &mut S3Scheduler::default(),
        &EngineConfig {
            failures,
            ..EngineConfig::default()
        },
        Some(Trace::new()),
    )
    .expect("jobs survive the deaths");

    println!("two wordcount jobs over 40 GB; TaskTrackers die at t=15/30/45s\n");
    println!(
        "TET {:.1}s  ART {:.1}s  attempts lost {}  blocks scanned {}",
        metrics.tet().as_secs_f64(),
        metrics.art().as_secs_f64(),
        metrics.tasks_failed,
        metrics.blocks_read
    );
    let failed_events = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::MapFailed | TraceKind::ReduceFailed))
        .count();
    println!("failure events in trace: {failed_events}\n");

    // Timeline of the doomed nodes plus two healthy neighbours: the dead
    // lanes go quiet after their death while survivors keep scanning.
    let lanes: Vec<NodeId> = [4u32, 5, 18, 19, 31, 32].map(NodeId).to_vec();
    print!("{}", trace.render_timeline(&lanes, 96));
    println!("\n(nodes 4/18/31 die; 5/19/32 are healthy neighbours)");
}
