//! Deterministic Gutenberg-like text generation.
//!
//! The paper scans 160 GB of Project Gutenberg novels. We cannot ship that
//! corpus, so this module synthesizes prose with the statistical properties
//! wordcount cares about: a Zipf-distributed vocabulary (natural language
//! word frequencies are Zipfian), words of plausible length, and
//! line-oriented layout. Generation is seeded and reproducible.

use s3_sim::rng::ZipfTable;
use s3_sim::SimRng;

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct TextGen {
    vocabulary: Vec<String>,
    zipf: ZipfTable,
    words_per_line: usize,
}

impl TextGen {
    /// A generator with `vocab_size` distinct words and Zipf exponent `s`.
    ///
    /// # Panics
    /// Panics on a zero vocabulary or non-positive exponent.
    pub fn new(vocab_size: usize, zipf_exponent: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary cannot be empty");
        let vocabulary = (0..vocab_size).map(word_for_rank).collect();
        TextGen {
            vocabulary,
            zipf: ZipfTable::new(vocab_size, zipf_exponent),
            words_per_line: 10,
        }
    }

    /// Default shape used by the experiments: 60k-word vocabulary (the
    /// paper reports 60–80k distinct reduce output keys), exponent 1.1.
    pub fn paper_like() -> Self {
        TextGen::new(60_000, 1.1)
    }

    /// Number of distinct words this generator can produce.
    pub fn vocab_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Generate roughly `bytes` of text (terminated at a line boundary at
    /// or after `bytes`), deterministically from `rng`.
    pub fn generate(&self, rng: &mut SimRng, bytes: usize) -> String {
        assert!(bytes > 0, "cannot generate zero bytes");
        let mut out = String::with_capacity(bytes + 128);
        while out.len() < bytes {
            for i in 0..self.words_per_line {
                if i > 0 {
                    out.push(' ');
                }
                let rank = rng.zipf(&self.zipf);
                out.push_str(&self.vocabulary[rank]);
            }
            out.push('\n');
        }
        out
    }

    /// The word assigned to frequency rank `rank` (rank 0 is the most
    /// frequent). Exposed so tests and selection predicates can target
    /// specific frequencies.
    pub fn word(&self, rank: usize) -> &str {
        &self.vocabulary[rank]
    }
}

/// Convenience: a seeded, paper-like corpus already split into an
/// [`s3_engine::BlockStore`] — what examples, benches, and the scan server
/// consume.
pub fn corpus(seed: u64, bytes: usize, block_bytes: usize) -> s3_engine::BlockStore {
    let gen = TextGen::paper_like();
    let text = gen.generate(&mut SimRng::seed_from_u64(seed), bytes);
    s3_engine::BlockStore::from_text(&text, block_bytes)
}

/// Deterministic pseudo-word for a vocabulary rank: pronounceable
/// consonant-vowel syllables, so different ranks are distinct words.
fn word_for_rank(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"btkdlmnprsvz";
    const VOWELS: &[u8] = b"aeiou";
    let mut n = rank + 1;
    let mut w = String::new();
    while n > 0 {
        let c = CONSONANTS[n % CONSONANTS.len()];
        n /= CONSONANTS.len();
        let v = VOWELS[n % VOWELS.len()];
        n /= VOWELS.len();
        w.push(c as char);
        w.push(v as char);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_across_ranks() {
        let seen: std::collections::HashSet<String> = (0..10_000).map(word_for_rank).collect();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TextGen::new(1000, 1.1);
        let a = g.generate(&mut SimRng::seed_from_u64(7), 4096);
        let b = g.generate(&mut SimRng::seed_from_u64(7), 4096);
        assert_eq!(a, b);
        let c = g.generate(&mut SimRng::seed_from_u64(8), 4096);
        assert_ne!(a, c);
    }

    #[test]
    fn generates_at_least_requested_bytes_line_terminated() {
        let g = TextGen::new(100, 1.1);
        let t = g.generate(&mut SimRng::seed_from_u64(1), 1000);
        assert!(t.len() >= 1000);
        assert!(t.ends_with('\n'));
        for line in t.lines() {
            assert_eq!(line.split_whitespace().count(), 10);
        }
    }

    #[test]
    fn corpus_helper_is_deterministic() {
        let a = corpus(9, 100_000, 4096);
        let b = corpus(9, 100_000, 4096);
        assert_eq!(a.num_blocks(), b.num_blocks());
        assert_eq!(a.block(0), b.block(0));
        assert!(a.total_bytes() >= 100_000);
    }

    #[test]
    fn frequencies_are_zipfian() {
        let g = TextGen::new(500, 1.2);
        let t = g.generate(&mut SimRng::seed_from_u64(3), 200_000);
        let mut counts = std::collections::HashMap::new();
        for w in t.split_whitespace() {
            *counts.entry(w).or_insert(0u32) += 1;
        }
        let top = counts[g.word(0)];
        let mid = counts.get(g.word(50)).copied().unwrap_or(0);
        assert!(top > mid * 5, "rank 0 ({top}) should dwarf rank 50 ({mid})");
    }
}
