//! A fair scheduler in the style of Facebook's Hadoop fair scheduler
//! (Section II-B's *partial utilization* category).
//!
//! All running jobs share the cluster: when a map slot frees, it goes to
//! the incomplete job with the fewest currently running map tasks (a
//! max-min share in steady state). Jobs run concurrently, so nobody is
//! blocked behind a queue — but every job still scans the file by itself,
//! and with the slots split `n` ways each job runs roughly `n` times
//! longer: exactly the two drawbacks the paper calls out ("since each job
//! is allocated less resources, its execution time will be longer" and "it
//! misses sharing opportunities").

use s3_cluster::NodeId;
use s3_mapreduce::{Batch, BatchKey, JobId, MapTaskSpec, ReduceTaskSpec, SchedCtx, Scheduler};
use s3_sim::SimDuration;

/// Fair-share scheduler state.
#[derive(Debug, Default)]
pub struct FairScheduler {
    batches: Vec<Batch>,
    next_key: u64,
}

impl FairScheduler {
    /// A fresh fair scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    fn batch_mut(&mut self, key: BatchKey) -> &mut Batch {
        self.batches
            .iter_mut()
            .find(|b| b.key() == key)
            .expect("completion for unknown batch")
    }

    fn reap(&mut self, ctx: &mut SchedCtx<'_>, key: BatchKey) {
        if let Some(pos) = self.batches.iter().position(|b| b.key() == key) {
            if self.batches[pos].is_complete() {
                let batch = self.batches.remove(pos);
                for &job in batch.jobs() {
                    ctx.complete_job(job);
                }
            }
        }
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> String {
        "Fair".into()
    }

    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
        let req = ctx.jobs.get(job);
        let blocks = ctx.dfs.file(req.file).blocks.clone();
        let key = BatchKey(self.next_key);
        self.next_key += 1;
        let ready =
            ctx.now + SimDuration::from_secs_f64(ctx.cost.submit_overhead_secs(blocks.len()));
        self.batches.push(Batch::new(
            key,
            vec![job],
            &blocks,
            ctx.jobs,
            ctx.dfs,
            ready,
            ctx.map_slots(),
        ));
    }

    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec> {
        // Max-min fairness: offer the slot to the job with the smallest
        // running share that still has work; break ties by arrival order
        // (vector order).
        let now = ctx.now;
        let mut order: Vec<usize> = (0..self.batches.len())
            .filter(|&i| {
                let b = &self.batches[i];
                !b.maps_exhausted() && now >= b.ready_at()
            })
            .collect();
        order.sort_by_key(|&i| self.batches[i].running_maps());
        for i in order {
            if let Some(spec) = self.batches[i].next_map_for(node, now, ctx.dfs, ctx.cluster) {
                return Some(spec);
            }
        }
        None
    }

    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId) -> Option<ReduceTaskSpec> {
        let now = ctx.now;
        let mut order: Vec<usize> = (0..self.batches.len()).collect();
        order.sort_by_key(|&i| self.batches[i].running_reduces());
        for i in order {
            if let Some(spec) = self.batches[i].next_reduce(now) {
                return Some(spec);
            }
        }
        None
    }

    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).on_map_done();
        self.reap(ctx, spec.batch);
    }

    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).on_reduce_done();
        self.reap(ctx, spec.batch);
    }

    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.batch_mut(spec.batch).requeue_map(spec.block);
    }

    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.batch_mut(spec.batch).requeue_reduce(spec.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FifoScheduler;
    use s3_cluster::{ClusterTopology, SlowdownSchedule};
    use s3_dfs::{Dfs, RoundRobinPlacement, MB};
    use s3_mapreduce::{simulate, CostModel, EngineConfig, RunMetrics, Scheduler};
    use s3_workloads::wordcount_normal;

    fn run(scheduler: &mut dyn Scheduler, blocks: u64, arrivals: &[f64]) -> RunMetrics {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        let workload =
            s3_mapreduce::job::requests_from_arrivals(&wordcount_normal(), file, arrivals);
        simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            scheduler,
            &EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn all_jobs_complete_without_sharing() {
        let m = run(&mut FairScheduler::new(), 160, &[0.0, 1.0, 2.0]);
        assert_eq!(m.outcomes.len(), 3);
        // Fair scheduling never shares scans.
        assert_eq!(m.blocks_read, 480);
        assert_eq!(m.mb_read, m.logical_mb_scanned);
    }

    #[test]
    fn concurrent_jobs_interleave_rather_than_queue() {
        // Under FIFO job 3 waits for jobs 1-2; under fair sharing all three
        // progress together, so responses are much closer to each other.
        let fair = run(&mut FairScheduler::new(), 160, &[0.0, 1.0, 2.0]);
        let fifo = run(&mut FifoScheduler::new(), 160, &[0.0, 1.0, 2.0]);
        let spread = |m: &RunMetrics| {
            let r: Vec<f64> = m
                .outcomes
                .iter()
                .map(|o| o.response().as_secs_f64())
                .collect();
            r.iter().cloned().fold(0.0, f64::max) / r.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(
            spread(&fair) < spread(&fifo),
            "fair {} vs fifo {}",
            spread(&fair),
            spread(&fifo)
        );
    }

    #[test]
    fn fair_share_slows_each_job_down() {
        // The paper's first drawback: each of n concurrent jobs sees ~1/n
        // of the slots, so even the first job's response grows.
        let single = run(&mut FairScheduler::new(), 160, &[0.0]);
        let triple = run(&mut FairScheduler::new(), 160, &[0.0, 0.5, 1.0]);
        let r1 = single.outcomes[0].response().as_secs_f64();
        let r3 = triple.outcomes[0].response().as_secs_f64();
        assert!(r3 > 1.8 * r1, "single {r1} vs shared {r3}");
    }

    #[test]
    fn single_job_fair_equals_fifo() {
        let fair = run(&mut FairScheduler::new(), 120, &[0.0]);
        let fifo = run(&mut FifoScheduler::new(), 120, &[0.0]);
        assert_eq!(fair.blocks_read, fifo.blocks_read);
        let diff = (fair.tet().as_secs_f64() - fifo.tet().as_secs_f64()).abs();
        assert!(diff < 1.0, "one job has nothing to fair-share: {diff}");
    }
}
