#![warn(missing_docs)]

//! # s3-core — the S³ shared scan scheduler and its baselines
//!
//! This crate implements the contribution of *"S³: An Efficient Shared Scan
//! Scheduler on MapReduce Framework"* (Shi, Li, Tan; ICPP 2011) against the
//! engine model in `s3-mapreduce`:
//!
//! - [`S3Scheduler`] — the paper's scheduler: files are organized into
//!   segments scanned in a circular order; jobs are split into sub-jobs
//!   aligned at segment boundaries; the Job Queue Manager merges all
//!   sub-jobs that touch the next segment into one batch per iteration
//!   (Algorithm 1); partial job initialization submits one merged sub-job
//!   at a time, with periodic slot checking and dynamic sub-job adjustment.
//! - [`FifoScheduler`] — Hadoop's default no-sharing FIFO baseline.
//! - [`MRShareScheduler`] — the file-based shared-scan baseline adapted
//!   from MRShare: jobs are grouped into batches up front and each batch is
//!   processed as one merged job.
//! - [`FairScheduler`] / [`CapacityScheduler`] — the *partial utilization*
//!   schedulers of Section II-B (Facebook's fair scheduler, Yahoo!'s
//!   capacity scheduler), provided as additional no-sharing baselines.
//! - [`analytic`] — closed-form TET/ART for the idealized two-job worked
//!   examples of Section III (Examples 1–3).

pub mod analytic;
pub mod capacity;
pub mod fair;
pub mod fifo;
pub mod mrshare;
pub mod optimizer;
pub mod s3;

pub use capacity::CapacityScheduler;
pub use fair::FairScheduler;
pub use fifo::FifoScheduler;
pub use mrshare::{BatchPolicy, MRShareScheduler};
pub use optimizer::{group_cost, optimize_grouping, Grouping};
pub use s3::{PriorityPolicy, S3Config, S3Scheduler, SubJobSizing};
// The job priority the policy keys on, so `PriorityPolicy` is usable
// without a direct `s3_mapreduce` dependency. The live engine's
// `s3_engine::QosClass` mirrors these levels for admission control.
pub use s3_mapreduce::Priority;
