//! The MRShare grouping optimizer (Nykiel et al., PVLDB 2010, §4).
//!
//! MRShare's central algorithm: given a set of jobs that all scan the same
//! file, decide which jobs to *merge* into shared-scan groups. Merging
//! saves scans but inflates the merged job's sort/shuffle (every member's
//! map output is sorted together), so merging everything is not always
//! optimal — jobs with large map outputs can be cheaper alone. Nykiel et
//! al. show the optimal solution for their cost model sorts jobs by map
//! output ratio and splits the sorted list into **consecutive** groups,
//! found by dynamic programming over split points.
//!
//! This module reproduces that algorithm against this workspace's
//! [`CostModel`]: the estimated cost of a group of jobs over an `N`-block
//! file is one shared scan plus each member's per-job map-side work plus
//! the merged sort/shuffle/reduce volume.

use s3_mapreduce::{CostModel, JobProfile, Locality};
use s3_cluster::{NetworkModel, NodeSpec};

/// Estimated processing cost (machine-seconds) of running `group` as one
/// merged job over `num_blocks` blocks of `block_mb` MB.
pub fn group_cost(
    group: &[&JobProfile],
    num_blocks: u64,
    block_mb: f64,
    cost: &CostModel,
    node: &NodeSpec,
    network: &NetworkModel,
) -> f64 {
    assert!(!group.is_empty(), "cannot cost an empty group");
    let map_per_block = cost.map_task_secs(block_mb, Locality::NodeLocal, group, node, network);
    let total_mb = num_blocks as f64 * block_mb;
    // Reduce side: each member's full shuffle volume over its reducers.
    let partitions = group
        .iter()
        .map(|p| p.num_reduce_tasks)
        .max()
        .expect("non-empty group");
    let reduce_total = if partitions == 0 {
        0.0
    } else {
        let shuffle_mb_per_job: Vec<f64> = group
            .iter()
            .map(|p| p.map_output_mb(total_mb) / partitions as f64)
            .collect();
        let per_reduce = cost.reduce_task_secs(
            &shuffle_mb_per_job,
            group,
            1.0, // machine-seconds view: count the whole shuffle volume
            node,
            network,
        );
        per_reduce * partitions as f64
    };
    map_per_block * num_blocks as f64 + reduce_total + cost.submit_overhead_secs(num_blocks as usize)
}

/// Result of the grouping optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Indices into the *input* job list, grouped; groups are consecutive
    /// in map-output-ratio order.
    pub groups: Vec<Vec<usize>>,
    /// Estimated total machine-seconds under this grouping.
    pub total_cost: f64,
    /// Estimated machine-seconds had every job run alone.
    pub solo_cost: f64,
}

impl Grouping {
    /// Estimated saving over independent execution (non-negative by
    /// construction: singleton groups are always a candidate).
    pub fn saving(&self) -> f64 {
        (self.solo_cost - self.total_cost).max(0.0)
    }
}

/// Find the cost-optimal partition of `jobs` into shared-scan groups via
/// the MRShare DP: sort by map output ratio, then choose split points
/// minimizing the summed [`group_cost`].
///
/// Runs in O(n²) group evaluations.
pub fn optimize_grouping(
    jobs: &[&JobProfile],
    num_blocks: u64,
    block_mb: f64,
    cost: &CostModel,
    node: &NodeSpec,
    network: &NetworkModel,
) -> Grouping {
    assert!(!jobs.is_empty(), "nothing to group");
    let n = jobs.len();

    // Sort indices by map output ratio (MRShare's ordering lemma).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .map_output_ratio
            .partial_cmp(&jobs[b].map_output_ratio)
            .expect("finite ratios")
    });

    // dp[i] = min cost of grouping the first i sorted jobs.
    let mut dp = vec![f64::INFINITY; n + 1];
    let mut split = vec![0usize; n + 1];
    dp[0] = 0.0;
    for i in 1..=n {
        for j in 0..i {
            let members: Vec<&JobProfile> = order[j..i].iter().map(|&k| jobs[k]).collect();
            let c = dp[j] + group_cost(&members, num_blocks, block_mb, cost, node, network);
            if c < dp[i] {
                dp[i] = c;
                split[i] = j;
            }
        }
    }

    // Reconstruct groups.
    let mut groups = Vec::new();
    let mut i = n;
    while i > 0 {
        let j = split[i];
        groups.push(order[j..i].to_vec());
        i = j;
    }
    groups.reverse();

    let solo_cost: f64 = jobs
        .iter()
        .map(|p| group_cost(&[*p], num_blocks, block_mb, cost, node, network))
        .sum();

    Grouping {
        groups,
        total_cost: dp[n],
        solo_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_workloads::{wordcount_heavy, wordcount_normal};

    fn env() -> (CostModel, NodeSpec, NetworkModel) {
        (
            CostModel::deterministic(),
            NodeSpec::default(),
            NetworkModel::one_gbps(),
        )
    }

    #[test]
    fn identical_light_jobs_merge_into_one_group() {
        // I/O-dominant jobs: sharing the scan is a pure win, so the DP
        // must produce a single group.
        let (cost, node, net) = env();
        let p = wordcount_normal();
        let jobs: Vec<&JobProfile> = std::iter::repeat_n(&*p, 6).collect();
        let g = optimize_grouping(&jobs, 2560, 64.0, &cost, &node, &net);
        assert_eq!(g.groups.len(), 1, "{:?}", g.groups);
        assert_eq!(g.groups[0].len(), 6);
        assert!(g.saving() > 0.0);
        assert!(g.total_cost < g.solo_cost);
    }

    #[test]
    fn grouping_covers_every_job_exactly_once() {
        let (cost, node, net) = env();
        let normal = wordcount_normal();
        let heavy = wordcount_heavy();
        let jobs: Vec<&JobProfile> =
            vec![&normal, &heavy, &normal, &heavy, &normal, &normal, &heavy];
        let g = optimize_grouping(&jobs, 1000, 64.0, &cost, &node, &net);
        let mut seen: Vec<usize> = g.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn groups_are_consecutive_in_output_ratio_order() {
        let (cost, node, net) = env();
        let normal = wordcount_normal();
        let heavy = wordcount_heavy();
        let jobs: Vec<&JobProfile> = vec![&heavy, &normal, &heavy, &normal];
        let g = optimize_grouping(&jobs, 1000, 64.0, &cost, &node, &net);
        // Within each group all ratios must form a contiguous range of the
        // sorted ratio sequence.
        let mut ratios: Vec<f64> = jobs.iter().map(|p| p.map_output_ratio).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut cursor = 0;
        for group in &g.groups {
            for &idx in group {
                assert_eq!(
                    jobs[idx].map_output_ratio, ratios[cursor],
                    "groups must be consecutive in sorted order"
                );
                cursor += 1;
            }
        }
    }

    #[test]
    fn never_worse_than_solo_or_single_batch() {
        // The DP considers all-singletons and the single batch among its
        // candidates, so it can't be worse than either.
        let (cost, node, net) = env();
        let normal = wordcount_normal();
        let heavy = wordcount_heavy();
        let jobs: Vec<&JobProfile> = vec![&normal, &normal, &heavy, &heavy, &heavy];
        let g = optimize_grouping(&jobs, 500, 64.0, &cost, &node, &net);
        assert!(g.total_cost <= g.solo_cost + 1e-9);
        let single = group_cost(&jobs, 500, 64.0, &cost, &node, &net);
        assert!(g.total_cost <= single + 1e-9);
    }

    #[test]
    fn single_job_is_a_singleton_group() {
        let (cost, node, net) = env();
        let p = wordcount_normal();
        let g = optimize_grouping(&[&p], 100, 64.0, &cost, &node, &net);
        assert_eq!(g.groups, vec![vec![0]]);
        assert_eq!(g.saving(), 0.0);
    }

    #[test]
    fn group_cost_grows_with_members_but_sublinearly_for_light_jobs() {
        let (cost, node, net) = env();
        let p = wordcount_normal();
        let one = group_cost(&[&p], 1000, 64.0, &cost, &node, &net);
        let five: Vec<&JobProfile> = std::iter::repeat_n(&*p, 5).collect();
        let merged = group_cost(&five, 1000, 64.0, &cost, &node, &net);
        assert!(merged > one);
        assert!(merged < 5.0 * one, "sharing must beat 5 scans");
    }

    #[test]
    #[should_panic(expected = "nothing to group")]
    fn empty_input_panics() {
        let (cost, node, net) = env();
        optimize_grouping(&[], 10, 64.0, &cost, &node, &net);
    }
}
