//! Cross-validation: the event-driven simulator, configured with
//! negligible overheads and noise, must converge to the closed-form
//! Section III model (`s3_core::analytic`) on the paper's worked examples.
//!
//! This ties the two independent implementations of the paper's semantics
//! together: if either the analytic formulas or the simulator's scheduling
//! logic drifted, these tests would split.

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::analytic::Scenario;
use s3_core::{FifoScheduler, MRShareScheduler, S3Config, S3Scheduler, SubJobSizing};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, JobProfile, RunMetrics,
    Scheduler,
};
use s3_dfs::{Dfs, RoundRobinPlacement, MB};
use std::sync::Arc;

/// A world tuned so one job takes ~100 s: 40 blocks (one per node), one
/// wave of 20 s maps, five waves per job... more precisely: 200 blocks of
/// 64 MB where each block takes ~20 s to map -> 5 waves x 20 s = 100 s,
/// with every overhead zeroed out.
fn world() -> (ClusterTopology, Dfs, s3_dfs::FileId, Arc<JobProfile>, CostModel) {
    let cluster = ClusterTopology::paper_cluster();
    let mut dfs = Dfs::new();
    let file = dfs
        .create_file(
            &cluster,
            "ideal",
            200 * 64 * MB,
            64 * MB,
            1,
            &mut RoundRobinPlacement::default(),
        )
        .expect("create file");
    // Pure-scan job: 20 s per 64 MB block, nothing else.
    let profile = Arc::new(JobProfile {
        name: "ideal".into(),
        map_cpu_s_per_mb: 0.0,
        map_output_ratio: 0.0,
        map_output_records_per_mb: 0.0,
        reduce_cpu_s_per_mb: 0.0,
        reduce_output_ratio: 0.0,
        num_reduce_tasks: 0, // map-only: completion == last scan done
    });
    let cost = CostModel {
        map_task_startup_s: 0.0,
        shared_parse_s_per_mb: 20.0 / 64.0, // 20 s per block, fully shared
        reduce_task_startup_s: 0.0,
        sort_s_per_mb: 0.0,
        reduce_merge_s_per_mb: 0.0,
        shuffle_intra_rack_fraction: 0.35,
        job_submit_overhead_s: 0.0,
        task_init_s_per_task: 0.0,
        heartbeat_s: 0.05,
        noise_sigma: 0.0,
        noise_limit: 1.5,
    };
    (cluster, dfs, file, profile, cost)
}

fn run(scheduler: &mut dyn Scheduler, arrivals: &[f64]) -> RunMetrics {
    let (cluster, dfs, file, profile, cost) = world();
    let workload = requests_from_arrivals(&profile, file, arrivals);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dfs,
        &cost,
        &workload,
        scheduler,
        &EngineConfig::default(),
    )
    .expect("idealized run completes")
}

fn ideal_s3() -> S3Scheduler {
    S3Scheduler::new(S3Config {
        // One wave per sub-job: 5 segments over the 200-block file, so a
        // job arriving 20 s in aligns with segment 2 exactly as the
        // paper's examples assume.
        sizing: SubJobSizing::Waves(1),
        jqm_latency_s: 0.0,
        ..S3Config::default()
    })
}

/// Allow a few percent for heartbeat quantization.
fn close(measured: f64, expected: f64) -> bool {
    (measured - expected).abs() / expected < 0.05
}

#[test]
fn single_job_takes_about_100_seconds() {
    let m = run(&mut FifoScheduler::new(), &[0.0]);
    let t = m.tet().as_secs_f64();
    assert!(close(t, 100.0), "single job {t}");
}

#[test]
fn example1_fifo_matches_analytic() {
    let a = Scenario::new(100.0, vec![0.0, 20.0]).fifo();
    let m = run(&mut FifoScheduler::new(), &[0.0, 20.0]);
    assert!(close(m.tet().as_secs_f64(), a.tet), "TET {} vs {}", m.tet(), a.tet);
    assert!(close(m.art().as_secs_f64(), a.art), "ART {} vs {}", m.art(), a.art);
}

#[test]
fn example2_fifo_matches_analytic() {
    let a = Scenario::new(100.0, vec![0.0, 80.0]).fifo();
    let m = run(&mut FifoScheduler::new(), &[0.0, 80.0]);
    assert!(close(m.tet().as_secs_f64(), a.tet), "TET {} vs {}", m.tet(), a.tet);
    assert!(close(m.art().as_secs_f64(), a.art), "ART {} vs {}", m.art(), a.art);
}

#[test]
fn example1_mrshare_matches_analytic() {
    let a = Scenario::new(100.0, vec![0.0, 20.0]).mrshare_single();
    let mut sched = MRShareScheduler::mrs1(2);
    // Zero out the merge-planning cost the calibrated model adds.
    let m = {
        let (cluster, dfs, file, profile, mut cost) = world();
        cost.job_submit_overhead_s = 0.0;
        let workload = requests_from_arrivals(&profile, file, &[0.0, 20.0]);
        simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &cost,
            &workload,
            &mut sched,
            &EngineConfig::default(),
        )
        .expect("completes")
    };
    // MRShare's merge-planning adds 2 x 2.5 s = 5 s; allow for it.
    let tet = m.tet().as_secs_f64();
    let art = m.art().as_secs_f64();
    assert!((tet - a.tet).abs() < 8.0, "TET {tet} vs {}", a.tet);
    assert!((art - a.art).abs() < 8.0, "ART {art} vs {}", a.art);
}

#[test]
fn example3_s3_matches_analytic_dense_and_sparse() {
    for arrivals in [vec![0.0, 20.0], vec![0.0, 80.0]] {
        let a = Scenario::new(100.0, arrivals.clone()).s3();
        let m = run(&mut ideal_s3(), &arrivals);
        let tet = m.tet().as_secs_f64();
        let art = m.art().as_secs_f64();
        assert!(
            close(tet, a.tet),
            "arrivals {arrivals:?}: TET {tet} vs analytic {}",
            a.tet
        );
        assert!(
            close(art, a.art),
            "arrivals {arrivals:?}: ART {art} vs analytic {}",
            a.art
        );
    }
}

#[test]
fn s3_shares_the_expected_fraction() {
    // Example 3's premise: arriving 20 s in, J2 shares 80% of the data.
    // Sub-jobs of 40 blocks: J1 scans segments 1..5 alone until J2 joins
    // at segment 2 -> segments 2..5 (160 blocks) shared, segment 1
    // rescanned for J2.
    let m = run(&mut ideal_s3(), &[0.0, 20.0]);
    assert_eq!(m.blocks_read, 200 + 40, "one full scan plus J2's wrap");
}
