//! Seeded fault-plan generation for deterministic chaos testing.
//!
//! A [`ChaosPlan`] is a reproducible set of injected faults — permanent
//! TaskTracker deaths, persistent stragglers, and transient slot slowdowns
//! — drawn from a single 64-bit seed. Equal seeds yield byte-identical
//! plans, so any failing run found by the `s3chaos` fuzzer is replayable
//! from its seed alone, and a failing plan can be minimized by dropping
//! faults one at a time ([`ChaosPlan::without_fault`]) while the failure
//! persists.
//!
//! Transient slowdowns are the interesting case for the S³ scheduler's
//! periodic slot checking: the slowed node should be *excluded* while the
//! window lasts and *re-admitted* once it recovers, and the trace-level
//! invariant checker verifies no task started on it in between.

use crate::node::NodeId;
use crate::slowdown::{FailureSchedule, SlowdownSchedule, SpeedProfile};
use s3_sim::{SimRng, SimTime};

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Permanent TaskTracker death at `at_s` (the co-located DataNode
    /// survives, so the node's blocks stay readable remotely).
    Death {
        /// The doomed node.
        node: NodeId,
        /// Death time, seconds.
        at_s: f64,
    },
    /// Persistent straggler: the node runs at `factor` speed from `from_s`
    /// onwards and never recovers.
    Straggler {
        /// The slowed node.
        node: NodeId,
        /// Onset time, seconds.
        from_s: f64,
        /// Speed multiplier in `(0, 1)`.
        factor: f64,
    },
    /// Transient slot slowdown: `factor` during `[from_s, until_s)`,
    /// nominal again afterwards. Drives slot exclusion followed by late
    /// re-admission under periodic slot checking.
    Transient {
        /// The slowed node.
        node: NodeId,
        /// Onset time, seconds.
        from_s: f64,
        /// Recovery time, seconds.
        until_s: f64,
        /// Speed multiplier in `(0, 1)` while the window lasts.
        factor: f64,
    },
}

impl Fault {
    /// The node this fault targets.
    pub fn node(&self) -> NodeId {
        match *self {
            Fault::Death { node, .. }
            | Fault::Straggler { node, .. }
            | Fault::Transient { node, .. } => node,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Fault::Death { node, at_s } => write!(f, "death of {node} at {at_s:.1}s"),
            Fault::Straggler {
                node,
                from_s,
                factor,
            } => write!(f, "straggler {node} at {factor:.2}x from {from_s:.1}s"),
            Fault::Transient {
                node,
                from_s,
                until_s,
                factor,
            } => write!(
                f,
                "transient {node} at {factor:.2}x during {from_s:.1}s..{until_s:.1}s"
            ),
        }
    }
}

/// Bounds for chaos plan generation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Faults land inside `[5, horizon_s]` seconds of simulated time.
    pub horizon_s: f64,
    /// Maximum permanent deaths per plan.
    pub max_deaths: u32,
    /// Maximum persistent stragglers per plan.
    pub max_stragglers: u32,
    /// Maximum transient slowdowns per plan.
    pub max_transients: u32,
    /// Hard cap on the fraction of nodes that may die (keeps the cluster
    /// able to finish the workload).
    pub max_dead_fraction: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            horizon_s: 120.0,
            max_deaths: 3,
            max_stragglers: 2,
            max_transients: 2,
            max_dead_fraction: 0.25,
        }
    }
}

/// A reproducible set of faults drawn from one seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// The injected faults, in generation order. Every fault targets a
    /// distinct node, so dropping one never changes another's meaning.
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// Generate the plan for `seed` over `nodes`. Deterministic: equal
    /// inputs yield equal plans.
    pub fn generate(seed: u64, nodes: &[NodeId], cfg: &ChaosConfig) -> ChaosPlan {
        assert!(!nodes.is_empty(), "chaos needs at least one node");
        let mut rng = SimRng::seed_from_u64(seed);

        // Victim pool: a seeded shuffle, consumed from the front so every
        // fault targets a distinct node.
        let mut pool: Vec<NodeId> = nodes.to_vec();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.index(i + 1));
        }
        let mut pool = pool.into_iter();

        let dead_cap = ((nodes.len() as f64 * cfg.max_dead_fraction) as u32).max(1);
        let n_deaths = (rng.index(cfg.max_deaths as usize + 1) as u32).min(dead_cap);
        let n_stragglers = rng.index(cfg.max_stragglers as usize + 1) as u32;
        let n_transients = rng.index(cfg.max_transients as usize + 1) as u32;

        let mut faults = Vec::new();
        for _ in 0..n_deaths {
            let Some(node) = pool.next() else { break };
            faults.push(Fault::Death {
                node,
                at_s: rng.uniform(5.0, cfg.horizon_s),
            });
        }
        for _ in 0..n_stragglers {
            let Some(node) = pool.next() else { break };
            faults.push(Fault::Straggler {
                node,
                from_s: rng.uniform(5.0, cfg.horizon_s),
                factor: rng.uniform(0.05, 0.45),
            });
        }
        for _ in 0..n_transients {
            let Some(node) = pool.next() else { break };
            let from_s = rng.uniform(5.0, cfg.horizon_s);
            faults.push(Fault::Transient {
                node,
                from_s,
                until_s: from_s + rng.uniform(10.0, 40.0),
                factor: rng.uniform(0.05, 0.45),
            });
        }
        ChaosPlan { faults }
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plan with fault `idx` removed — the minimization step.
    pub fn without_fault(&self, idx: usize) -> ChaosPlan {
        let mut faults = self.faults.clone();
        faults.remove(idx);
        ChaosPlan { faults }
    }

    /// The deaths as an engine-ready [`FailureSchedule`].
    pub fn failures(&self) -> FailureSchedule {
        let mut f = FailureSchedule::none();
        for fault in &self.faults {
            if let Fault::Death { node, at_s } = *fault {
                f = f.kill(node, SimTime::from_secs_f64(at_s));
            }
        }
        f
    }

    /// The slowdowns as an engine-ready [`SlowdownSchedule`]. Each fault
    /// targets a distinct node, so profiles never need merging.
    pub fn slowdowns(&self) -> SlowdownSchedule {
        let mut s = SlowdownSchedule::none();
        for fault in &self.faults {
            match *fault {
                Fault::Death { .. } => {}
                Fault::Straggler {
                    node,
                    from_s,
                    factor,
                } => s.set(
                    node,
                    SpeedProfile::nominal().change_at(SimTime::from_secs_f64(from_s), factor),
                ),
                Fault::Transient {
                    node,
                    from_s,
                    until_s,
                    factor,
                } => s.set(
                    node,
                    SpeedProfile::slow_between(
                        SimTime::from_secs_f64(from_s),
                        SimTime::from_secs_f64(until_s),
                        factor,
                    ),
                ),
            }
        }
        s
    }

    /// One line per fault, for fuzzer reports.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return "  (no faults)\n".into();
        }
        let mut out = String::new();
        for (i, fault) in self.faults.iter().enumerate() {
            out.push_str(&format!("  [{i}] {fault}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        let a = ChaosPlan::generate(42, &nodes(40), &cfg);
        let b = ChaosPlan::generate(42, &nodes(40), &cfg);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(43, &nodes(40), &cfg);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn faults_target_distinct_nodes_within_bounds() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let plan = ChaosPlan::generate(seed, &nodes(40), &cfg);
            let mut seen = std::collections::BTreeSet::new();
            for f in &plan.faults {
                assert!(seen.insert(f.node()), "seed {seed}: duplicate victim");
                match *f {
                    Fault::Death { at_s, .. } => {
                        assert!((5.0..=cfg.horizon_s).contains(&at_s));
                    }
                    Fault::Straggler { from_s, factor, .. } => {
                        assert!((5.0..=cfg.horizon_s).contains(&from_s));
                        assert!((0.0..0.5).contains(&factor));
                    }
                    Fault::Transient {
                        from_s,
                        until_s,
                        factor,
                        ..
                    } => {
                        assert!(until_s > from_s);
                        assert!((0.0..0.5).contains(&factor));
                    }
                }
            }
            let deaths = plan.failures().doomed_nodes().count();
            assert!(deaths <= 10, "seed {seed}: too many deaths");
        }
    }

    #[test]
    fn schedules_reflect_the_faults() {
        let plan = ChaosPlan {
            faults: vec![
                Fault::Death {
                    node: NodeId(1),
                    at_s: 30.0,
                },
                Fault::Straggler {
                    node: NodeId(2),
                    from_s: 10.0,
                    factor: 0.2,
                },
                Fault::Transient {
                    node: NodeId(3),
                    from_s: 20.0,
                    until_s: 50.0,
                    factor: 0.1,
                },
            ],
        };
        let failures = plan.failures();
        assert!(failures.is_alive(NodeId(1), SimTime::from_secs(29)));
        assert!(!failures.is_alive(NodeId(1), SimTime::from_secs(31)));
        let slow = plan.slowdowns();
        assert_eq!(slow.factor_at(NodeId(2), SimTime::from_secs(11)), 0.2);
        assert_eq!(slow.factor_at(NodeId(3), SimTime::from_secs(25)), 0.1);
        assert_eq!(slow.factor_at(NodeId(3), SimTime::from_secs(60)), 1.0);
        assert_eq!(slow.factor_at(NodeId(1), SimTime::from_secs(60)), 1.0);
    }

    #[test]
    fn minimization_removes_one_fault() {
        let cfg = ChaosConfig::default();
        // Find a seed with at least two faults.
        let plan = (0..100)
            .map(|s| ChaosPlan::generate(s, &nodes(40), &cfg))
            .find(|p| p.len() >= 2)
            .expect("some seed has >= 2 faults");
        let smaller = plan.without_fault(0);
        assert_eq!(smaller.len(), plan.len() - 1);
        assert_eq!(smaller.faults[0], plan.faults[1]);
    }

    #[test]
    fn describe_lists_every_fault() {
        let cfg = ChaosConfig::default();
        let plan = (0..100)
            .map(|s| ChaosPlan::generate(s, &nodes(40), &cfg))
            .find(|p| !p.is_empty())
            .expect("some seed has faults");
        let text = plan.describe();
        assert_eq!(text.lines().count(), plan.len());
        assert!(ChaosPlan::default().describe().contains("no faults"));
    }
}
