//! Run metrics: the paper's TET and ART plus task-level summaries.

use crate::job::JobId;
use s3_sim::{Accumulator, SimDuration, SimTime, Summary};
use serde::{Deserialize, Serialize};

/// Submission and completion record of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// When it was submitted.
    pub submitted: SimTime,
    /// When its last task finished (its results became available).
    pub completed: SimTime,
}

impl JobOutcome {
    /// The job's response time (submission to completion).
    pub fn response(&self) -> SimDuration {
        self.completed.saturating_since(self.submitted)
    }
}

/// Everything measured over one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Per-job outcomes in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Map task duration statistics.
    pub map_task_time: Summary,
    /// Reduce task duration statistics.
    pub reduce_task_time: Summary,
    /// Number of block scans actually performed.
    pub blocks_read: u64,
    /// MB actually read from storage.
    pub mb_read: f64,
    /// MB that would have been read had every job scanned alone
    /// (`Σ block_mb × jobs_sharing_the_scan`): the shared-scan saving is
    /// `logical_mb_scanned - mb_read`.
    pub logical_mb_scanned: f64,
    /// Number of map tasks by locality: (node-local, rack-local, off-rack).
    pub locality_counts: (u64, u64, u64),
    /// Speculative backup attempts launched (0 unless speculation enabled).
    pub speculative_attempts: u64,
    /// Backup attempts that finished before the original.
    pub speculative_wins: u64,
    /// Attempts (original or backup) whose work was discarded because a
    /// rival finished first.
    pub speculative_wasted: u64,
    /// Task attempts lost to TaskTracker deaths and re-executed.
    pub tasks_failed: u64,
    /// Simulated instant the run finished.
    pub sim_end: SimTime,
}

impl RunMetrics {
    /// Total execution time: first submission to last completion
    /// (Section III-B).
    pub fn tet(&self) -> SimDuration {
        let first = self.outcomes.iter().map(|o| o.submitted).min();
        let last = self.outcomes.iter().map(|o| o.completed).max();
        match (first, last) {
            (Some(f), Some(l)) => l.saturating_since(f),
            _ => SimDuration::ZERO,
        }
    }

    /// Average response time: mean of per-job submission-to-completion
    /// intervals (Section III-B).
    pub fn art(&self) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.outcomes.iter().map(|o| o.response()).sum();
        total / self.outcomes.len() as u64
    }

    /// MB of scanning avoided by sharing.
    pub fn mb_saved(&self) -> f64 {
        (self.logical_mb_scanned - self.mb_read).max(0.0)
    }

    /// Fraction of node-local map tasks.
    pub fn locality_rate(&self) -> f64 {
        let (l, r, o) = self.locality_counts;
        let total = l + r + o;
        if total == 0 {
            0.0
        } else {
            l as f64 / total as f64
        }
    }
}

/// Builder used by the engine while a run is in flight.
#[derive(Debug, Default)]
pub(crate) struct MetricsBuilder {
    pub scheduler: String,
    pub submissions: Vec<(JobId, SimTime)>,
    pub completions: Vec<(JobId, SimTime)>,
    pub map_acc: Accumulator,
    pub reduce_acc: Accumulator,
    pub blocks_read: u64,
    pub mb_read: f64,
    pub logical_mb_scanned: f64,
    pub locality_counts: (u64, u64, u64),
    pub speculative_attempts: u64,
    pub speculative_wins: u64,
    pub speculative_wasted: u64,
    pub tasks_failed: u64,
}

impl MetricsBuilder {
    pub fn finish(self, sim_end: SimTime) -> RunMetrics {
        let mut outcomes: Vec<JobOutcome> = self
            .submissions
            .iter()
            .filter_map(|&(job, submitted)| {
                self.completions
                    .iter()
                    .find(|&&(j, _)| j == job)
                    .map(|&(_, completed)| JobOutcome {
                        job,
                        submitted,
                        completed,
                    })
            })
            .collect();
        outcomes.sort_by_key(|o| o.job);
        RunMetrics {
            scheduler: self.scheduler,
            outcomes,
            map_task_time: self.map_acc.summary(),
            reduce_task_time: self.reduce_acc.summary(),
            blocks_read: self.blocks_read,
            mb_read: self.mb_read,
            logical_mb_scanned: self.logical_mb_scanned,
            locality_counts: self.locality_counts,
            speculative_attempts: self.speculative_attempts,
            speculative_wins: self.speculative_wins,
            speculative_wasted: self.speculative_wasted,
            tasks_failed: self.tasks_failed,
            sim_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(job: u32, sub: u64, done: u64) -> JobOutcome {
        JobOutcome {
            job: JobId(job),
            submitted: SimTime::from_secs(sub),
            completed: SimTime::from_secs(done),
        }
    }

    fn metrics(outcomes: Vec<JobOutcome>) -> RunMetrics {
        RunMetrics {
            scheduler: "test".into(),
            outcomes,
            map_task_time: Accumulator::new().summary(),
            reduce_task_time: Accumulator::new().summary(),
            blocks_read: 10,
            mb_read: 640.0,
            logical_mb_scanned: 1280.0,
            locality_counts: (8, 1, 1),
            speculative_attempts: 0,
            speculative_wins: 0,
            speculative_wasted: 0,
            tasks_failed: 0,
            sim_end: SimTime::from_secs(100),
        }
    }

    #[test]
    fn paper_example_1_fifo() {
        // Example 1: two 100s jobs, arrivals {0, 20}, FIFO:
        // TET = 200, ART = 140 (J1: 100, J2: 180).
        let m = metrics(vec![outcome(0, 0, 100), outcome(1, 20, 200)]);
        assert_eq!(m.tet(), SimDuration::from_secs(200));
        assert_eq!(m.art(), SimDuration::from_secs(140));
    }

    #[test]
    fn paper_example_1_s3() {
        // Example 3: S3 gives TET = 120, ART = 100 (both jobs respond in
        // 100s; J2 completes at 120).
        let m = metrics(vec![outcome(0, 0, 100), outcome(1, 20, 120)]);
        assert_eq!(m.tet(), SimDuration::from_secs(120));
        assert_eq!(m.art(), SimDuration::from_secs(100));
    }

    #[test]
    fn sharing_saving() {
        let m = metrics(vec![outcome(0, 0, 1)]);
        assert_eq!(m.mb_saved(), 640.0);
        assert!((m.locality_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zeroes() {
        let m = metrics(vec![]);
        assert_eq!(m.tet(), SimDuration::ZERO);
        assert_eq!(m.art(), SimDuration::ZERO);
    }

    #[test]
    fn builder_joins_submissions_and_completions() {
        let mut b = MetricsBuilder {
            scheduler: "x".into(),
            ..Default::default()
        };
        b.submissions.push((JobId(1), SimTime::from_secs(5)));
        b.submissions.push((JobId(0), SimTime::ZERO));
        b.completions.push((JobId(0), SimTime::from_secs(50)));
        b.completions.push((JobId(1), SimTime::from_secs(60)));
        let m = b.finish(SimTime::from_secs(60));
        assert_eq!(m.outcomes.len(), 2);
        assert_eq!(m.outcomes[0].job, JobId(0));
        assert_eq!(m.outcomes[1].response(), SimDuration::from_secs(55));
    }
}
