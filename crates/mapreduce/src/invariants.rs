//! Trace-level invariant checking: global safety properties every
//! scheduler must uphold, proven from an execution [`Trace`] alone.
//!
//! The chaos harness (`s3chaos`) replays every trace through
//! [`InvariantChecker::check`], which asserts:
//!
//! 1. **Time order** — events are recorded in non-decreasing time.
//! 2. **Job lifecycle** — every job is submitted exactly once at its
//!    request time, completed exactly once no earlier than submission, and
//!    receives no work after completion.
//! 3. **Scan coverage** — every block of every job's file is scanned
//!    exactly once on the job's behalf (at-least-once when speculative
//!    execution may discard duplicate wins), and never a block outside the
//!    job's file. This is the paper's correctness core: circular scans,
//!    mid-scan admission, failure re-execution and dynamic sub-job
//!    adjustment must all preserve one logical pass per job.
//! 4. **No work on dead nodes** — no task starts on a node at or after its
//!    TaskTracker death.
//! 5. **No work on excluded slots** — between a [`TraceKind::SlotExcluded`]
//!    and the matching [`TraceKind::SlotReadmitted`], the excluded node
//!    must not start any task (periodic slot checking, Section IV-D-1).
//! 6. **Slot capacity** — concurrent tasks per node never exceed its
//!    configured map/reduce slots, and no task ends without a start.
//! 7. **Batch consistency** — all events of one batch agree on the merged
//!    job set, all merged jobs target the same file, every attempt is
//!    resolved (ended or failed), each block succeeds exactly once per
//!    batch, and the batch's blocks form one contiguous (circular) segment
//!    of the file's block sequence — batches only merge sub-jobs targeting
//!    the same segment.

//!
//! [`check_engine_events`] applies the same discipline to the *real*
//! engine: it checks a drained `s3-obs` trace from a
//! `s3_engine::SharedScanServer` run — possibly one with injected faults —
//! for the engine-level safety properties (unique terminal outcome per
//! job, single admission, well-paired worker exclusion).

use crate::batch::BatchKey;
use crate::job::{JobId, JobRequest};
use crate::trace::{Trace, TraceEvent, TraceKind};
use s3_cluster::{ClusterTopology, FailureSchedule, NodeId};
use s3_dfs::{BlockId, Dfs, FileId};
use s3_obs::trace::{Event as ObsEvent, NO_ID};
use s3_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Short name of the violated invariant (stable, grep-friendly).
    pub invariant: &'static str,
    /// Simulated time of the offending event (or `SimTime::ZERO` for
    /// whole-trace properties such as missing coverage).
    pub at: SimTime,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.invariant, self.at, self.detail)
    }
}

/// Checks a trace against the world it was recorded in.
///
/// Borrow the same cluster, DFS, workload and failure schedule the
/// simulation ran with; the checker never re-runs the simulation.
pub struct InvariantChecker<'a> {
    /// Topology the trace ran on (slot capacities).
    pub cluster: &'a ClusterTopology,
    /// Block store (file membership, block order).
    pub dfs: &'a Dfs,
    /// The submitted jobs (expected lifecycles and files).
    pub workload: &'a [JobRequest],
    /// Injected TaskTracker deaths.
    pub failures: &'a FailureSchedule,
    /// Whether speculative execution ran: duplicate successful scans of a
    /// block are then legal (the engine discards rival wins), so coverage
    /// is checked at-least-once instead of exactly-once.
    pub speculation: bool,
}

impl InvariantChecker<'_> {
    /// Run every invariant over `trace`; empty result means all hold.
    pub fn check(&self, trace: &Trace) -> Vec<Violation> {
        let mut out = Vec::new();
        self.check_time_order(trace, &mut out);
        self.check_job_lifecycle(trace, &mut out);
        self.check_scan_coverage(trace, &mut out);
        self.check_dead_nodes(trace, &mut out);
        self.check_excluded_slots(trace, &mut out);
        self.check_slot_capacity(trace, &mut out);
        self.check_batch_consistency(trace, &mut out);
        out
    }

    fn check_time_order(&self, trace: &Trace, out: &mut Vec<Violation>) {
        for pair in trace.events().windows(2) {
            if pair[1].at < pair[0].at {
                out.push(Violation {
                    invariant: "time-order",
                    at: pair[1].at,
                    detail: format!(
                        "event at {} recorded after event at {}",
                        pair[1].at, pair[0].at
                    ),
                });
            }
        }
    }

    fn check_job_lifecycle(&self, trace: &Trace, out: &mut Vec<Violation>) {
        for req in self.workload {
            let submits: Vec<&TraceEvent> = trace
                .of_kind(TraceKind::JobSubmitted)
                .filter(|e| e.jobs.contains(&req.id))
                .collect();
            let completes: Vec<&TraceEvent> = trace
                .of_kind(TraceKind::JobCompleted)
                .filter(|e| e.jobs.contains(&req.id))
                .collect();
            if submits.len() != 1 {
                out.push(Violation {
                    invariant: "job-lifecycle",
                    at: SimTime::ZERO,
                    detail: format!("{} submitted {} times", req.id, submits.len()),
                });
            } else if submits[0].at != req.submit {
                out.push(Violation {
                    invariant: "job-lifecycle",
                    at: submits[0].at,
                    detail: format!(
                        "{} submitted at {} but requested at {}",
                        req.id, submits[0].at, req.submit
                    ),
                });
            }
            if completes.len() != 1 {
                out.push(Violation {
                    invariant: "job-lifecycle",
                    at: SimTime::ZERO,
                    detail: format!("{} completed {} times", req.id, completes.len()),
                });
                continue;
            }
            let done = completes[0].at;
            if done < req.submit {
                out.push(Violation {
                    invariant: "job-lifecycle",
                    at: done,
                    detail: format!("{} completed at {} before submission", req.id, done),
                });
            }
            // No work may *start* on the job's behalf after its completion.
            // Scan the suffix of the trace after the completion event.
            let done_idx = trace
                .events()
                .iter()
                .position(|e| std::ptr::eq(e, completes[0]))
                .expect("completion event present");
            for e in &trace.events()[done_idx + 1..] {
                if matches!(e.kind, TraceKind::MapStart | TraceKind::ReduceStart)
                    && e.jobs.contains(&req.id)
                {
                    out.push(Violation {
                        invariant: "job-lifecycle",
                        at: e.at,
                        detail: format!("{:?} for {} after its completion", e.kind, req.id),
                    });
                }
            }
        }
    }

    fn check_scan_coverage(&self, trace: &Trace, out: &mut Vec<Violation>) {
        // Successful scans credited to each job.
        let mut scans: BTreeMap<JobId, BTreeMap<BlockId, u32>> = BTreeMap::new();
        for e in trace.of_kind(TraceKind::MapEnd) {
            let Some(block) = e.block else {
                out.push(Violation {
                    invariant: "scan-coverage",
                    at: e.at,
                    detail: "MapEnd without a block".into(),
                });
                continue;
            };
            for &job in &e.jobs {
                *scans.entry(job).or_default().entry(block).or_insert(0) += 1;
            }
        }
        for req in self.workload {
            let seen = scans.remove(&req.id).unwrap_or_default();
            let file_blocks: BTreeSet<BlockId> =
                self.dfs.file(req.file).blocks.iter().copied().collect();
            for (&block, &count) in &seen {
                if !file_blocks.contains(&block) {
                    out.push(Violation {
                        invariant: "scan-coverage",
                        at: SimTime::ZERO,
                        detail: format!("{} scanned {block} outside its file", req.id),
                    });
                } else if count != 1 && !self.speculation {
                    out.push(Violation {
                        invariant: "scan-coverage",
                        at: SimTime::ZERO,
                        detail: format!("{} scanned {block} {count} times", req.id),
                    });
                }
            }
            for &block in &file_blocks {
                if !seen.contains_key(&block) {
                    out.push(Violation {
                        invariant: "scan-coverage",
                        at: SimTime::ZERO,
                        detail: format!("{} never scanned {block}", req.id),
                    });
                }
            }
        }
        for (job, _) in scans {
            out.push(Violation {
                invariant: "scan-coverage",
                at: SimTime::ZERO,
                detail: format!("scans credited to unknown {job}"),
            });
        }
    }

    fn check_dead_nodes(&self, trace: &Trace, out: &mut Vec<Violation>) {
        for e in trace.events() {
            if !matches!(e.kind, TraceKind::MapStart | TraceKind::ReduceStart) {
                continue;
            }
            let node = e.node.expect("task events carry a node");
            if !self.failures.is_alive(node, e.at) {
                out.push(Violation {
                    invariant: "dead-node",
                    at: e.at,
                    detail: format!("{:?} on {node} at/after its death", e.kind),
                });
            }
        }
    }

    fn check_excluded_slots(&self, trace: &Trace, out: &mut Vec<Violation>) {
        let mut excluded: BTreeSet<NodeId> = BTreeSet::new();
        for e in trace.events() {
            match e.kind {
                TraceKind::SlotExcluded => {
                    excluded.insert(e.node.expect("exclusion names a node"));
                }
                TraceKind::SlotReadmitted => {
                    let node = e.node.expect("readmission names a node");
                    if !excluded.remove(&node) {
                        out.push(Violation {
                            invariant: "excluded-slot",
                            at: e.at,
                            detail: format!("{node} re-admitted but was not excluded"),
                        });
                    }
                }
                TraceKind::MapStart | TraceKind::ReduceStart => {
                    let node = e.node.expect("task events carry a node");
                    if excluded.contains(&node) {
                        out.push(Violation {
                            invariant: "excluded-slot",
                            at: e.at,
                            detail: format!("{:?} on excluded {node}", e.kind),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    fn check_slot_capacity(&self, trace: &Trace, out: &mut Vec<Violation>) {
        let n = self.cluster.num_nodes();
        let mut open_maps = vec![0i64; n];
        let mut open_reduces = vec![0i64; n];
        for e in trace.events() {
            let (open, cap, is_start) = match e.kind {
                TraceKind::MapStart => (&mut open_maps, true, true),
                TraceKind::MapEnd | TraceKind::MapFailed => (&mut open_maps, true, false),
                TraceKind::ReduceStart => (&mut open_reduces, false, true),
                TraceKind::ReduceEnd | TraceKind::ReduceFailed => {
                    (&mut open_reduces, false, false)
                }
                _ => continue,
            };
            let node = e.node.expect("task events carry a node");
            let idx = node.0 as usize;
            if is_start {
                open[idx] += 1;
                let limit = if cap {
                    self.cluster.node(node).spec.map_slots
                } else {
                    self.cluster.node(node).spec.reduce_slots
                } as i64;
                if open[idx] > limit {
                    out.push(Violation {
                        invariant: "slot-capacity",
                        at: e.at,
                        detail: format!(
                            "{node} runs {} concurrent {} tasks (capacity {limit})",
                            open[idx],
                            if cap { "map" } else { "reduce" },
                        ),
                    });
                }
            } else {
                open[idx] -= 1;
                if open[idx] < 0 {
                    out.push(Violation {
                        invariant: "slot-capacity",
                        at: e.at,
                        detail: format!("{:?} on {node} without a matching start", e.kind),
                    });
                }
            }
        }
    }

    fn check_batch_consistency(&self, trace: &Trace, out: &mut Vec<Violation>) {
        struct BatchView {
            jobs: Vec<JobId>,
            first_at: SimTime,
            // Per block: (starts, ends, fails).
            attempts: BTreeMap<BlockId, (u32, u32, u32)>,
        }
        let mut batches: BTreeMap<BatchKey, BatchView> = BTreeMap::new();
        for e in trace.events() {
            let Some(key) = e.batch else { continue };
            let view = batches.entry(key).or_insert_with(|| BatchView {
                jobs: e.jobs.clone(),
                first_at: e.at,
                attempts: BTreeMap::new(),
            });
            if view.jobs != e.jobs {
                out.push(Violation {
                    invariant: "batch-consistency",
                    at: e.at,
                    detail: format!(
                        "{key:?} job set changed from {:?} to {:?}",
                        view.jobs, e.jobs
                    ),
                });
            }
            if let Some(block) = e.block {
                let slot = view.attempts.entry(block).or_insert((0, 0, 0));
                match e.kind {
                    TraceKind::MapStart => slot.0 += 1,
                    TraceKind::MapEnd => slot.1 += 1,
                    TraceKind::MapFailed => slot.2 += 1,
                    _ => {}
                }
            }
        }

        let job_file: BTreeMap<JobId, FileId> =
            self.workload.iter().map(|r| (r.id, r.file)).collect();
        for (key, view) in &batches {
            // All merged jobs must target one file.
            let files: BTreeSet<FileId> = view
                .jobs
                .iter()
                .filter_map(|j| job_file.get(j).copied())
                .collect();
            if files.len() != 1 {
                out.push(Violation {
                    invariant: "batch-consistency",
                    at: view.first_at,
                    detail: format!("{key:?} merges jobs over files {files:?}"),
                });
                continue;
            }
            let file = *files.iter().next().expect("one file");
            let file_blocks = &self.dfs.file(file).blocks;

            // Every attempt resolved; exactly one success per block.
            for (&block, &(starts, ends, fails)) in &view.attempts {
                if starts != ends + fails {
                    out.push(Violation {
                        invariant: "batch-consistency",
                        at: view.first_at,
                        detail: format!(
                            "{key:?} {block}: {starts} starts vs {ends} ends + {fails} fails"
                        ),
                    });
                }
                if ends != 1 && !self.speculation {
                    out.push(Violation {
                        invariant: "batch-consistency",
                        at: view.first_at,
                        detail: format!("{key:?} {block} succeeded {ends} times"),
                    });
                }
            }

            // The batch's blocks form one contiguous circular run of the
            // file's block sequence: one segment, as merged sub-jobs must.
            let index_of: BTreeMap<BlockId, usize> = file_blocks
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, i))
                .collect();
            let mut indices: Vec<usize> = Vec::with_capacity(view.attempts.len());
            for &block in view.attempts.keys() {
                match index_of.get(&block) {
                    Some(&i) => indices.push(i),
                    None => out.push(Violation {
                        invariant: "batch-consistency",
                        at: view.first_at,
                        detail: format!("{key:?} scanned {block} outside {file:?}"),
                    }),
                }
            }
            indices.sort_unstable();
            let n = file_blocks.len();
            if !indices.is_empty() && indices.len() < n {
                // Count circular gaps; a single segment has exactly one.
                let mut gaps = 0;
                for w in indices.windows(2) {
                    if w[1] != w[0] + 1 {
                        gaps += 1;
                    }
                }
                if (indices[0] + n - indices[indices.len() - 1]) % n != 1 {
                    gaps += 1;
                }
                if gaps != 1 {
                    out.push(Violation {
                        invariant: "batch-consistency",
                        at: view.first_at,
                        detail: format!(
                            "{key:?} blocks are not one contiguous segment ({gaps} gaps)"
                        ),
                    });
                }
            }
        }
    }
}

/// Check a drained `s3-obs` engine trace (from a
/// `s3_engine::SharedScanServer` run, faulty or not) for the engine-level
/// safety invariants. Empty result means all hold.
///
/// 1. **Unique terminal** — every `submit` reaches exactly one terminal
///    event (`job_done`, `quarantine`, `job_aborted`, or `job_expired`),
///    no earlier than its submission; no terminal names an unsubmitted
///    job.
/// 2. **Single admission** — a job is admitted at most once, and a job
///    that finished cleanly (`job_done`) or panicked mid-scan
///    (`quarantine`) was admitted exactly once. Only `job_aborted` and
///    `job_expired` may hit a never-admitted job (shutdown or a deadline
///    raced the submit).
/// 3. **Paired exclusion** — per worker, `slot_excluded` and
///    `slot_readmitted` strictly alternate starting with an exclusion.
/// 4. **Partition** — `segment` spans (start block in `ids.seg`, length
///    in `ids.n`) chain contiguously from block 0, wrapping to 0 exactly
///    at the furthest block ever scanned: resized or not, a revolution
///    covers each block exactly once.
/// 5. **Resize** — every `segment_resized` instant (new size in
///    `ids.seg`, old in `ids.n`) changes the size to a nonzero value, and
///    each subsequent segment's length equals the effective size clipped
///    at the end of the file.
/// 6. **Exactly-once claims** — every `segment_claims` instant (start
///    block in `ids.job`, blocks claimed in `ids.seg`, winning commits in
///    `ids.n`) pairs with exactly one `segment` span at the same start
///    block, and both counters equal the segment's length: under the
///    work-assisting claim loop each block was claimed off the cursor
///    exactly once and committed by exactly one winner, however many
///    workers raced to re-execute it. Traces predating the claim
///    instrumentation (no `segment_claims` at all) pass vacuously.
/// 7. **Admission outcome** — every `svc_submit` (from a
///    `s3_engine::ScanService` trace) reaches exactly one of
///    `svc_admit`, `svc_reject`, `svc_expired`, or `svc_abort`, no
///    earlier than the submission; no outcome names an unsubmitted job.
/// 8. **Typed shed** — every `svc_*` event carries a valid QoS class in
///    `ids.seg` (low=0, normal=1, high=2 on the wire); `svc_reject`
///    additionally carries a valid reason code in `ids.n`, and only the
///    Low class is ever `svc_defer`red.
/// 9. **Per-queue FIFO** — `svc_admit` packs `(file index, enqueue
///    sequence)` into `ids.n`; within one (file, class) queue the
///    admitted sequence numbers strictly increase, so admission never
///    reorders a class queue (sequence numbers are assigned under the
///    queue lock, making this check race-free where timestamps are not).
///
/// The trace must be complete (no ring-buffer overwrites — check the
/// recorder's dropped counter first): the partition check anchors at
/// block 0.
pub fn check_engine_events(events: &[ObsEvent]) -> Vec<Violation> {
    let mut out = Vec::new();
    let at = |ts_us: u64| SimTime::from_micros(ts_us);

    // Per job id: (submit ts, admits, job_done, quarantine, job_aborted,
    // job_expired).
    #[derive(Default)]
    struct JobView {
        submit: Option<u64>,
        admits: u32,
        done: u32,
        quarantined: u32,
        aborted: u32,
        expired: u32,
        first_terminal_ts: Option<u64>,
    }
    let mut jobs: BTreeMap<u64, JobView> = BTreeMap::new();
    let mut excluded: BTreeSet<u64> = BTreeSet::new();
    for e in events {
        match e.name {
            "submit" | "admit" | "job_done" | "quarantine" | "job_aborted" | "job_expired" => {
                if e.ids.job == NO_ID {
                    out.push(Violation {
                        invariant: "engine-terminal",
                        at: at(e.ts_us),
                        detail: format!("{:?} event without a job id", e.name),
                    });
                    continue;
                }
                let v = jobs.entry(e.ids.job).or_default();
                match e.name {
                    "submit" => v.submit = Some(v.submit.unwrap_or(e.ts_us)),
                    "admit" => v.admits += 1,
                    "job_done" => v.done += 1,
                    "quarantine" => v.quarantined += 1,
                    "job_aborted" => v.aborted += 1,
                    "job_expired" => v.expired += 1,
                    _ => unreachable!(),
                }
                if matches!(e.name, "job_done" | "quarantine" | "job_aborted" | "job_expired")
                    && v.first_terminal_ts.is_none()
                {
                    v.first_terminal_ts = Some(e.ts_us);
                }
            }
            // Worker exclusion events carry the worker index in `ids.n`.
            "slot_excluded" if !excluded.insert(e.ids.n) => {
                out.push(Violation {
                    invariant: "engine-exclusion",
                    at: at(e.ts_us),
                    detail: format!("worker {} excluded twice", e.ids.n),
                });
            }
            "slot_readmitted" if !excluded.remove(&e.ids.n) => {
                out.push(Violation {
                    invariant: "engine-exclusion",
                    at: at(e.ts_us),
                    detail: format!("worker {} readmitted but was not excluded", e.ids.n),
                });
            }
            _ => {}
        }
    }

    // Partition + resize: replay the segment chain. Segment spans carry
    // (start block, length); `segment_resized` instants carry (new, old)
    // effective sizes. The file's block count is not in the trace, so it
    // is derived as the furthest segment end ever observed.
    let mut nstar: u64 = 0;
    for e in events {
        if e.name == "segment" && e.ids.seg != NO_ID && e.ids.n != NO_ID {
            nstar = nstar.max(e.ids.seg + e.ids.n);
        }
    }
    if nstar > 0 {
        let mut expected: u64 = 0;
        let mut cur_eff: Option<u64> = None;
        for e in events {
            match e.name {
                "segment" if e.ids.seg != NO_ID && e.ids.n != NO_ID => {
                    let (start, len) = (e.ids.seg, e.ids.n);
                    if len == 0 {
                        out.push(Violation {
                            invariant: "engine-partition",
                            at: at(e.ts_us),
                            detail: format!("empty segment at block {start}"),
                        });
                        continue;
                    }
                    if start != expected {
                        out.push(Violation {
                            invariant: "engine-partition",
                            at: at(e.ts_us),
                            detail: format!(
                                "segment starts at block {start}, expected {expected}: \
                                 a revolution must cover each block exactly once"
                            ),
                        });
                    }
                    // Resync from the observed segment so one bad boundary
                    // does not cascade into a violation per segment.
                    expected = start + len;
                    if expected >= nstar {
                        expected = 0;
                    }
                    if let Some(eff) = cur_eff {
                        let want = eff.min(nstar - start.min(nstar));
                        if len != want {
                            out.push(Violation {
                                invariant: "engine-resize",
                                at: at(e.ts_us),
                                detail: format!(
                                    "segment at block {start} spans {len} blocks; effective \
                                     size {eff} over {nstar} blocks requires {want}"
                                ),
                            });
                        }
                    }
                }
                "segment_resized" => {
                    let (new, old) = (e.ids.seg, e.ids.n);
                    if new == NO_ID || old == NO_ID || new == 0 {
                        out.push(Violation {
                            invariant: "engine-resize",
                            at: at(e.ts_us),
                            detail: format!("malformed segment_resized ({new} from {old})"),
                        });
                    } else if new == old {
                        out.push(Violation {
                            invariant: "engine-resize",
                            at: at(e.ts_us),
                            detail: format!("segment_resized to its current size {new}"),
                        });
                    } else {
                        cur_eff = Some(new);
                    }
                }
                _ => {}
            }
        }
    }

    // Exactly-once claims: pair each `segment_claims` instant with the
    // pending `segment` span at the same start block. Spans are stamped at
    // segment *start* but recorded at segment end, right before the claims
    // instant, so pairing keys on the start block (FIFO per start across
    // revolutions) rather than on timestamps.
    let claims_seen = events.iter().any(|e| e.name == "segment_claims");
    if claims_seen {
        let mut pending: BTreeMap<u64, VecDeque<(u64, u64)>> = BTreeMap::new();
        for e in events {
            match e.name {
                "segment" if e.ids.seg != NO_ID && e.ids.n != NO_ID => {
                    pending
                        .entry(e.ids.seg)
                        .or_default()
                        .push_back((e.ids.n, e.ts_us));
                }
                "segment_claims" => {
                    let (start, claimed, completed) = (e.ids.job, e.ids.seg, e.ids.n);
                    let Some((len, _)) = pending.get_mut(&start).and_then(VecDeque::pop_front)
                    else {
                        out.push(Violation {
                            invariant: "engine-claims",
                            at: at(e.ts_us),
                            detail: format!(
                                "claims record at block {start} with no scanned segment to \
                                 account for"
                            ),
                        });
                        continue;
                    };
                    if claimed != len {
                        out.push(Violation {
                            invariant: "engine-claims",
                            at: at(e.ts_us),
                            detail: format!(
                                "segment at block {start} spans {len} blocks but the claim \
                                 cursor handed out {claimed}: every block must be claimed \
                                 exactly once"
                            ),
                        });
                    }
                    if completed != len {
                        out.push(Violation {
                            invariant: "engine-claims",
                            at: at(e.ts_us),
                            detail: format!(
                                "segment at block {start} spans {len} blocks but {completed} \
                                 winning commits landed: every block must be committed \
                                 exactly once"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        for (start, rest) in pending {
            for (_, ts) in rest {
                out.push(Violation {
                    invariant: "engine-claims",
                    at: at(ts),
                    detail: format!(
                        "segment at block {start} was scanned without a claims record"
                    ),
                });
            }
        }
    }

    // Service admission-queue invariants: `svc_*` instants from a
    // `s3_engine::ScanService` trace. A plain server trace has none of
    // these and passes vacuously. The service job-id space is distinct
    // from the engine's, so the accounting is kept separate.
    #[derive(Default)]
    struct SvcView {
        submit: Option<u64>,
        admits: u32,
        rejects: u32,
        expired: u32,
        aborted: u32,
        first_outcome_ts: Option<u64>,
    }
    let mut svc_jobs: BTreeMap<u64, SvcView> = BTreeMap::new();
    // (file index, class code) -> last admitted enqueue sequence.
    let mut last_admit_seq: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        let outcome = matches!(
            e.name,
            "svc_admit" | "svc_reject" | "svc_expired" | "svc_abort"
        );
        if !outcome && e.name != "svc_submit" && e.name != "svc_defer" {
            continue;
        }
        if e.ids.job == NO_ID {
            out.push(Violation {
                invariant: "service-outcome",
                at: at(e.ts_us),
                detail: format!("{:?} event without a job id", e.name),
            });
            continue;
        }
        // Every svc event carries its QoS class in `ids.seg` (low=0,
        // normal=1, high=2 on the wire).
        if e.ids.seg > 2 {
            out.push(Violation {
                invariant: "service-class",
                at: at(e.ts_us),
                detail: format!(
                    "{:?} for job {} carries class code {} (valid: 0..=2)",
                    e.name, e.ids.job, e.ids.seg
                ),
            });
        }
        let v = svc_jobs.entry(e.ids.job).or_default();
        match e.name {
            "svc_submit" => v.submit = Some(v.submit.unwrap_or(e.ts_us)),
            "svc_reject" => {
                v.rejects += 1;
                // `ids.n` is the reject reason code; a shed must be typed.
                if e.ids.n > 2 {
                    out.push(Violation {
                        invariant: "service-class",
                        at: at(e.ts_us),
                        detail: format!(
                            "svc_reject for job {} carries reason code {} (valid: 0..=2): \
                             every shed must be typed",
                            e.ids.job, e.ids.n
                        ),
                    });
                }
            }
            "svc_admit" => {
                v.admits += 1;
                // `ids.n` packs (file index << 32 | enqueue seq); within
                // one (file, class) queue admitted seqs strictly increase.
                let (file, seq) = (e.ids.n >> 32, e.ids.n & 0xffff_ffff);
                let key = (file, e.ids.seg);
                if let Some(&prev) = last_admit_seq.get(&key) {
                    if seq <= prev {
                        out.push(Violation {
                            invariant: "service-fifo",
                            at: at(e.ts_us),
                            detail: format!(
                                "job {} admitted out of order from file {file} class {} \
                                 queue: seq {seq} after {prev}",
                                e.ids.job, e.ids.seg
                            ),
                        });
                    }
                }
                last_admit_seq.insert(key, seq);
            }
            "svc_expired" => v.expired += 1,
            "svc_abort" => v.aborted += 1,
            "svc_defer" => {
                // Only the Low class is ever held back by the width cap.
                if e.ids.seg != 0 {
                    out.push(Violation {
                        invariant: "service-class",
                        at: at(e.ts_us),
                        detail: format!(
                            "job {} deferred with class code {}: only Low defers",
                            e.ids.job, e.ids.seg
                        ),
                    });
                }
            }
            _ => unreachable!(),
        }
        if outcome && v.first_outcome_ts.is_none() {
            v.first_outcome_ts = Some(e.ts_us);
        }
    }
    for (id, v) in &svc_jobs {
        let outcomes = v.admits + v.rejects + v.expired + v.aborted;
        match v.submit {
            None => out.push(Violation {
                invariant: "service-outcome",
                at: SimTime::ZERO,
                detail: format!("service job {id} has events but was never submitted"),
            }),
            Some(submit_ts) => {
                if outcomes != 1 {
                    out.push(Violation {
                        invariant: "service-outcome",
                        at: SimTime::ZERO,
                        detail: format!(
                            "service job {id} reached {outcomes} admission outcomes \
                             ({} admitted, {} rejected, {} expired, {} aborted); \
                             expected exactly 1",
                            v.admits, v.rejects, v.expired, v.aborted
                        ),
                    });
                }
                if let Some(ts) = v.first_outcome_ts {
                    if ts < submit_ts {
                        out.push(Violation {
                            invariant: "service-outcome",
                            at: at(ts),
                            detail: format!(
                                "service job {id} admission outcome precedes its submission"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Weighted-partition invariants. `partition_plan` instants carry one
    // bin each (shard index in its dedicated id field, estimated weight in
    // `n`); `reduce_shard` spans carry the shard index plus the records it
    // reduced. Per job: shard ids must be unique in both streams (the old
    // encoding that packed shards into shared fields made concurrent jobs
    // ambiguous), and for a completed job with a plan the plan's weights
    // must sum to the records its shards actually reduced — i.e. every
    // record the plan routed landed in exactly one shard, none dropped,
    // none duplicated.
    #[derive(Default)]
    struct PartView {
        plan_bins: BTreeSet<u64>,
        plan_weight: u64,
        shard_bins: BTreeSet<u64>,
        shard_records: u64,
    }
    let mut partitions: BTreeMap<u64, PartView> = BTreeMap::new();
    for e in events {
        match e.name {
            "partition_plan" => {
                if e.ids.job == NO_ID || e.ids.shard == NO_ID || e.ids.n == NO_ID {
                    out.push(Violation {
                        invariant: "engine-partition-plan",
                        at: at(e.ts_us),
                        detail: "partition_plan instant missing job/shard/weight ids".into(),
                    });
                    continue;
                }
                let v = partitions.entry(e.ids.job).or_default();
                if !v.plan_bins.insert(e.ids.shard) {
                    out.push(Violation {
                        invariant: "engine-partition-plan",
                        at: at(e.ts_us),
                        detail: format!(
                            "job {} plans bin {} twice",
                            e.ids.job, e.ids.shard
                        ),
                    });
                }
                v.plan_weight += e.ids.n;
            }
            "reduce_shard" if e.ids.job != NO_ID && e.ids.shard != NO_ID => {
                let v = partitions.entry(e.ids.job).or_default();
                if !v.shard_bins.insert(e.ids.shard) {
                    out.push(Violation {
                        invariant: "engine-partition-plan",
                        at: at(e.ts_us),
                        detail: format!(
                            "job {} ran reduce shard {} twice",
                            e.ids.job, e.ids.shard
                        ),
                    });
                }
                if e.ids.n != NO_ID {
                    v.shard_records += e.ids.n;
                }
            }
            _ => {}
        }
    }
    for (id, v) in &partitions {
        if v.plan_bins.is_empty() {
            continue; // hash-mode job: no plan to reconcile
        }
        // Only completed jobs reconcile exactly — a quarantined shard may
        // have panicked before routing its records.
        let completed = jobs.get(id).is_some_and(|j| j.done > 0);
        if !completed {
            continue;
        }
        if v.shard_bins != v.plan_bins {
            out.push(Violation {
                invariant: "engine-partition-plan",
                at: SimTime::ZERO,
                detail: format!(
                    "job {id}: planned bins {:?} but reduce shards ran {:?}",
                    v.plan_bins, v.shard_bins
                ),
            });
        }
        if v.shard_records != v.plan_weight {
            out.push(Violation {
                invariant: "engine-partition-plan",
                at: SimTime::ZERO,
                detail: format!(
                    "job {id}: plan weighs {} records but reduce shards reduced {}: \
                     every routed record must land in exactly one shard",
                    v.plan_weight, v.shard_records
                ),
            });
        }
    }

    for (id, v) in &jobs {
        let terminals = v.done + v.quarantined + v.aborted + v.expired;
        match v.submit {
            None => {
                out.push(Violation {
                    invariant: "engine-terminal",
                    at: SimTime::ZERO,
                    detail: format!("job {id} has events but was never submitted"),
                });
                continue;
            }
            Some(submit_ts) => {
                if terminals != 1 {
                    out.push(Violation {
                        invariant: "engine-terminal",
                        at: SimTime::ZERO,
                        detail: format!(
                            "job {id} reached {terminals} terminal events \
                             ({} done, {} quarantined, {} aborted, {} expired); \
                             expected exactly 1",
                            v.done, v.quarantined, v.aborted, v.expired
                        ),
                    });
                }
                if let Some(term_ts) = v.first_terminal_ts {
                    if term_ts < submit_ts {
                        out.push(Violation {
                            invariant: "engine-terminal",
                            at: at(term_ts),
                            detail: format!("job {id} terminal precedes its submission"),
                        });
                    }
                }
            }
        }
        if v.admits > 1 {
            out.push(Violation {
                invariant: "engine-admission",
                at: SimTime::ZERO,
                detail: format!("job {id} admitted {} times", v.admits),
            });
        }
        if v.admits == 0 && (v.done > 0 || v.quarantined > 0) {
            out.push(Violation {
                invariant: "engine-admission",
                at: SimTime::ZERO,
                detail: format!(
                    "job {id} reached a scanning terminal without ever being admitted"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobProfile, JobRequest, Priority};
    use crate::trace::TraceEvent;
    use s3_dfs::{RoundRobinPlacement, MB};
    use std::sync::Arc;

    struct World {
        cluster: ClusterTopology,
        dfs: Dfs,
        workload: Vec<JobRequest>,
        failures: FailureSchedule,
    }

    fn tiny_world(blocks: u64) -> World {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        let profile = Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 1,
        });
        let workload = vec![JobRequest {
            id: JobId(0),
            profile,
            file,
            submit: SimTime::ZERO,
            priority: Priority::Normal,
        }];
        World {
            cluster,
            dfs,
            workload,
            failures: FailureSchedule::none(),
        }
    }

    fn checker(world: &World) -> InvariantChecker<'_> {
        InvariantChecker {
            cluster: &world.cluster,
            dfs: &world.dfs,
            workload: &world.workload,
            failures: &world.failures,
            speculation: false,
        }
    }

    fn ev(at_s: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_s),
            kind,
            node: None,
            jobs: vec![JobId(0)],
            batch: None,
            block: None,
        }
    }

    /// A full, correct run of a 2-block job in one batch on node 0.
    fn good_trace(world: &World) -> Trace {
        let blocks = &world.dfs.file(world.workload[0].file).blocks;
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::JobSubmitted));
        for (i, &b) in blocks.iter().enumerate() {
            let at = 1 + 2 * i as u64;
            t.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(at, TraceKind::MapStart)
            });
            t.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(at + 1, TraceKind::MapEnd)
            });
        }
        t.push(TraceEvent {
            node: Some(NodeId(1)),
            batch: Some(BatchKey(0)),
            ..ev(20, TraceKind::ReduceStart)
        });
        t.push(TraceEvent {
            node: Some(NodeId(1)),
            batch: Some(BatchKey(0)),
            ..ev(25, TraceKind::ReduceEnd)
        });
        t.push(ev(25, TraceKind::JobCompleted));
        t
    }

    #[test]
    fn clean_trace_passes() {
        let world = tiny_world(2);
        let trace = good_trace(&world);
        assert_eq!(checker(&world).check(&trace), vec![]);
    }

    #[test]
    fn missing_block_is_a_coverage_violation() {
        let world = tiny_world(2);
        let mut trace = Trace::new();
        let b0 = world.dfs.file(world.workload[0].file).blocks[0];
        trace.push(ev(0, TraceKind::JobSubmitted));
        trace.push(TraceEvent {
            node: Some(NodeId(0)),
            batch: Some(BatchKey(0)),
            block: Some(b0),
            ..ev(1, TraceKind::MapStart)
        });
        trace.push(TraceEvent {
            node: Some(NodeId(0)),
            batch: Some(BatchKey(0)),
            block: Some(b0),
            ..ev(2, TraceKind::MapEnd)
        });
        trace.push(ev(3, TraceKind::JobCompleted));
        let violations = checker(&world).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "scan-coverage"
                && v.detail.contains("never scanned")),
            "{violations:?}"
        );
    }

    #[test]
    fn double_scan_is_a_violation_without_speculation() {
        let world = tiny_world(2);
        let mut trace = good_trace(&world);
        let b0 = world.dfs.file(world.workload[0].file).blocks[0];
        // Re-scan block 0 in a second batch after completion-unrelated work.
        trace.push(TraceEvent {
            node: Some(NodeId(2)),
            batch: Some(BatchKey(1)),
            block: Some(b0),
            ..ev(30, TraceKind::MapStart)
        });
        trace.push(TraceEvent {
            node: Some(NodeId(2)),
            batch: Some(BatchKey(1)),
            block: Some(b0),
            ..ev(31, TraceKind::MapEnd)
        });
        let violations = checker(&world).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "scan-coverage"
                && v.detail.contains("2 times")),
            "{violations:?}"
        );
    }

    #[test]
    fn task_on_dead_node_is_flagged() {
        let mut world = tiny_world(2);
        world.failures = FailureSchedule::none().kill(NodeId(0), SimTime::from_secs(1));
        let trace = good_trace(&world); // maps start at t=1 on node 0
        let violations = checker(&world).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "dead-node"),
            "{violations:?}"
        );
    }

    #[test]
    fn task_on_excluded_slot_is_flagged() {
        let world = tiny_world(2);
        let mut trace = Trace::new();
        trace.push(ev(0, TraceKind::JobSubmitted));
        trace.push(TraceEvent {
            node: Some(NodeId(0)),
            ..ev(0, TraceKind::SlotExcluded)
        });
        let blocks = &world.dfs.file(world.workload[0].file).blocks;
        for (i, &b) in blocks.iter().enumerate() {
            trace.push(TraceEvent {
                node: Some(NodeId(0)), // excluded!
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(1 + i as u64, TraceKind::MapStart)
            });
            trace.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(2 + i as u64, TraceKind::MapEnd)
            });
        }
        trace.push(ev(9, TraceKind::JobCompleted));
        let violations = checker(&world).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "excluded-slot"),
            "{violations:?}"
        );

        // Re-admission clears the exclusion.
        let mut ok = Trace::new();
        ok.push(ev(0, TraceKind::JobSubmitted));
        ok.push(TraceEvent {
            node: Some(NodeId(0)),
            ..ev(0, TraceKind::SlotExcluded)
        });
        ok.push(TraceEvent {
            node: Some(NodeId(0)),
            ..ev(1, TraceKind::SlotReadmitted)
        });
        for (i, &b) in blocks.iter().enumerate() {
            ok.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(2 + 2 * i as u64, TraceKind::MapStart)
            });
            ok.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(3 + 2 * i as u64, TraceKind::MapEnd)
            });
        }
        ok.push(ev(9, TraceKind::JobCompleted));
        let violations = checker(&world).check(&ok);
        assert!(
            !violations.iter().any(|v| v.invariant == "excluded-slot"),
            "{violations:?}"
        );
    }

    #[test]
    fn slot_overcommit_is_flagged() {
        let world = tiny_world(2);
        let blocks = &world.dfs.file(world.workload[0].file).blocks;
        let mut trace = Trace::new();
        trace.push(ev(0, TraceKind::JobSubmitted));
        // Both maps run concurrently on node 0 (capacity 1).
        for &b in blocks {
            trace.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(1, TraceKind::MapStart)
            });
        }
        for &b in blocks {
            trace.push(TraceEvent {
                node: Some(NodeId(0)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(2, TraceKind::MapEnd)
            });
        }
        trace.push(ev(3, TraceKind::JobCompleted));
        let violations = checker(&world).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "slot-capacity"),
            "{violations:?}"
        );
    }

    #[test]
    fn batch_job_set_change_is_flagged() {
        let world = tiny_world(2);
        let mut trace = good_trace(&world);
        // A stray event claims the batch also served job 7.
        trace.push(TraceEvent {
            node: Some(NodeId(3)),
            jobs: vec![JobId(0), JobId(7)],
            batch: Some(BatchKey(0)),
            ..ev(30, TraceKind::ReduceStart)
        });
        trace.push(TraceEvent {
            node: Some(NodeId(3)),
            jobs: vec![JobId(0), JobId(7)],
            batch: Some(BatchKey(0)),
            ..ev(31, TraceKind::ReduceEnd)
        });
        let violations = checker(&world).check(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "batch-consistency" && v.detail.contains("job set")),
            "{violations:?}"
        );
    }

    #[test]
    fn non_contiguous_batch_is_flagged() {
        let world = tiny_world(4);
        let blocks = &world.dfs.file(world.workload[0].file).blocks;
        let mut trace = Trace::new();
        trace.push(ev(0, TraceKind::JobSubmitted));
        // One batch scans blocks 0 and 2 of 4: two circular gaps.
        for (i, &b) in [blocks[0], blocks[2]].iter().enumerate() {
            trace.push(TraceEvent {
                node: Some(NodeId(i as u32)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(1 + 2 * i as u64, TraceKind::MapStart)
            });
            trace.push(TraceEvent {
                node: Some(NodeId(i as u32)),
                batch: Some(BatchKey(0)),
                block: Some(b),
                ..ev(2 + 2 * i as u64, TraceKind::MapEnd)
            });
        }
        // The rest in singleton batches (a single block is trivially one
        // segment and must not be flagged).
        for (i, &b) in [blocks[1], blocks[3]].iter().enumerate() {
            trace.push(TraceEvent {
                node: Some(NodeId(i as u32)),
                batch: Some(BatchKey(1 + i as u64)),
                block: Some(b),
                ..ev(5 + 2 * i as u64, TraceKind::MapStart)
            });
            trace.push(TraceEvent {
                node: Some(NodeId(i as u32)),
                batch: Some(BatchKey(1 + i as u64)),
                block: Some(b),
                ..ev(6 + 2 * i as u64, TraceKind::MapEnd)
            });
        }
        trace.push(ev(9, TraceKind::JobCompleted));
        let violations = checker(&world).check(&trace);
        let contiguity: Vec<&Violation> = violations
            .iter()
            .filter(|v| v.invariant == "batch-consistency" && v.detail.contains("contiguous"))
            .collect();
        assert_eq!(contiguity.len(), 1, "only batch 0 is split: {violations:?}");
        assert!(contiguity[0].detail.contains("BatchKey(0)"), "{contiguity:?}");
    }

    mod engine_events {
        use super::super::check_engine_events;
        use s3_obs::trace::{Event, Ids, Phase};

        fn ev(ts_us: u64, name: &'static str, ids: Ids) -> Event {
            Event {
                ts_us,
                dur_us: 0,
                name,
                ph: Phase::Instant,
                tid: 0,
                ids,
            }
        }

        /// A segment span: start block in `ids.seg`, length in `ids.n`.
        fn seg(ts_us: u64, start: u64, len: u64) -> Event {
            Event {
                ts_us,
                dur_us: 1,
                name: "segment",
                ph: Phase::Span,
                tid: 0,
                ids: Ids::seg(start).jobs(len),
            }
        }

        /// A `reduce_shard` span: shard index in its dedicated id field,
        /// records reduced in `ids.n`.
        fn shard(ts_us: u64, job: u64, shard: u64, records: u64) -> Event {
            Event {
                ts_us,
                dur_us: 1,
                name: "reduce_shard",
                ph: Phase::Span,
                tid: 0,
                ids: Ids::job(job).shard(shard).jobs(records),
            }
        }

        /// A `partition_plan` instant: one planned bin with its estimated
        /// weight.
        fn plan(ts_us: u64, job: u64, bin: u64, weight: u64) -> Event {
            ev(ts_us, "partition_plan", Ids::job(job).shard(bin).jobs(weight))
        }

        #[test]
        fn weighted_plan_reconciles_with_reduce_shards() {
            // Two concurrent jobs, interleaved shards, both plans balance.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "submit", Ids::job(1)),
                ev(2, "admit", Ids::job(0).jobs(0)),
                ev(2, "admit", Ids::job(1).jobs(0)),
                plan(10, 0, 0, 7),
                plan(10, 0, 1, 5),
                plan(11, 1, 0, 3),
                plan(11, 1, 1, 9),
                shard(12, 0, 0, 7),
                shard(13, 1, 0, 3),
                shard(14, 1, 1, 9),
                shard(15, 0, 1, 5),
                ev(20, "job_done", Ids::job(0)),
                ev(21, "job_done", Ids::job(1)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn duplicate_shard_id_is_flagged() {
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                shard(2, 0, 0, 4),
                shard(3, 0, 0, 4),
                ev(9, "job_done", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-partition-plan"
                    && v.detail.contains("shard 0 twice")),
                "{v:?}"
            );
        }

        #[test]
        fn plan_weight_mismatch_is_flagged() {
            // The plan claims 12 records but the shards only reduced 10:
            // somewhere a routed record vanished.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                plan(2, 0, 0, 6),
                plan(2, 0, 1, 6),
                shard(3, 0, 0, 6),
                shard(4, 0, 1, 4),
                ev(9, "job_done", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-partition-plan"
                    && v.detail.contains("plan weighs 12")),
                "{v:?}"
            );
        }

        #[test]
        fn planned_bin_without_a_shard_is_flagged() {
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                plan(2, 0, 0, 5),
                plan(2, 0, 1, 5),
                shard(3, 0, 0, 10),
                ev(9, "job_done", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-partition-plan"
                    && v.detail.contains("planned bins")),
                "{v:?}"
            );
        }

        #[test]
        fn quarantined_job_skips_plan_reconciliation() {
            // A reduce shard panicked before routing: counts won't add up,
            // and must not be flagged — the quarantine already covers it.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                plan(2, 0, 0, 12),
                shard(3, 0, 0, 0),
                ev(9, "quarantine", Ids::job(0)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn clean_and_faulty_lifecycles_pass() {
            // Job 0 completes, job 1 is quarantined mid-scan, job 2 is
            // aborted before admission; worker 1 is excluded then
            // readmitted. All legal.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "submit", Ids::job(1)),
                ev(2, "submit", Ids::job(2)),
                ev(3, "admit", Ids::job(0).jobs(0)),
                ev(3, "admit", Ids::job(1).jobs(0)),
                ev(4, "slot_excluded", Ids::none().jobs(1)),
                ev(5, "quarantine", Ids::job(1)),
                ev(6, "slot_readmitted", Ids::none().jobs(1)),
                ev(7, "job_done", Ids::job(0)),
                ev(8, "job_aborted", Ids::job(2)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn missing_terminal_is_flagged() {
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-terminal"
                    && v.detail.contains("0 terminal")),
                "{v:?}"
            );
        }

        #[test]
        fn double_terminal_is_flagged() {
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                ev(2, "job_done", Ids::job(0)),
                ev(3, "job_aborted", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-terminal"
                    && v.detail.contains("2 terminal")),
                "{v:?}"
            );
        }

        #[test]
        fn done_without_admission_is_flagged() {
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "job_done", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-admission"),
                "{v:?}"
            );
            // ...but an abort without admission is the shutdown race, legal.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "job_aborted", Ids::job(0)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn unpaired_exclusion_is_flagged() {
            let events = vec![
                ev(0, "slot_excluded", Ids::none().jobs(2)),
                ev(1, "slot_excluded", Ids::none().jobs(2)),
                ev(2, "slot_readmitted", Ids::none().jobs(3)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-exclusion"
                    && v.detail.contains("excluded twice")),
                "{v:?}"
            );
            assert!(
                v.iter().any(|v| v.invariant == "engine-exclusion"
                    && v.detail.contains("was not excluded")),
                "{v:?}"
            );
        }

        #[test]
        fn resized_partition_that_still_covers_the_file_passes() {
            // A 10-block file: two 4-block segments, a resize to 2, a
            // clipped tail, then the wrap — every block exactly once.
            let events = vec![
                seg(0, 0, 4),
                seg(1, 4, 4),
                ev(2, "segment_resized", Ids::seg(2).jobs(4)),
                seg(3, 8, 2),
                seg(4, 0, 2),
                seg(5, 2, 2),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn broken_segment_chain_is_flagged() {
            // Blocks 4..6 are skipped: the revolution no longer covers the
            // file exactly once.
            let events = vec![seg(0, 0, 4), seg(1, 6, 4)];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-partition"
                    && v.detail.contains("expected 4")),
                "{v:?}"
            );
        }

        #[test]
        fn post_resize_segment_with_stale_length_is_flagged() {
            // The server announced a resize to 2 but kept cutting 4-block
            // segments.
            let events = vec![
                seg(0, 0, 4),
                ev(1, "segment_resized", Ids::seg(2).jobs(4)),
                seg(2, 4, 4),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-resize"
                    && v.detail.contains("requires 2")),
                "{v:?}"
            );
        }

        #[test]
        fn degenerate_resizes_are_flagged() {
            let events = vec![
                seg(0, 0, 4),
                ev(1, "segment_resized", Ids::seg(4).jobs(4)),
                ev(2, "segment_resized", Ids::seg(0).jobs(4)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-resize"
                    && v.detail.contains("current size 4")),
                "{v:?}"
            );
            assert!(
                v.iter().any(|v| v.invariant == "engine-resize"
                    && v.detail.contains("malformed")),
                "{v:?}"
            );
        }

        #[test]
        fn terminal_for_unknown_job_is_flagged() {
            let events = vec![ev(0, "job_done", Ids::job(9))];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-terminal"
                    && v.detail.contains("never submitted")),
                "{v:?}"
            );
        }

        /// A claims record: start block in `ids.job`, blocks claimed in
        /// `ids.seg`, winning commits in `ids.n`.
        fn claims(ts_us: u64, start: u64, claimed: u64, completed: u64) -> Event {
            ev(
                ts_us,
                "segment_claims",
                Ids {
                    job: start,
                    seg: claimed,
                    n: completed,
                    ..Ids::none()
                },
            )
        }

        #[test]
        fn exact_claims_over_two_revolutions_pass() {
            // A 4-block file scanned as two 2-block segments, twice around:
            // the same start blocks repeat, so pairing is FIFO per start.
            let events = vec![
                seg(0, 0, 2),
                claims(1, 0, 2, 2),
                seg(2, 2, 2),
                claims(3, 2, 2, 2),
                seg(4, 0, 2),
                claims(5, 0, 2, 2),
                seg(6, 2, 2),
                claims(7, 2, 2, 2),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn overclaimed_segment_is_flagged() {
            // 3 claims handed out for a 2-block segment: a block was
            // claimed twice off the cursor.
            let events = vec![seg(0, 0, 2), claims(1, 0, 3, 2)];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-claims"
                    && v.detail.contains("handed out 3")),
                "{v:?}"
            );
        }

        #[test]
        fn lost_commit_is_flagged() {
            // Only 1 winning commit landed for a 2-block segment.
            let events = vec![seg(0, 0, 2), claims(1, 0, 2, 1)];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-claims"
                    && v.detail.contains("1 winning commits")),
                "{v:?}"
            );
        }

        #[test]
        fn orphan_claims_record_is_flagged() {
            let events = vec![seg(0, 0, 2), claims(1, 0, 2, 2), claims(2, 2, 2, 2)];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-claims"
                    && v.detail.contains("no scanned segment")),
                "{v:?}"
            );
        }

        #[test]
        fn segment_without_claims_record_is_flagged() {
            // Claim instrumentation is clearly on (one record exists), so
            // a scanned segment with no record is a hole in the proof.
            let events = vec![seg(0, 0, 2), claims(1, 0, 2, 2), seg(2, 2, 2)];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-claims"
                    && v.detail.contains("without a claims record")),
                "{v:?}"
            );
        }

        #[test]
        fn legacy_trace_without_claims_passes_vacuously() {
            let events = vec![seg(0, 0, 4), seg(1, 4, 4), seg(2, 0, 4)];
            assert_eq!(check_engine_events(&events), vec![]);
        }

        #[test]
        fn expired_is_a_terminal_like_any_other() {
            // One expiry terminal is legal (even without admission — a
            // deadline can beat the admit); a done + expired double is not.
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "job_expired", Ids::job(0)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
            let events = vec![
                ev(0, "submit", Ids::job(0)),
                ev(1, "admit", Ids::job(0).jobs(0)),
                ev(2, "job_done", Ids::job(0)),
                ev(3, "job_expired", Ids::job(0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "engine-terminal"
                    && v.detail.contains("2 terminal")),
                "{v:?}"
            );
        }

        /// A `svc_*` instant: job id, class code in `seg`, payload in `n`.
        fn svc(ts_us: u64, name: &'static str, job: u64, class: u64, n: u64) -> Event {
            ev(ts_us, name, Ids { job, seg: class, n, ..Ids::none() })
        }

        /// `svc_admit`-style payload: file index packed over enqueue seq.
        fn fseq(file: u64, seq: u64) -> u64 {
            (file << 32) | seq
        }

        #[test]
        fn service_lifecycles_pass_and_every_submit_needs_one_outcome() {
            // Admitted, typed-rejected, queue-expired, shutdown-aborted,
            // and a Low deferral before admission: all legal.
            let events = vec![
                svc(0, "svc_submit", 0, 2, 7),
                svc(1, "svc_submit", 1, 1, 7),
                svc(2, "svc_submit", 2, 0, 7),
                svc(3, "svc_submit", 3, 0, 7),
                svc(4, "svc_admit", 0, 2, fseq(7, 0)),
                svc(5, "svc_reject", 1, 1, 0),
                svc(6, "svc_defer", 2, 0, fseq(7, 0)),
                svc(7, "svc_expired", 2, 0, fseq(7, 0)),
                svc(8, "svc_abort", 3, 0, fseq(7, 1)),
            ];
            assert_eq!(check_engine_events(&events), vec![]);
            // A submit with no outcome, and an outcome with no submit.
            let events = vec![
                svc(0, "svc_submit", 0, 1, 7),
                svc(1, "svc_admit", 9, 1, fseq(7, 0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "service-outcome"
                    && v.detail.contains("0 admission outcomes")),
                "{v:?}"
            );
            assert!(
                v.iter().any(|v| v.invariant == "service-outcome"
                    && v.detail.contains("never submitted")),
                "{v:?}"
            );
        }

        #[test]
        fn untyped_sheds_and_non_low_deferrals_are_flagged() {
            let events = vec![
                svc(0, "svc_submit", 0, 9, 7),
                svc(1, "svc_reject", 0, 9, 9),
                svc(2, "svc_submit", 1, 2, 7),
                svc(3, "svc_defer", 1, 2, fseq(7, 0)),
                svc(4, "svc_admit", 1, 2, fseq(7, 0)),
            ];
            let v = check_engine_events(&events);
            assert!(
                v.iter().any(|v| v.invariant == "service-class"
                    && v.detail.contains("class code 9")),
                "{v:?}"
            );
            assert!(
                v.iter().any(|v| v.invariant == "service-class"
                    && v.detail.contains("reason code 9")),
                "{v:?}"
            );
            assert!(
                v.iter().any(|v| v.invariant == "service-class"
                    && v.detail.contains("only Low defers")),
                "{v:?}"
            );
        }

        #[test]
        fn out_of_order_admission_within_a_class_queue_is_flagged() {
            // Same file + class: seq 1 admitted before seq 0 breaks FIFO.
            // A different class (or file) interleaving freely does not.
            let events = vec![
                svc(0, "svc_submit", 0, 1, 7),
                svc(1, "svc_submit", 1, 1, 7),
                svc(2, "svc_submit", 2, 2, 7),
                svc(3, "svc_admit", 2, 2, fseq(7, 0)),
                svc(4, "svc_admit", 1, 1, fseq(7, 1)),
                svc(5, "svc_admit", 0, 1, fseq(7, 0)),
            ];
            let v = check_engine_events(&events);
            assert_eq!(v.len(), 1, "{v:?}");
            assert_eq!(v[0].invariant, "service-fifo");
            assert!(v[0].detail.contains("seq 0 after 1"), "{v:?}");
        }
    }

    #[test]
    fn unresolved_attempt_is_flagged() {
        let world = tiny_world(2);
        let mut trace = good_trace(&world);
        let b0 = world.dfs.file(world.workload[0].file).blocks[0];
        // A start with no matching end or failure.
        trace.push(TraceEvent {
            node: Some(NodeId(5)),
            batch: Some(BatchKey(0)),
            block: Some(b0),
            ..ev(40, TraceKind::MapStart)
        });
        let violations = checker(&world).check(&trace);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "batch-consistency" && v.detail.contains("starts vs")),
            "{violations:?}"
        );
    }
}
