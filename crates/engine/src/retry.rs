//! Client-side retry with capped exponential backoff and seeded jitter.
//!
//! A [`crate::ScanService`] sheds load with typed
//! [`JobError::Rejected`](crate::JobError::Rejected) errors; the polite
//! client response is to back off and resubmit. [`RetryPolicy`] packages
//! the standard policy: exponential growth from a base delay, a hard cap,
//! and *deterministic* jitter (seeded hash of `(seed, salt, attempt)`)
//! so a fleet of clients retrying the same burst decorrelates — no
//! thundering herd — while any single run stays exactly reproducible,
//! which the chaos fuzzer's replay identity relies on.

use crate::types::{JobError, RejectReason};
use std::time::Duration;

/// Capped exponential backoff with seeded jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, pre-jitter.
    pub base: Duration,
    /// Multiplier applied per further retry (≥ 1.0).
    pub factor: f64,
    /// Hard cap on the pre-jitter backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 3 retries, 1 ms base doubling to a 50 ms cap — tuned for the
    /// in-process service, where a revolution finishes in milliseconds.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(1),
            factor: 2.0,
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5337,
        }
    }
}

/// splitmix64: cheap, well-mixed, and stable across platforms.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Whether `err` is worth retrying at all: only capacity rejections
    /// (`QueueFull`/`Overloaded`) can succeed on resubmit. An
    /// `UnknownFile` rejection, a panic, an abort, or an expired deadline
    /// never will.
    pub fn retryable(err: &JobError) -> bool {
        matches!(
            err,
            JobError::Rejected {
                reason: RejectReason::QueueFull | RejectReason::Overloaded,
                ..
            }
        )
    }

    /// Backoff to sleep before retry `attempt` (1-based: the first retry
    /// is attempt 1) of the operation identified by `salt` (e.g. a job
    /// index). Pure: the same `(policy, attempt, salt)` always yields the
    /// same duration.
    ///
    /// The pre-jitter delay is `base * factor^(attempt-1)` capped at
    /// [`max_backoff`](RetryPolicy::max_backoff); equal-jitter then keeps
    /// a random half — the result is uniform in `[delay/2, delay)`, so
    /// backoff never collapses to zero and never exceeds the cap.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self.factor.max(1.0).powi(attempt.saturating_sub(1).min(63) as i32);
        let raw = self.base.as_nanos() as f64 * exp;
        let capped = raw.min(self.max_backoff.as_nanos() as f64).max(0.0) as u64;
        let h = mix(self.jitter_seed ^ mix(salt ^ ((attempt as u64) << 32)));
        // Uniform fraction in [0, 1) from the top 53 bits.
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = capped / 2 + ((capped / 2) as f64 * frac) as u64;
        Duration::from_nanos(jittered)
    }

    /// Run `op` with retries: attempt 0 first, then up to
    /// [`max_retries`](RetryPolicy::max_retries) more, sleeping
    /// [`backoff`](RetryPolicy::backoff) before each retry. Retries only
    /// on [`retryable`](RetryPolicy::retryable) errors; any other error
    /// (or exhaustion) is returned as-is. `op` receives the attempt
    /// number (0-based).
    pub fn run<T>(
        &self,
        salt: u64,
        mut op: impl FnMut(u32) -> Result<T, JobError>,
    ) -> Result<T, JobError> {
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_retries && Self::retryable(&e) => {
                    attempt += 1;
                    std::thread::sleep(self.backoff(attempt, salt));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QosClass;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = RetryPolicy::default();
        for attempt in 1..=8 {
            for salt in [0u64, 7, 1 << 40] {
                assert_eq!(p.backoff(attempt, salt), p.backoff(attempt, salt));
                assert!(p.backoff(attempt, salt) <= p.max_backoff);
            }
        }
        // Pre-jitter growth: attempt 4's floor (cap/2 at worst) exceeds
        // attempt 1's ceiling only when uncapped; check the raw floors.
        let early = p.backoff(1, 3);
        assert!(early >= p.base / 2, "jitter keeps at least half the delay");
        // Different salts decorrelate (overwhelmingly likely to differ).
        assert_ne!(p.backoff(3, 1), p.backoff(3, 2));
    }

    #[test]
    fn run_retries_only_capacity_rejections() {
        let p = RetryPolicy {
            base: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<u32, _> = p.run(9, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(JobError::Rejected {
                    reason: RejectReason::QueueFull,
                    class: QosClass::Low,
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<(), _> = p.run(9, |_| {
            calls += 1;
            Err(JobError::Rejected {
                reason: RejectReason::UnknownFile,
                class: QosClass::High,
            })
        });
        assert!(matches!(
            out,
            Err(JobError::Rejected { reason: RejectReason::UnknownFile, .. })
        ));
        assert_eq!(calls, 1, "UnknownFile can never succeed; no retry");

        let mut calls = 0;
        let out: Result<(), _> = p.run(9, |_| {
            calls += 1;
            Err(JobError::Rejected {
                reason: RejectReason::Overloaded,
                class: QosClass::Normal,
            })
        });
        assert!(RetryPolicy::retryable(&out.unwrap_err()));
        assert_eq!(calls, 1 + p.max_retries, "exhausts the retry budget");
    }
}
