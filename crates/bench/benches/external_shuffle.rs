//! In-memory vs bounded-memory (spilling) execution: the real cost of the
//! sort/spill/merge pipeline the simulator's `sort_s_per_mb` abstracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s3_engine::{run_job, run_job_external, ExecConfig, ExternalConfig};
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::corpus;

fn bench_external(c: &mut Criterion) {
    let store = corpus(77, 4 << 20, 256 << 10);
    let job = PatternWordCount::all();
    let exec = ExecConfig {
        num_threads: 4,
        num_reducers: 8,
    ..ExecConfig::default()
    };

    let mut g = c.benchmark_group("external_shuffle");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));

    g.bench_function("in_memory", |b| {
        b.iter(|| run_job(&job, &store, &exec));
    });
    for spill_records in [100_000usize, 10_000, 1_000] {
        g.bench_with_input(
            BenchmarkId::new("spilling", spill_records),
            &spill_records,
            |b, &spill_records| {
                let cfg = ExternalConfig {
                    exec: exec.clone(),
                    spill_records,
                    tmp_dir: None,
                };
                b.iter(|| run_job_external(&job, &store, &cfg).expect("spill io"));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_external);
criterion_main!(benches);
