//! Offline vendored minimal stand-in for `criterion`: same macro and type
//! surface, but a simple timing loop instead of statistical analysis.
//! Each benchmark runs a short calibration pass, then a fixed number of
//! timed samples, and prints the median ns/iter.

use std::fmt;
use std::time::{Duration, Instant};

/// Work-per-iteration hint; printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: aim for samples of at least ~5 ms each.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        const SAMPLES: usize = 10;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(ns[ns.len() / 2])
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this runner's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; calibration sets sample length.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the throughput hint for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match bencher.median_ns_per_iter() {
            Some(ns) => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                    }
                    Throughput::Bytes(n) => {
                        format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
                    }
                });
                println!("{label:<60} {ns:>14.1} ns/iter{}", rate.unwrap_or_default());
            }
            None => println!("{label:<60} (no samples)"),
        }
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        BenchmarkGroup { name, throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// Identity function the optimizer must assume reads/writes its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum_100", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
