//! SVG Gantt rendering of execution traces.
//!
//! One horizontal lane per node; map tasks draw as blue bars, reduces as
//! orange, failed attempts hatched red; job submissions and completions as
//! vertical markers. Pure string generation — no dependencies, viewable in
//! any browser.

use crate::trace::{Trace, TraceKind};
use s3_cluster::NodeId;
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Drawing width in pixels (time axis).
    pub width: u32,
    /// Height of one node lane in pixels.
    pub lane_height: u32,
    /// Title printed above the chart.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 1200,
            lane_height: 14,
            title: String::from("execution timeline"),
        }
    }
}

const MARGIN_LEFT: u32 = 70;
const MARGIN_TOP: u32 = 40;
const MARGIN_BOTTOM: u32 = 24;

/// Render `trace` as an SVG document with one lane per listed node.
pub fn render_svg(trace: &Trace, nodes: &[NodeId], opts: &SvgOptions) -> String {
    let mut out = String::new();
    let height = MARGIN_TOP + nodes.len() as u32 * opts.lane_height + MARGIN_BOTTOM;
    let total_w = MARGIN_LEFT + opts.width + 20;

    let (t0, t1) = match (trace.events().first(), trace.events().last()) {
        (Some(a), Some(b)) => (a.at.as_secs_f64(), b.at.as_secs_f64()),
        _ => (0.0, 1.0),
    };
    let span = (t1 - t0).max(1e-9);
    let x_of = |t: f64| -> f64 { MARGIN_LEFT as f64 + (t - t0) / span * opts.width as f64 };

    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" height="{height}" font-family="monospace" font-size="10">"#
    );
    let _ = writeln!(
        out,
        r#"<text x="{MARGIN_LEFT}" y="16" font-size="13">{}</text>"#,
        xml_escape(&opts.title)
    );
    let _ = writeln!(
        out,
        r##"<text x="{MARGIN_LEFT}" y="30" fill="#555">{t0:.1}s .. {t1:.1}s &#8226; blue=map orange=reduce red=failed</text>"##
    );

    // Lanes and bars.
    for (row, &node) in nodes.iter().enumerate() {
        let y = MARGIN_TOP + row as u32 * opts.lane_height;
        let bar_h = opts.lane_height.saturating_sub(3).max(2);
        let _ = writeln!(
            out,
            r##"<text x="4" y="{}" fill="#333">{}</text>"##,
            y + bar_h,
            node
        );
        let _ = writeln!(
            out,
            r##"<line x1="{MARGIN_LEFT}" y1="{}" x2="{}" y2="{}" stroke="#eee"/>"##,
            y + bar_h + 1,
            MARGIN_LEFT + opts.width,
            y + bar_h + 1
        );
        for (s, e) in trace.map_intervals_on(node) {
            let x = x_of(s.as_secs_f64());
            let w = (x_of(e.as_secs_f64()) - x).max(0.5);
            let _ = writeln!(
                out,
                r##"<rect x="{x:.1}" y="{y}" width="{w:.1}" height="{bar_h}" fill="#4878a8" fill-opacity="0.85"/>"##
            );
        }
        for (s, e) in trace.reduce_intervals_on(node) {
            let x = x_of(s.as_secs_f64());
            let w = (x_of(e.as_secs_f64()) - x).max(0.5);
            let _ = writeln!(
                out,
                r##"<rect x="{x:.1}" y="{y}" width="{w:.1}" height="{bar_h}" fill="#d8841f" fill-opacity="0.7"/>"##
            );
        }
    }

    // Failure markers.
    for e in trace.events() {
        if matches!(e.kind, TraceKind::MapFailed | TraceKind::ReduceFailed) {
            if let Some(node) = e.node {
                if let Some(row) = nodes.iter().position(|&n| n == node) {
                    let y = MARGIN_TOP + row as u32 * opts.lane_height;
                    let x = x_of(e.at.as_secs_f64());
                    let _ = writeln!(
                        out,
                        r##"<rect x="{:.1}" y="{y}" width="3" height="{}" fill="#c03030"/>"##,
                        x - 1.5,
                        opts.lane_height.saturating_sub(3).max(2)
                    );
                }
            }
        }
    }

    // Job lifecycle markers along the top.
    for e in trace.events() {
        let (color, label) = match e.kind {
            TraceKind::JobSubmitted => ("#3a9a3a", "+"),
            TraceKind::JobCompleted => ("#9a3a9a", "*"),
            _ => continue,
        };
        let x = x_of(e.at.as_secs_f64());
        let _ = writeln!(
            out,
            r##"<text x="{x:.1}" y="{}" fill="{color}">{label}</text>"##,
            MARGIN_TOP - 4
        );
    }

    // Time axis ticks.
    for i in 0..=8 {
        let t = t0 + span * i as f64 / 8.0;
        let x = x_of(t);
        let y = height - MARGIN_BOTTOM + 12;
        let _ = writeln!(out, r##"<text x="{x:.1}" y="{y}" fill="#555">{t:.0}s</text>"##);
    }

    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use s3_sim::SimTime;

    fn demo_trace() -> Trace {
        let mut t = Trace::new();
        let ev = |at: u64, kind, node: Option<u32>| TraceEvent {
            at: SimTime::from_secs(at),
            kind,
            node: node.map(NodeId),
            jobs: vec![crate::JobId(0)],
            batch: None,
            block: None,
        };
        t.push(ev(0, TraceKind::JobSubmitted, None));
        t.push(ev(1, TraceKind::MapStart, Some(0)));
        t.push(ev(5, TraceKind::MapEnd, Some(0)));
        t.push(ev(5, TraceKind::ReduceStart, Some(1)));
        t.push(ev(6, TraceKind::MapStart, Some(1)));
        t.push(ev(8, TraceKind::MapFailed, Some(1)));
        t.push(ev(9, TraceKind::ReduceEnd, Some(1)));
        t.push(ev(9, TraceKind::JobCompleted, None));
        t
    }

    #[test]
    fn svg_contains_expected_elements() {
        let svg = render_svg(
            &demo_trace(),
            &[NodeId(0), NodeId(1)],
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("#4878a8"), "map bar color present");
        assert!(svg.contains("#d8841f"), "reduce bar color present");
        assert!(svg.contains("#c03030"), "failure marker present");
        assert!(svg.contains("node0") && svg.contains("node1"));
    }

    #[test]
    fn empty_trace_renders_valid_svg() {
        let svg = render_svg(&Trace::new(), &[NodeId(0)], &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn title_is_escaped() {
        let svg = render_svg(
            &Trace::new(),
            &[],
            &SvgOptions {
                title: "a <b> & c".into(),
                ..SvgOptions::default()
            },
        );
        assert!(svg.contains("a &lt;b&gt; &amp; c"));
    }
}
