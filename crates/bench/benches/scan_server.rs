//! Benchmarks of the live SharedScanServer: throughput of one revolution
//! serving k concurrent jobs, versus k independent `run_job` passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s3_engine::{run_job, BlockStore, ExecConfig, SharedScanServer};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;

fn corpus() -> BlockStore {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), 4 << 20);
    BlockStore::from_text(&text, 128 << 10)
}

fn prefixes(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("{}a", (b'b' + i as u8) as char))
        .collect()
}

fn bench_server(c: &mut Criterion) {
    let store = corpus();
    let mut g = c.benchmark_group("scan_server");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));

    for k in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("server_revolution", k), &k, |b, &k| {
            b.iter(|| {
                let server = SharedScanServer::new(store.clone(), 4, 4);
                let handles: Vec<_> = prefixes(k)
                    .into_iter()
                    .map(|p| server.submit(PatternWordCount::prefix(p)))
                    .collect();
                let outs: Vec<_> = handles.into_iter().map(|h| h.wait().expect("job completed")).collect();
                server.shutdown();
                outs
            });
        });
        g.bench_with_input(BenchmarkId::new("independent_passes", k), &k, |b, &k| {
            let cfg = ExecConfig {
                num_threads: 4,
                num_reducers: 8,
            ..ExecConfig::default()
            };
            b.iter(|| {
                prefixes(k)
                    .into_iter()
                    .map(|p| run_job(&PatternWordCount::prefix(p), &store, &cfg))
                    .collect::<Vec<_>>()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
