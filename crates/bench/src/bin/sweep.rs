//! `sweep` — run a scheduler × block-size × arrival-pattern × seed grid
//! and emit one CSV row per cell.
//!
//! ```text
//! sweep --schedulers s3,fifo,mrs1,mrs3 --blocks 32,64,128 \
//!       --patterns sparse,dense --seeds 1,2,3 --profile wordcount
//! ```

use s3_bench::experiments::DEFAULT_SEED;
use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{CapacityScheduler, FairScheduler, FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{job::requests_from_arrivals, simulate, CostModel, EngineConfig, Scheduler};
use s3_workloads::{
    paper_lineitem_file, paper_wordcount_file, selection, wordcount_heavy, wordcount_normal,
    ArrivalPattern,
};
use std::process::ExitCode;

fn parse_list(args: &[String], flag: &str, default: &str) -> Vec<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(default)
        .split(',')
        .map(str::to_string)
        .collect()
}

fn scheduler_by_name(name: &str, n_jobs: usize) -> Option<Box<dyn Scheduler>> {
    Some(match name {
        "s3" => Box::new(S3Scheduler::default()),
        "fifo" => Box::new(FifoScheduler::new()),
        "fair" => Box::new(FairScheduler::new()),
        "capacity2" => Box::new(CapacityScheduler::new(2)),
        "capacity4" => Box::new(CapacityScheduler::new(4)),
        "mrs1" => Box::new(MRShareScheduler::mrs1(n_jobs)),
        "mrs2" => Box::new(MRShareScheduler::mrs2(n_jobs)),
        "mrs3" => Box::new(MRShareScheduler::mrs3(n_jobs)),
        _ => return None,
    })
}

fn pattern_by_name(name: &str) -> Option<ArrivalPattern> {
    Some(match name {
        "sparse" => ArrivalPattern::paper_sparse(),
        "dense" => ArrivalPattern::paper_dense(),
        "poisson" => ArrivalPattern::Poisson {
            n: 10,
            mean_gap_s: 60.0,
            seed: 11,
        },
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: sweep [--schedulers s3,fifo,...] [--blocks 32,64,128] \
             [--patterns sparse,dense,poisson] [--seeds a,b,...] \
             [--profile wordcount|heavy|selection]\n\
             schedulers: s3 fifo fair capacity2 capacity4 mrs1 mrs2 mrs3"
        );
        return ExitCode::from(2);
    }

    let schedulers = parse_list(&args, "--schedulers", "s3,fifo,mrs1,mrs3");
    let blocks = parse_list(&args, "--blocks", "64");
    let patterns = parse_list(&args, "--patterns", "sparse");
    let seeds = parse_list(&args, "--seeds", &DEFAULT_SEED.to_string());
    let profile_name = parse_list(&args, "--profile", "wordcount")
        .into_iter()
        .next()
        .expect("profile list is non-empty");

    let profile = match profile_name.as_str() {
        "wordcount" => wordcount_normal(),
        "heavy" => wordcount_heavy(),
        "selection" => selection(),
        other => {
            eprintln!("unknown profile: {other}");
            return ExitCode::FAILURE;
        }
    };

    let cluster = ClusterTopology::paper_cluster();
    println!("scheduler,profile,block_mb,pattern,seed,tet_s,art_s,blocks_read,mb_saved");

    for block in &blocks {
        let Ok(block_mb) = block.parse::<u64>() else {
            eprintln!("bad block size: {block}");
            return ExitCode::FAILURE;
        };
        let dataset = if profile_name == "selection" {
            paper_lineitem_file(&cluster, block_mb)
        } else {
            paper_wordcount_file(&cluster, block_mb)
        };
        for pattern_name in &patterns {
            let Some(pattern) = pattern_by_name(pattern_name) else {
                eprintln!("unknown pattern: {pattern_name}");
                return ExitCode::FAILURE;
            };
            let arrivals = pattern.times();
            let workload = requests_from_arrivals(&profile, dataset.file, &arrivals);
            for seed_str in &seeds {
                let Ok(seed) = seed_str.parse::<u64>() else {
                    eprintln!("bad seed: {seed_str}");
                    return ExitCode::FAILURE;
                };
                for sched_name in &schedulers {
                    let Some(mut sched) = scheduler_by_name(sched_name, workload.len()) else {
                        eprintln!("unknown scheduler: {sched_name}");
                        return ExitCode::FAILURE;
                    };
                    match simulate(
                        &cluster,
                        &SlowdownSchedule::none(),
                        &dataset.dfs,
                        &CostModel::default(),
                        &workload,
                        sched.as_mut(),
                        &EngineConfig {
                            seed,
                            ..EngineConfig::default()
                        },
                    ) {
                        Ok(m) => println!(
                            "{},{},{},{},{},{:.2},{:.2},{},{:.0}",
                            m.scheduler,
                            profile_name,
                            block_mb,
                            pattern_name,
                            seed,
                            m.tet().as_secs_f64(),
                            m.art().as_secs_f64(),
                            m.blocks_read,
                            m.mb_saved()
                        ),
                        Err(e) => {
                            eprintln!("{sched_name}/{block_mb}/{pattern_name}/{seed}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
