//! Satellite (a): the byte-slice scan path accepts arbitrary (non-UTF-8)
//! input end to end, while the `str` shim reports invalid sequences with a
//! typed error instead of panicking.

use s3_engine::{
    run_job, run_job_legacy, BlockStore, ExecConfig, MapReduceJob, ServerConfig, SharedScanServer,
};

/// Counts raw byte tokens without ever converting to `str`: keys are the
/// token bytes themselves, so invalid UTF-8 flows through untouched.
struct ByteTokenCount;

impl MapReduceJob for ByteTokenCount {
    type K = Vec<u8>;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(Vec<u8>, i64)) {
        for w in line.split_whitespace() {
            emit(w.as_bytes().to_vec(), 1);
        }
    }

    fn map_bytes(&self, line: &[u8], emit: &mut dyn FnMut(Vec<u8>, i64)) {
        for w in memchr::tokens(line) {
            emit(w.to_vec(), 1);
        }
    }

    fn reduce(&self, _k: &Vec<u8>, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
}

/// A corpus whose middle block is not valid UTF-8 (lone continuation and
/// overlong-ish bytes around ordinary ASCII words).
fn invalid_utf8_store() -> BlockStore {
    BlockStore::from_byte_blocks(vec![
        b"alpha beta alpha\n".to_vec(),
        b"raw \xff\xfe bytes \x80mid\x80word\n".to_vec(),
        b"gamma \xf0\x28\x8c\x28 delta\n".to_vec(),
    ])
}

#[test]
fn block_str_reports_invalid_blocks_with_a_typed_error() {
    let s = invalid_utf8_store();
    assert!(s.block_str(0).is_ok());
    let err = s.block_str(1).unwrap_err();
    assert_eq!(err.block, 1);
    assert_eq!(err.valid_up_to, 4, "valid through \"raw \"");
    assert!(err.to_string().contains("not valid UTF-8"));
    // The byte view hands out the payload unmodified.
    assert_eq!(s.block(1), b"raw \xff\xfe bytes \x80mid\x80word\n");
}

#[test]
fn run_job_scans_invalid_utf8_byte_for_byte() {
    let s = invalid_utf8_store();
    let cfg = ExecConfig {
        num_threads: 2,
        num_reducers: 2,
    ..ExecConfig::default()
    };
    let out = run_job(&ByteTokenCount, &s, &cfg);
    // Tokens with invalid bytes arrive intact — no replacement characters.
    assert_eq!(out.records[&b"\xff\xfe".to_vec()], 1);
    assert_eq!(out.records[&b"\x80mid\x80word".to_vec()], 1);
    assert_eq!(out.records[&b"\xf0\x28\x8c\x28".to_vec()], 1);
    assert_eq!(out.records[&b"alpha".to_vec()], 2);
    let total: i64 = out.records.values().sum();
    assert_eq!(total, 10, "every whitespace-delimited token counted");
    assert_eq!(out.stats.bytes_scanned as usize, s.total_bytes());
}

#[test]
fn legacy_path_degrades_lossily_but_does_not_panic() {
    let s = invalid_utf8_store();
    let cfg = ExecConfig {
        num_threads: 2,
        num_reducers: 2,
    ..ExecConfig::default()
    };
    let out = run_job_legacy(&ByteTokenCount, &s, &cfg);
    // The oracle path lossily converts, so invalid sequences become U+FFFD
    // — but valid tokens are identical to the byte path and nothing panics.
    assert_eq!(out.records[&b"alpha".to_vec()], 2);
    assert_eq!(out.records[&b"gamma".to_vec()], 1);
    let total: i64 = out.records.values().sum();
    assert_eq!(total, 10);
    assert!(out
        .records
        .keys()
        .any(|k| String::from_utf8_lossy(k).contains('\u{FFFD}')));
}

#[test]
fn shared_scan_server_serves_invalid_utf8_stores() {
    let s = invalid_utf8_store();
    let reference = run_job(
        &ByteTokenCount,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );
    let server = SharedScanServer::with_config(s, ServerConfig::new(2, 2));
    let out = server.submit(ByteTokenCount).wait().expect("job completes");
    assert_eq!(out.records, reference.records);
    server.shutdown();
}

#[test]
fn from_bytes_round_trips_an_invalid_corpus() {
    let raw: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
    let s = BlockStore::from_bytes(&raw, 512);
    // Line-aligned re-blocking preserves every payload byte (modulo the
    // normalized trailing newline); scanning it must not panic.
    let cfg = ExecConfig {
        num_threads: 4,
        num_reducers: 2,
    ..ExecConfig::default()
    };
    let out = run_job(&ByteTokenCount, &s, &cfg);
    assert_eq!(out.stats.bytes_scanned as usize, s.total_bytes());
    assert!(out.records.values().all(|&c| c > 0));
}
