//! The S³ execution model running for real: a long-lived shared-scan
//! server processing jobs that arrive while the scan is spinning.
//!
//! Ten pattern-wordcount jobs are submitted over ~a quarter of a second;
//! each joins the circular scan at the next segment boundary, shares every
//! segment with whoever else is active, and completes after one
//! revolution. Compare the total block scans against the 10 full scans
//! independent execution would need.
//!
//! ```text
//! cargo run --release -p s3-bench --example live_shared_scan
//! ```

use s3_engine::{BlockStore, SharedScanServer};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::{Duration, Instant};

fn main() {
    println!("generating corpus...");
    let gen = TextGen::paper_like();
    let text = gen.generate(&mut SimRng::seed_from_u64(5), 32 << 20);
    let store = BlockStore::from_text(&text, 512 << 10);
    let num_blocks = store.num_blocks();
    println!(
        "corpus: {:.0} MB in {num_blocks} blocks; segments of 8 blocks\n",
        store.total_bytes() as f64 / (1 << 20) as f64
    );

    let server = SharedScanServer::new(store, 8, 4);
    let t0 = Instant::now();

    // Submit ten jobs ~25 ms apart — they arrive mid-scan, like the
    // paper's job arrival patterns.
    let prefixes = ["ba", "ta", "da", "ma", "na", "pa", "ra", "sa", "va", "za"];
    let mut handles = Vec::new();
    for p in prefixes {
        handles.push((p, t0.elapsed(), server.submit(PatternWordCount::prefix(p))));
        std::thread::sleep(Duration::from_millis(25));
    }

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "job", "submitted", "completed", "response", "out keys"
    );
    for (p, submitted, h) in handles {
        let out = h.wait().expect("job completed");
        let completed = t0.elapsed();
        println!(
            "{:<8} {:>11.0?} {:>11.0?} {:>11.0?} {:>10}",
            format!("{p}*"),
            submitted,
            completed,
            completed - submitted,
            out.records.len()
        );
    }

    let scanned = server.blocks_scanned();
    let iterations = server.iterations();
    server.shutdown();
    println!(
        "\n{scanned} block scans over {iterations} segment iterations served 10 jobs \
         ({} scans if run independently — {:.1}x I/O saved)",
        10 * num_blocks,
        (10 * num_blocks) as f64 / scanned as f64
    );
}
