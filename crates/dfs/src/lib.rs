#![warn(missing_docs)]

//! # s3-dfs — simulated HDFS-style block store
//!
//! Files are split into fixed-size blocks; blocks are replicated and placed
//! on cluster nodes by a rack-aware policy. On top of the raw block layout,
//! this crate provides the **segment** abstraction the S³ paper introduces:
//! a segment is a run of consecutive blocks sized so that one segment equals
//! one full wave of map tasks, and segments are scanned in a circular
//! (round-robin) order so a job may begin at *any* segment.
//!
//! Nothing here does real I/O; the store tracks metadata only, exactly like
//! the HDFS NameNode view a scheduler sees.

pub mod block;
pub mod file;
pub mod placement;
pub mod segment;

pub use block::{BlockId, BlockMeta};
pub use file::{Dfs, DfsError, FileId, FileMeta};
pub use placement::{PlacementPolicy, RackAwarePlacement, RoundRobinPlacement};
pub use segment::{SegmentId, Segmentation};

/// Megabytes as used throughout the workspace (2^20 bytes).
pub const MB: u64 = 1 << 20;
