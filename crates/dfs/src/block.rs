//! Block identities and metadata.

use crate::file::FileId;
use s3_cluster::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique block identifier (dense across the whole store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Metadata of one block, as seen by the NameNode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Global id.
    pub id: BlockId,
    /// Owning file.
    pub file: FileId,
    /// Index of this block within its file (0-based).
    pub index_in_file: u32,
    /// Payload size in bytes. All blocks but possibly the last are full.
    pub size_bytes: u64,
    /// Nodes holding a replica, in placement order (first = primary).
    pub replicas: Vec<NodeId>,
}

impl BlockMeta {
    /// Whether `node` holds a replica of this block.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }

    /// Size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / crate::MB as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let b = BlockMeta {
            id: BlockId(0),
            file: FileId(0),
            index_in_file: 0,
            size_bytes: 64 * crate::MB,
            replicas: vec![NodeId(3), NodeId(17)],
        };
        assert!(b.is_local_to(NodeId(3)));
        assert!(b.is_local_to(NodeId(17)));
        assert!(!b.is_local_to(NodeId(4)));
        assert_eq!(b.size_mb(), 64.0);
    }

    #[test]
    fn display() {
        assert_eq!(BlockId(12).to_string(), "blk12");
    }
}
