//! `s3load` — open-loop SLO driver for the shared-scan server.
//!
//! Submits a Poisson stream of jobs at their scheduled arrival times
//! (open loop: a slow server does not slow the arrivals, so queueing
//! shows up as latency instead of being hidden by back-pressure), then
//! reconstructs per-job timelines from the drained trace via
//! [`JobJournal`] and reports sustained throughput plus windowed
//! tail-latency-over-time through [`WindowedHdr`]:
//!
//! - **admission_us** — submit → admit (the journal's `queue_us`);
//! - **completion_us** — submit → terminal, overall and per window;
//! - **windows** — fixed wall-clock windows over the run, each with its
//!   own HDR summary, so a latency regression that only bites under
//!   backlog is visible as a trend rather than averaged away.
//!
//! Results land in an `slo` section of `BENCH_engine.json` (read-modify-
//! write: the rest of the report is preserved). With `--listen` the
//! server exposes the live Prometheus endpoint and `s3load` self-scrapes
//! it once mid-run, so one process exercises the full export path.
//!
//! ```text
//! cargo run --release -p s3-bench --bin s3load -- \
//!     [--quick] [--jobs N] [--mean-gap-ms MS] [--seed S] [--window-ms MS]
//!     [--threads N] [--bps N] [--listen ADDR] [--journal PATH] [--out PATH]
//! ```

use s3_engine::{
    BlockStore, FileId, FileSpec, JobError, Obs, QosClass, QosConfig, RetryPolicy, ScanService,
    ServerConfig, ServiceConfig, SharedScanServer,
};
use s3_obs::hdr::{HdrHistogram, HdrSummary, WindowedHdr, DEFAULT_SUB_BUCKET_BITS};
use s3_obs::journal::{JobJournal, Outcome};
use s3_obs::prom::scrape_text;
use s3_sim::SimRng;
use s3_workloads::arrivals::ArrivalPattern;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use s3_workloads::ClassMix;
use std::time::{Duration, Instant};

const BLOCK_BYTES: usize = 4 << 10;
/// Closed windows retained (and reported); older windows are evicted.
const MAX_WINDOWS: usize = 64;

struct Opts {
    jobs: usize,
    mean_gap_ms: f64,
    seed: u64,
    window_ms: u64,
    threads: usize,
    bps: usize,
    corpus_bytes: usize,
    classes: bool,
    listen: Option<String>,
    journal: Option<String>,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            jobs: 60,
            mean_gap_ms: 8.0,
            seed: 7,
            window_ms: 250,
            threads: 2,
            bps: 2,
            corpus_bytes: 1 << 20,
            classes: false,
            listen: None,
            journal: None,
            out: "BENCH_engine.json".into(),
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("s3load: {msg}");
    eprintln!(
        "usage: s3load [--quick] [--classes] [--jobs N] [--mean-gap-ms MS] [--seed S] \
         [--window-ms MS] [--threads N] [--bps N] [--listen ADDR] [--journal PATH] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                o.jobs = 24;
                o.mean_gap_ms = 4.0;
                o.window_ms = 100;
                o.corpus_bytes = 256 << 10;
            }
            "--classes" => o.classes = true,
            "--jobs" => o.jobs = next("--jobs", &mut args).parse().unwrap_or_else(|_| fail("bad --jobs")),
            "--mean-gap-ms" => {
                o.mean_gap_ms = next("--mean-gap-ms", &mut args).parse().unwrap_or_else(|_| fail("bad --mean-gap-ms"))
            }
            "--seed" => o.seed = next("--seed", &mut args).parse().unwrap_or_else(|_| fail("bad --seed")),
            "--window-ms" => {
                o.window_ms = next("--window-ms", &mut args).parse().unwrap_or_else(|_| fail("bad --window-ms"))
            }
            "--threads" => o.threads = next("--threads", &mut args).parse().unwrap_or_else(|_| fail("bad --threads")),
            "--bps" => o.bps = next("--bps", &mut args).parse().unwrap_or_else(|_| fail("bad --bps")),
            "--listen" => o.listen = Some(next("--listen", &mut args)),
            "--journal" => o.journal = Some(next("--journal", &mut args)),
            "--out" => o.out = next("--out", &mut args),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if o.jobs == 0 || o.window_ms == 0 || o.mean_gap_ms <= 0.0 {
        fail("--jobs, --window-ms, and --mean-gap-ms must be positive");
    }
    o
}

fn prefix(i: usize) -> String {
    format!("{}a", (b'b' + (i % 20) as u8) as char)
}

fn summary_json(s: &HdrSummary) -> serde_json::Value {
    let text = serde_json::to_string(s).expect("summary serializes");
    serde_json::from_str(&text).expect("summary round-trips")
}

/// The `--classes` mode: a two-phase multi-tenant QoS experiment over
/// [`ScanService`] instead of the bare server.
///
/// **Phase 1 (baseline)** runs High-class jobs one at a time through an
/// uncontended service, measuring solo completion latency — the
/// reference the overload tail is judged against — and deriving the
/// sustainable merged throughput (`max_inflight / mean solo latency`).
///
/// **Phase 2 (overload)** fires the full job count open-loop at ~2× that
/// sustainable rate with the default [`ClassMix`] (20% High / 50% Normal
/// / 30% Low) against deliberately small admission bounds, retrying
/// capacity sheds through [`RetryPolicy`]. Latencies are measured
/// client-side (submit call → handle resolution, polled) per class.
///
/// Results land in a `service` section of `BENCH_engine.json`
/// (read-modify-write like the `slo` section), including the headline
/// degradation ratio: overloaded High p99 over baseline High p99.
fn classes_main(o: &Opts) {
    const TENANTS: [&str; 2] = ["logs", "events"];
    eprintln!("s3load: building 2 × {} KiB corpora...", o.corpus_bytes >> 11);
    let gen = TextGen::new(10_000, 1.1);
    let stores: Vec<BlockStore> = [31u64, 37]
        .iter()
        .map(|s| {
            let text = gen.generate(&mut SimRng::seed_from_u64(*s), o.corpus_bytes / 2);
            BlockStore::from_text(&text, BLOCK_BYTES)
        })
        .collect();
    // Backpressure only protects the tail if the queues are shallow:
    // a deep queue converts overload into latency instead of sheds, and
    // every class (High included) then waits behind the backlog. Bounds
    // of a few jobs keep admitted work close to the serving width, so
    // excess load is shed-and-retried rather than parked. The width is
    // kept narrow too — a merged revolution still runs every rider's
    // map work, so each extra inflight job stretches the revolution
    // every class rides, High included.
    // max_queued_total is deliberately the sum of the per-class caps:
    // if the shared total bound fires first, a burst of Normal/Low fills
    // it and High is rejected at the door — priority orders jobs inside
    // the queues, so shedding High before it reaches a queue defeats the
    // whole point. Per-class caps keep High's queue free under a
    // Normal/Low flood.
    let qos = QosConfig {
        queue_cap: 2,
        max_inflight: 2,
        low_priority_width_cap: 1,
        max_queued_total: 6,
        default_deadline: None,
    };
    // Split the thread budget across tenants instead of multiplying it:
    // each tenant runs its own scan loop, and oversubscribing the host
    // only adds scheduling jitter to every latency measured below.
    let tenant_threads = (o.threads / TENANTS.len()).max(1);
    let build_service = || {
        ScanService::new(
            TENANTS
                .iter()
                .zip(&stores)
                .map(|(name, store)| FileSpec::new(*name, store.clone(), o.bps, tenant_threads))
                .collect(),
            ServiceConfig {
                qos: qos.clone(),
                obs: Obs::off(),
            },
        )
    };

    // ---- phase 1: uncontended High baseline ----
    let svc = build_service();
    let files: Vec<FileId> =
        TENANTS.iter().map(|t| svc.file_id(t).expect("registered")).collect();
    let n_base = (o.jobs / 3).clamp(8, 64);
    let baseline = HdrHistogram::new();
    for i in 0..n_base {
        let t = Instant::now();
        let h = svc
            .submit(files[i % files.len()], QosClass::High, PatternWordCount::prefix(prefix(i)))
            .expect("uncontended submit admits");
        h.wait().expect("baseline job completes");
        baseline.record(t.elapsed().as_micros() as u64);
    }
    let base = baseline.snapshot().summary();

    // ---- phase 1b: measured capacity at full merge width ----
    // Extrapolating capacity from solo latency overestimates badly: a
    // merged revolution shares the scan but still runs every job's map
    // work, so a 4-wide revolution is slower than a solo one. Measure
    // the real drain rate with a closed loop that keeps the width full.
    let n_cap = (2 * n_base).max(16);
    let mut window: std::collections::VecDeque<s3_engine::JobHandle<String, i64>> =
        std::collections::VecDeque::new();
    let t_cap = Instant::now();
    for i in 0..n_cap {
        loop {
            match svc.submit(
                files[i % files.len()],
                QosClass::High,
                PatternWordCount::prefix(prefix(i)),
            ) {
                Ok(h) => {
                    window.push_back(h);
                    break;
                }
                Err(JobError::Rejected { .. }) => {
                    let h = window.pop_front().expect("rejected with empty window");
                    h.wait().expect("capacity job completes");
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    for h in window {
        h.wait().expect("capacity job completes");
    }
    let sustainable = n_cap as f64 / t_cap.elapsed().as_secs_f64().max(1e-9);
    svc.shutdown();
    let overload_rate = 2.0 * sustainable;
    let gap = Duration::from_secs_f64(1.0 / overload_rate);
    eprintln!(
        "s3load: baseline High p50 {:.0} µs p99 {:.0} µs over {n_base} jobs; \
         measured capacity ≈ {sustainable:.0} jobs/s over {n_cap} jobs, \
         overloading at {overload_rate:.0}",
        base.p50, base.p99
    );

    // ---- phase 2: open-loop overload at ~2× sustainable ----
    let svc = build_service();
    let classes = ClassMix::default().assign(o.jobs, o.seed);
    let retry = RetryPolicy {
        max_retries: 2,
        base: Duration::from_micros(500),
        ..RetryPolicy::default()
    };
    struct Flight {
        handle: s3_engine::JobHandle<String, i64>,
        class: QosClass,
        t0: Instant,
    }
    let mut flights: Vec<Flight> = Vec::with_capacity(o.jobs);
    let by_class = |c: QosClass| c.code() as usize;
    let mut submitted = [0u64; 3];
    let mut shed = [0u64; 3];
    let mut retries = 0u64;
    let t0 = Instant::now();
    for (i, &class) in classes.iter().enumerate() {
        let due = gap * i as u32;
        let now = t0.elapsed();
        if now < due {
            std::thread::sleep(due - now);
        }
        submitted[by_class(class)] += 1;
        let file = files[i % files.len()];
        // Latency runs from the FIRST submit attempt: queue wait and any
        // retry backoff are exactly the costs the QoS classes trade
        // against each other, so excluding them would measure only the
        // revolution time every class shares. Jobs shed after retries
        // are counted separately and never enter the histograms.
        let t_submit = Instant::now();
        let res = retry.run(i as u64, |attempt| {
            retries += u64::from(attempt > 0);
            svc.submit(file, class, PatternWordCount::prefix(prefix(i)))
        });
        match res {
            Ok(handle) => flights.push(Flight {
                handle,
                class,
                t0: t_submit,
            }),
            Err(JobError::Rejected { .. }) => shed[by_class(class)] += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }

    // Poll every in-flight handle so each latency is stamped when the
    // job resolves, not when a sequential wait got around to it.
    let lat: [HdrHistogram; 3] = std::array::from_fn(|_| HdrHistogram::new());
    let mut completed = [0u64; 3];
    let mut expired = [0u64; 3];
    let mut failed = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !flights.is_empty() {
        if Instant::now() >= deadline {
            eprintln!("s3load: {} handles unresolved after 120 s", flights.len());
            std::process::exit(1);
        }
        flights.retain_mut(|f| {
            let Some(result) = f.handle.try_take() else {
                return true;
            };
            let us = f.t0.elapsed().as_micros() as u64;
            match result {
                Ok(_) => {
                    completed[by_class(f.class)] += 1;
                    lat[by_class(f.class)].record(us);
                }
                Err(JobError::DeadlineExpired) => expired[by_class(f.class)] += 1,
                Err(_) => failed += 1,
            }
            false
        });
        std::thread::sleep(Duration::from_micros(200));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = svc.stats();
    svc.shutdown();
    if !stats.identity_holds() {
        eprintln!("s3load: accounting identity FAILED: {stats:?}");
        std::process::exit(1);
    }

    let class_json = |ci: usize, name: &str| {
        let s = lat[ci].snapshot().summary();
        eprintln!(
            "  {name:<7} {:>3} submitted  {:>3} completed  {:>3} shed  {:>3} expired   \
             p50 {:>8.0} µs   p99 {:>8.0} µs",
            submitted[ci], completed[ci], shed[ci], expired[ci], s.p50, s.p99
        );
        serde_json::json!({
            "submitted": (submitted[ci]),
            "completed": (completed[ci]),
            "shed": (shed[ci]),
            "expired": (expired[ci]),
            "completion_us": (summary_json(&s)),
        })
    };
    let total_completed: u64 = completed.iter().sum();
    let sustained = total_completed as f64 / (wall_ms / 1e3).max(1e-9);
    let high = lat[by_class(QosClass::High)].snapshot().summary();
    let degradation = if base.p99 > 0.0 { high.p99 / base.p99 } else { 0.0 };
    eprintln!(
        "s3load: overload done in {wall_ms:.0} ms — {total_completed} completed, \
         {} shed, {failed} failed, {retries} retries",
        shed.iter().sum::<u64>()
    );
    let per_class = serde_json::json!({
        "high": (class_json(by_class(QosClass::High), "high")),
        "normal": (class_json(by_class(QosClass::Normal), "normal")),
        "low": (class_json(by_class(QosClass::Low), "low")),
    });
    eprintln!(
        "  high p99 under 2x overload is {degradation:.2}x the uncontended baseline p99"
    );

    let service = serde_json::json!({
        "schema": "s3service/v1",
        "generated_by": "cargo run --release -p s3-bench --bin s3load -- --classes",
        "config": {
            "jobs": (o.jobs),
            "seed": (o.seed),
            "threads": (o.threads),
            "blocks_per_segment": (o.bps),
            "tenants": (serde_json::Value::Array(
                TENANTS.iter().map(|t| serde_json::Value::from(*t)).collect()
            )),
            "queue_cap": (qos.queue_cap),
            "max_inflight": (qos.max_inflight),
            "low_priority_width_cap": (qos.low_priority_width_cap),
            "max_queued_total": (qos.max_queued_total),
            "class_mix": {"high": 0.2, "normal": 0.5, "low": 0.3},
            "overload_factor": 2.0,
        },
        "baseline_high": {
            "jobs": (n_base),
            "completion_us": (summary_json(&base)),
            "sustainable_jobs_per_sec": sustainable,
        },
        "overload": {
            "offered_jobs_per_sec": overload_rate,
            "sustained_jobs_per_sec": sustained,
            "wall_ms": wall_ms,
            "retries": retries,
            "failed": failed,
            "deferred": (stats.deferred),
            "high_p99_over_baseline": degradation,
            "classes": per_class,
        },
    });
    let mut report: serde_json::Value = std::fs::read_to_string(&o.out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or_else(|| serde_json::json!({"schema": "s3bench-engine/v1"}));
    report["service"] = service;
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&o.out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&o.out, text + "\n").expect("write report");
    eprintln!("s3load: wrote service section into {}", o.out);
}

fn main() {
    let o = parse_opts();
    if o.classes {
        classes_main(&o);
        return;
    }
    let times = ArrivalPattern::Poisson {
        n: o.jobs,
        mean_gap_s: o.mean_gap_ms / 1e3,
        seed: o.seed,
    }
    .times();

    eprintln!("s3load: building {} KiB corpus...", o.corpus_bytes >> 10);
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), o.corpus_bytes);
    let store = BlockStore::from_text(&text, BLOCK_BYTES);

    let mut cfg = ServerConfig::new(o.bps, o.threads);
    cfg.obs = Obs::new();
    cfg.metrics_addr = o.listen.clone();
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(store.clone(), cfg);
    if let Some(addr) = server.metrics_addr() {
        eprintln!("s3load: serving metrics at http://{addr}/metrics");
    }

    eprintln!(
        "s3load: {} jobs, Poisson mean gap {} ms (seed {}), {} blocks, bps={}, {} threads",
        o.jobs,
        o.mean_gap_ms,
        o.seed,
        store.num_blocks(),
        o.bps,
        o.threads
    );

    // ---- open-loop submission ----
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(o.jobs);
    let mut scrape_lines: Option<usize> = None;
    for (i, &at) in times.iter().enumerate() {
        let due = Duration::from_secs_f64(at);
        let now = t0.elapsed();
        if now < due {
            std::thread::sleep(due - now);
        }
        handles.push(server.submit(PatternWordCount::prefix(prefix(i))));
        // One self-scrape mid-burst proves the live endpoint end to end.
        if i == o.jobs / 2 {
            if let Some(addr) = server.metrics_addr() {
                let body = scrape_text(&addr.to_string()).expect("self-scrape succeeds");
                scrape_lines = Some(body.lines().count());
            }
        }
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    server.shutdown();
    if let Some(n) = scrape_lines {
        eprintln!("s3load: mid-run self-scrape returned {n} exposition lines");
    }

    // ---- journal reconstruction ----
    let core = obs.core().expect("Obs::new is on");
    let events = core.tracer.drain();
    let mut journal = JobJournal::from_events(&events);
    journal.dropped_events = core.tracer.dropped();
    if let Err(e) = journal.validate() {
        eprintln!("s3load: journal FAILED validation: {e}");
        std::process::exit(1);
    }
    let complete = |j: &&s3_obs::journal::JobRecord| j.admit_events == 1 && j.terminal_events == 1;
    if journal.dropped_events > 0 {
        let incomplete = journal.jobs.iter().filter(|j| !complete(j)).count();
        eprintln!(
            "s3load: WARNING: ring overwrote {} events; {incomplete} incomplete job timelines excluded from SLO stats",
            journal.dropped_events
        );
    }
    if let Some(path) = &o.journal {
        let text = serde_json::to_string_pretty(&journal).expect("journal serializes");
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create journal dir");
        }
        std::fs::write(path, text + "\n").expect("write journal");
        eprintln!("s3load: wrote journal {path} ({} jobs)", journal.jobs.len());
    }

    // ---- SLO aggregation: overall + windowed HDR summaries ----
    let admission = HdrHistogram::new();
    let completion = HdrHistogram::new();
    let windowed = WindowedHdr::new(DEFAULT_SUB_BUCKET_BITS, MAX_WINDOWS);
    let epoch =
        journal.jobs.iter().filter(&complete).map(|j| j.submit_us).min().unwrap_or(0);
    let window_us = o.window_ms * 1_000;

    let mut done: Vec<_> = journal
        .jobs
        .iter()
        .filter(|j| j.outcome == Outcome::Done)
        .filter(&complete)
        .collect();
    done.sort_by_key(|j| j.terminal_us);
    let mut window_starts: Vec<u64> = Vec::new();
    let mut cur_window = 0u64;
    for j in journal.jobs.iter().filter(&complete) {
        admission.record(j.queue_us);
    }
    for j in &done {
        let k = (j.terminal_us - epoch) / window_us;
        while cur_window < k {
            windowed.rotate();
            window_starts.push(cur_window * window_us);
            cur_window += 1;
        }
        completion.record(j.latency_us);
        windowed.record(j.latency_us);
    }
    windowed.rotate();
    window_starts.push(cur_window * window_us);
    let closed = windowed.windows();
    // Eviction keeps the most recent MAX_WINDOWS snapshots; align starts.
    let starts = &window_starts[window_starts.len() - closed.len()..];
    let windows_json: Vec<serde_json::Value> = closed
        .iter()
        .zip(starts)
        .map(|(snap, &start)| {
            serde_json::json!({
                "start_ms": (start as f64 / 1e3),
                "completed": (snap.count),
                "completion_us": (summary_json(&snap.summary())),
            })
        })
        .collect();

    let first_submit = epoch;
    let last_terminal = done.last().map(|j| j.terminal_us).unwrap_or(epoch);
    let active_s = ((last_terminal - first_submit) as f64 / 1e6).max(1e-9);
    let sustained = completed as f64 / active_s;
    let adm = admission.snapshot().summary();
    let cmp = completion.snapshot().summary();

    eprintln!("s3load: {completed} completed, {failed} failed in {wall_ms:.0} ms");
    eprintln!("  sustained             {sustained:>10.1} jobs/s");
    eprintln!(
        "  admission             p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs",
        adm.p50, adm.p95, adm.p99
    );
    eprintln!(
        "  completion            p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs",
        cmp.p50, cmp.p95, cmp.p99
    );
    eprintln!("  windows               {} × {} ms", windows_json.len(), o.window_ms);

    // ---- read-modify-write the slo section ----
    let slo = serde_json::json!({
        "schema": "s3slo/v1",
        "generated_by": "cargo run --release -p s3-bench --bin s3load",
        "config": {
            "jobs": (o.jobs),
            "mean_gap_ms": (o.mean_gap_ms),
            "seed": (o.seed),
            "window_ms": (o.window_ms),
            "threads": (o.threads),
            "blocks_per_segment": (o.bps),
            "corpus_bytes": (store.total_bytes()),
            "hdr_relative_error": (s3_obs::HdrSnapshot::empty(DEFAULT_SUB_BUCKET_BITS).relative_error()),
        },
        "submitted": (o.jobs),
        "completed": completed,
        "failed": failed,
        "wall_ms": wall_ms,
        "sustained_jobs_per_sec": sustained,
        "dropped_trace_events": (journal.dropped_events),
        "admission_us": (summary_json(&adm)),
        "completion_us": (summary_json(&cmp)),
        "windows": (serde_json::Value::Array(windows_json)),
    });
    let mut report: serde_json::Value = std::fs::read_to_string(&o.out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or_else(|| serde_json::json!({"schema": "s3bench-engine/v1"}));
    report["slo"] = slo;
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&o.out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report dir");
    }
    std::fs::write(&o.out, text + "\n").expect("write report");
    eprintln!("s3load: wrote slo section into {}", o.out);
}
