#![warn(missing_docs)]

//! # s3-obs — unified engine telemetry
//!
//! The real multithreaded runtime in `s3-engine` (worker pools, the
//! shared-scan server, the external shuffle) needs the same visibility the
//! simulator has always had through `s3-mapreduce::trace`: per-operation
//! timing, load accounting, and a timeline a human can open. This crate
//! provides the three layers, engine-agnostic:
//!
//! 1. **[`metrics`]** — a lock-free registry of named instruments
//!    (counters, gauges, fixed-bucket histograms). Counter and histogram
//!    cells are sharded per worker thread and aggregated on read; the hot
//!    path is one relaxed atomic RMW on a cache-line-padded shard, with
//!    zero allocation.
//! 2. **[`trace`]** — a structured runtime trace recorder: fixed-capacity
//!    ring buffers (sharded per thread) of span/instant events carrying
//!    thread + job + segment ids. Recording is gated on one relaxed atomic
//!    load, so a disabled recorder costs a branch.
//! 3. **[`chrome`]** — the shared export schema: both engine traces and
//!    simulator traces (`s3-mapreduce::Trace`) convert into
//!    [`chrome::ChromeEvent`]s and serialize through one writer into the
//!    Chrome trace-event JSON format, which loads directly in Perfetto
//!    (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Three SLO-facing layers build on those:
//!
//! 4. **[`hdr`]** — HDR-style log-linear histograms with a bounded
//!    relative error, mergeable snapshots, and a sliding-window view —
//!    the percentile substrate for open-loop runs (p50/p95/p99/p999 over
//!    time rather than since-process-start).
//! 5. **[`journal`]** — the per-job flight recorder:
//!    [`journal::JobJournal`] stitches a drained trace into causal per-job
//!    timelines (queue → scan → reduce, with recovery annotations),
//!    exportable as JSON and as per-job Perfetto tracks.
//! 6. **[`prom`]** — a dependency-free Prometheus text-format exporter on
//!    a plain `TcpListener`, plus the scrape/parse helpers the `s3top`
//!    dashboard polls through.
//!
//! The [`Obs`] handle bundles a registry and a recorder behind an
//! `Option<Arc<_>>`: [`Obs::off()`] is a `None` that instrumented code
//! checks with one branch, which is what keeps the instrumented-but-off
//! hot path within noise of uninstrumented code.
//!
//! ```
//! use s3_obs::Obs;
//!
//! let obs = Obs::new();
//! if let Some(core) = obs.core() {
//!     let scans = core.metrics.counter("engine.blocks_scanned");
//!     scans.add(17);
//!     let t0 = core.tracer.now_us();
//!     // ... do the work ...
//!     core.tracer.span("segment", t0, s3_obs::trace::Ids::seg(3).jobs(2));
//!     assert_eq!(core.metrics.counter("engine.blocks_scanned").get(), 17);
//!     assert_eq!(core.tracer.drain().len(), 1);
//! }
//! ```

pub mod chrome;
pub mod hdr;
pub mod journal;
pub mod metrics;
pub mod prom;
pub mod trace;

pub use chrome::{validate_chrome_trace, write_chrome_trace, ChromeEvent};
pub use hdr::{HdrHistogram, HdrSnapshot, HdrSummary, WindowedHdr};
pub use journal::{JobJournal, JobRecord, JOURNAL_SCHEMA};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use prom::{render_prometheus, PromServer};
pub use trace::{Event, Ids, Phase, TraceRecorder};

use std::sync::Arc;

/// One server's (or one run's) telemetry: a metrics registry plus a trace
/// recorder, created together and drained together.
pub struct ObsCore {
    /// Named instruments; aggregate with [`Registry::snapshot`].
    pub metrics: Registry,
    /// Span/instant recorder; export with [`TraceRecorder::drain`] +
    /// [`chrome::write_chrome_trace`].
    pub tracer: TraceRecorder,
}

/// A cheap, cloneable handle to one [`ObsCore`] — or to nothing.
///
/// Instrumented code holds an `Obs` and branches on [`Obs::core`]; the
/// disabled handle ([`Obs::off`], also `Default`) makes every
/// instrumentation site a single `Option` check.
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl Obs {
    /// Telemetry on: fresh registry, recorder enabled, default ring
    /// capacity (64k events per shard).
    pub fn new() -> Self {
        Obs::with_trace_capacity(trace::DEFAULT_SHARD_CAPACITY)
    }

    /// Telemetry on with an explicit per-shard ring capacity (number of
    /// retained events ≈ `capacity × shards`; oldest events are overwritten
    /// and counted as dropped once a shard ring fills).
    pub fn with_trace_capacity(per_shard: usize) -> Self {
        Obs {
            core: Some(Arc::new(ObsCore {
                metrics: Registry::new(),
                tracer: TraceRecorder::new(per_shard),
            })),
        }
    }

    /// Telemetry off: `core()` returns `None`, every instrumentation site
    /// reduces to a branch.
    pub fn off() -> Self {
        Obs { core: None }
    }

    /// Whether this handle carries telemetry.
    pub fn is_on(&self) -> bool {
        self.core.is_some()
    }

    /// The telemetry core, if on.
    pub fn core(&self) -> Option<&ObsCore> {
        self.core.as_deref()
    }

    /// Snapshot the metrics registry (`None` when off).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.core().map(|c| c.metrics.snapshot())
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() { "Obs(on)" } else { "Obs(off)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.is_on());
        assert!(obs.core().is_none());
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn on_handle_shares_one_core_across_clones() {
        let obs = Obs::new();
        let clone = obs.clone();
        obs.core().unwrap().metrics.counter("x").add(2);
        clone.core().unwrap().metrics.counter("x").add(3);
        assert_eq!(obs.snapshot().unwrap().counters["x"], 5);
    }
}
