//! s3chaos — deterministic fault-injection fuzzer with trace-level
//! invariant checking.
//!
//! For every seed, a [`ChaosPlan`] of node deaths, persistent stragglers
//! and transient slot slowdowns is generated, a seeded workload (1–3
//! wordcount jobs with staggered arrivals) is run under every scheduler
//! (FIFO, Fair, Capacity, MRShare, S³), and the recorded trace is replayed
//! through the [`InvariantChecker`]:
//!
//! - every block of every job's file is scanned exactly once per job;
//! - no task is assigned to a dead node or an excluded slot;
//! - batches only merge sub-jobs targeting the same segment;
//! - per-node slot capacities are respected;
//! - for single-job seeds, TET/ART never improve by more than one
//!   heartbeat plus 3% of the clean runtime when faults are added
//!   (monotonicity — sharing effects can legitimately invert this with
//!   overlapping jobs, so multi-job seeds are exempt, and greedy
//!   heartbeat-quantized assignment permits small improvements: a
//!   Graham-style scheduling anomaly, observed up to ~2% on Capacity).
//!
//! Everything is deterministic: `--seed <n>` re-runs one scenario and
//! proves the trace reproduces byte-for-byte; a failing seed's fault plan
//! is automatically minimized by dropping faults while the failure
//! persists.
//!
//! ```text
//! s3chaos [--seeds N] [--seed K] [--verbose]
//! ```

use s3_cluster::{ChaosConfig, ChaosPlan, ClusterTopology, NodeId};
use s3_core::{
    CapacityScheduler, FairScheduler, FifoScheduler, MRShareScheduler, S3Config, S3Scheduler,
    SubJobSizing,
};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate_traced, CostModel, EngineConfig, InvariantChecker,
    JobRequest, RunMetrics, Scheduler, Trace,
};
use s3_sim::SimRng;
use s3_workloads::{per_node_file, wordcount_normal, Dataset};
use std::process::ExitCode;

const SCHEDULERS: [&str; 5] = ["FIFO", "Fair", "Capacity", "MRShare", "S3"];
/// Salt separating the workload stream from the fault-plan stream so the
/// two never correlate.
const WORKLOAD_SALT: u64 = 0x0053_33AB_1E0F_00D5;

fn usage() -> ! {
    eprintln!(
        "s3chaos: seeded chaos fuzzer over all schedulers\n\n\
         USAGE:\n  s3chaos [--seeds N]     fuzz seeds 0..N (default 200)\n  \
         s3chaos --seed K        replay one seed in detail (plan, metrics,\n  \
         \x20                       digests, byte-for-byte reproduction proof)\n  \
         s3chaos --verbose       one line per seed during a sweep"
    );
    std::process::exit(2)
}

struct Args {
    seeds: u64,
    seed: Option<u64>,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        seed: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                args.seeds = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => {
                args.seed =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--verbose" | "-v" => args.verbose = true,
            _ => usage(),
        }
    }
    args
}

fn make_scheduler(name: &str, n_jobs: usize) -> Box<dyn Scheduler> {
    match name {
        "FIFO" => Box::new(FifoScheduler::new()),
        "Fair" => Box::new(FairScheduler::new()),
        "Capacity" => Box::new(CapacityScheduler::new(4)),
        "MRShare" => Box::new(MRShareScheduler::mrs1(n_jobs)),
        // Slot checking + dynamic sizing on, so chaos exercises the
        // exclusion / re-admission / sub-job adjustment paths.
        "S3" => Box::new(S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Dynamic { waves: 5 },
            slot_check_period_s: Some(5.0),
            ..S3Config::default()
        })),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Seeded workload: 1–3 wordcount jobs with arrivals in the first 45 s.
fn workload_for(seed: u64, dataset: &Dataset) -> Vec<JobRequest> {
    let mut rng = SimRng::seed_from_u64(seed ^ WORKLOAD_SALT);
    let n = 1 + rng.index(3);
    let mut arrivals: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 45.0)).collect();
    arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    requests_from_arrivals(&wordcount_normal(), dataset.file, &arrivals)
}

/// FNV-1a over the serialized trace: the reproducibility fingerprint.
fn trace_digest(serialized: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in serialized.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct RunOutput {
    metrics: RunMetrics,
    serialized_trace: String,
    violations: Vec<String>,
}

/// One (scheduler, plan) execution plus invariant replay.
fn run_checked(
    name: &str,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    workload: &[JobRequest],
    plan: &ChaosPlan,
    engine_seed: u64,
) -> Result<RunOutput, String> {
    let mut scheduler = make_scheduler(name, workload.len());
    let failures = plan.failures();
    let config = EngineConfig {
        seed: engine_seed,
        failures: failures.clone(),
        ..EngineConfig::default()
    };
    let (metrics, trace) = simulate_traced(
        cluster,
        &plan.slowdowns(),
        &dataset.dfs,
        &CostModel::deterministic(),
        workload,
        scheduler.as_mut(),
        &config,
        Some(Trace::new()),
    )
    .map_err(|e| format!("{name}: simulation failed: {e}"))?;

    let checker = InvariantChecker {
        cluster,
        dfs: &dataset.dfs,
        workload,
        failures: &failures,
        speculation: false,
    };
    let violations = checker
        .check(&trace)
        .into_iter()
        .map(|v| format!("{name}: {v}"))
        .collect();
    let serialized_trace =
        serde_json::to_string(&trace).map_err(|e| format!("{name}: trace serialize: {e}"))?;
    Ok(RunOutput {
        metrics,
        serialized_trace,
        violations,
    })
}

/// All failures of one seed across every scheduler (empty = clean).
fn seed_failures(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
) -> Vec<String> {
    let workload = workload_for(seed, dataset);
    let mut failures = Vec::new();
    for name in SCHEDULERS {
        match run_checked(name, cluster, dataset, &workload, plan, seed) {
            Ok(out) => {
                failures.extend(out.violations);
                // TET/ART monotonicity: a lone job can only get slower
                // when capacity is removed (deterministic cost model).
                // Greedy heartbeat-driven assignment is subject to
                // Graham-style scheduling anomalies: a fault that shifts
                // one assignment decision can re-pack the remaining tasks
                // slightly better, legitimately improving the schedule by
                // up to about one task length (observed on the Capacity
                // scheduler, whose per-queue packing is the most brittle).
                // Allow one heartbeat plus 3% relative slack; anything
                // larger is a real violation.
                if workload.len() == 1 && !plan.is_empty() {
                    if let Ok(clean) = run_checked(
                        name,
                        cluster,
                        dataset,
                        &workload,
                        &ChaosPlan::default(),
                        seed,
                    ) {
                        let slack = |clean_s: f64| {
                            CostModel::deterministic().heartbeat_s + 0.03 * clean_s
                        };
                        let (t_f, t_c) = (
                            out.metrics.tet().as_secs_f64(),
                            clean.metrics.tet().as_secs_f64(),
                        );
                        if t_f + slack(t_c) < t_c {
                            failures.push(format!(
                                "{name}: [tet-monotonicity] faulted TET {t_f:.3}s beats clean {t_c:.3}s"
                            ));
                        }
                        let (a_f, a_c) = (
                            out.metrics.art().as_secs_f64(),
                            clean.metrics.art().as_secs_f64(),
                        );
                        if a_f + slack(a_c) < a_c {
                            failures.push(format!(
                                "{name}: [art-monotonicity] faulted ART {a_f:.3}s beats clean {a_c:.3}s"
                            ));
                        }
                    }
                }
            }
            Err(e) => failures.push(e),
        }
    }
    // Reproducibility: the same seed must yield a byte-identical S³ trace.
    let workload2 = workload_for(seed, dataset);
    let digest = |w: &[JobRequest]| {
        run_checked("S3", cluster, dataset, w, plan, seed).map(|o| o.serialized_trace)
    };
    match (digest(&workload), digest(&workload2)) {
        (Ok(a), Ok(b)) if a != b => {
            failures.push("S3: [determinism] re-run produced a different trace".into())
        }
        _ => {}
    }
    failures
}

/// Shrink a failing plan: repeatedly drop any fault whose removal keeps
/// the seed failing, until no single removal does.
fn minimize_plan(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
) -> ChaosPlan {
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.len() {
            let candidate = current.without_fault(i);
            if !seed_failures(seed, cluster, dataset, &candidate).is_empty() {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

fn report_failure(
    seed: u64,
    cluster: &ClusterTopology,
    dataset: &Dataset,
    plan: &ChaosPlan,
    failures: &[String],
) {
    println!("seed {seed}: FAILED");
    println!(" fault plan:\n{}", plan.describe());
    for f in failures {
        println!("  {f}");
    }
    let minimal = minimize_plan(seed, cluster, dataset, plan);
    if minimal.len() < plan.len() {
        println!(
            " minimized to {} fault(s):\n{}",
            minimal.len(),
            minimal.describe()
        );
    } else {
        println!(" plan is already minimal");
    }
    println!(" replay with: s3chaos --seed {seed}");
}

fn replay_one(seed: u64, cluster: &ClusterTopology, dataset: &Dataset, plan: &ChaosPlan) -> bool {
    let workload = workload_for(seed, dataset);
    println!(
        "seed {seed}: {} job(s), fault plan:\n{}",
        workload.len(),
        plan.describe()
    );
    let mut ok = true;
    for name in SCHEDULERS {
        match run_checked(name, cluster, dataset, &workload, plan, seed) {
            Ok(first) => {
                let digest = trace_digest(&first.serialized_trace);
                let status = if first.violations.is_empty() {
                    "ok".to_string()
                } else {
                    ok = false;
                    format!("{} violation(s)", first.violations.len())
                };
                // Byte-for-byte reproduction proof: run again, compare.
                let repro = match run_checked(name, cluster, dataset, &workload, plan, seed) {
                    Ok(second) if second.serialized_trace == first.serialized_trace => {
                        "byte-identical"
                    }
                    Ok(_) => {
                        ok = false;
                        "MISMATCH"
                    }
                    Err(_) => {
                        ok = false;
                        "re-run failed"
                    }
                };
                println!(
                    "  {:<8} tet {:>8.2}s  art {:>8.2}s  failed-attempts {:>3}  \
                     trace {:>7} events  digest {digest:#018x} ({repro})  {status}",
                    first.metrics.scheduler,
                    first.metrics.tet().as_secs_f64(),
                    first.metrics.art().as_secs_f64(),
                    first.metrics.tasks_failed,
                    first.serialized_trace.matches("\"kind\"").count(),
                );
                for v in &first.violations {
                    println!("    {v}");
                }
            }
            Err(e) => {
                ok = false;
                println!("  {e}");
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let cluster = ClusterTopology::paper_cluster();
    // 4 blocks per node (160 total): big enough for several S³ sub-jobs,
    // small enough to fuzz hundreds of seeds quickly.
    let dataset = per_node_file(&cluster, "chaos", 1, 256);
    let node_ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
    let chaos_cfg = ChaosConfig::default();

    if let Some(seed) = args.seed {
        let plan = ChaosPlan::generate(seed, &node_ids, &chaos_cfg);
        return if replay_one(seed, &cluster, &dataset, &plan) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "s3chaos: fuzzing seeds 0..{} over {} schedulers ({} nodes, {} blocks)",
        args.seeds,
        SCHEDULERS.len(),
        node_ids.len(),
        dataset.dfs.file(dataset.file).blocks.len(),
    );
    let mut failed_seeds = 0u64;
    for seed in 0..args.seeds {
        let plan = ChaosPlan::generate(seed, &node_ids, &chaos_cfg);
        let failures = seed_failures(seed, &cluster, &dataset, &plan);
        if failures.is_empty() {
            if args.verbose {
                println!(
                    "seed {seed}: ok ({} fault(s), {} job(s))",
                    plan.len(),
                    workload_for(seed, &dataset).len()
                );
            }
        } else {
            failed_seeds += 1;
            report_failure(seed, &cluster, &dataset, &plan, &failures);
        }
    }
    println!(
        "s3chaos: {}/{} seeds clean",
        args.seeds - failed_seeds,
        args.seeds
    );
    if failed_seeds == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
