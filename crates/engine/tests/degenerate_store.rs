//! Degenerate-store hardening for the shared-scan server: a zero-block
//! store (a zero-length file) and a one-block store must work on both
//! scan paths, with and without adaptive sizing — jobs resolve with
//! exact (possibly empty) output, exact stats, and never hang or panic.
//!
//! Also pins the claim-coordination cost of degenerate shapes: every
//! segment scanned by a single worker (one-thread servers, one-block
//! segments, stores no larger than a block, empty stores) must take the
//! solo fast path and issue **zero** atomic claim operations
//! ([`SharedScanServer::claim_ops`]), while a genuinely fanned-out scan
//! must go through the shared cursor.

use s3_engine::{
    run_job, AdaptiveConfig, BlockStore, ExecConfig, FtConfig, MapReduceJob, Obs, ServerConfig,
    SharedScanServer,
};
use std::time::Duration;

/// Plain word count.
struct Count;

impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
}

fn configs() -> Vec<(&'static str, ServerConfig)> {
    let mut out = Vec::new();
    for adaptive in [false, true] {
        for speculation in [false, true] {
            let mut cfg = ServerConfig::new(2, 2);
            cfg.obs = Obs::new();
            if speculation {
                cfg.ft = FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                };
            }
            if adaptive {
                cfg.adaptive = AdaptiveConfig {
                    enabled: true,
                    target_cadence: Duration::from_millis(1),
                    min_blocks_per_segment: 1,
                    max_blocks_per_segment: 4,
                };
            }
            let name: &'static str = match (adaptive, speculation) {
                (false, false) => "fixed/cooperative",
                (false, true) => "fixed/speculative",
                (true, false) => "adaptive/cooperative",
                (true, true) => "adaptive/speculative",
            };
            out.push((name, cfg));
        }
    }
    out
}

/// Satellite (a): submitting to a server over an empty store must resolve
/// immediately with empty output — no panic building segment cuts, no
/// handle hanging on a revolution that can never scan anything.
#[test]
fn empty_store_resolves_jobs_with_empty_output() {
    for (name, cfg) in configs() {
        let obs = cfg.obs.clone();
        let server = SharedScanServer::with_config(BlockStore::new(vec![]), cfg);
        assert_eq!(server.num_segments(), 0, "{name}");
        let handles = server.submit_all(vec![Count, Count, Count]);
        for h in handles {
            let out = h.wait().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.records.is_empty(), "{name}: no input, no output");
            assert_eq!(out.stats.blocks_scanned, 0, "{name}");
            assert_eq!(out.stats.bytes_scanned, 0, "{name}");
            assert_eq!(out.stats.map_output_records, 0, "{name}");
        }
        server.shutdown();
        let snap = obs.snapshot().expect("observed");
        assert_eq!(snap.counter("engine.jobs_completed"), 3, "{name}");
        assert_eq!(snap.counter("engine.jobs_quarantined"), 0, "{name}");
    }
}

/// A one-block store: the smallest non-empty revolution. Output and stats
/// must match a solo run exactly on every path.
#[test]
fn one_block_store_scans_exactly_once() {
    let s = BlockStore::from_text("alpha beta alpha\n", 1024);
    assert_eq!(s.num_blocks(), 1);
    let reference = run_job(
        &Count,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );

    for (name, cfg) in configs() {
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let out = server
            .submit(Count)
            .wait()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.records, reference.records, "{name}");
        assert_eq!(out.stats.blocks_scanned, 1, "{name}");
        assert_eq!(
            out.stats.bytes_scanned, reference.stats.bytes_scanned,
            "{name}"
        );
        server.shutdown();
    }
}

/// Every degenerate shape where at most one worker can ever scan a
/// segment must take the solo fast path: zero atomic claim operations,
/// output still exact. Covers one thread over many blocks, one-block
/// segments over many threads, more workers than a one-block store has
/// blocks, and the empty store. Cooperative path — the resilient path
/// always pays for its claim words, by design.
#[test]
fn solo_scan_shapes_issue_zero_claim_ops() {
    let s = BlockStore::from_text(&"zeta eta theta\n".repeat(400), 256);
    assert!(s.num_blocks() > 8);
    let reference = run_job(
        &Count,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );
    let one = BlockStore::from_text("iota kappa iota\n", 1024);
    assert_eq!(one.num_blocks(), 1);

    let shapes: Vec<(&str, BlockStore, ServerConfig)> = vec![
        ("one thread, 4-block segments", s.clone(), ServerConfig::new(4, 1)),
        ("one-block segments, 4 threads", s.clone(), ServerConfig::new(1, 4)),
        ("8 workers, one-block store", one.clone(), ServerConfig::new(2, 8)),
        ("empty store", BlockStore::new(vec![]), ServerConfig::new(2, 4)),
    ];
    for (name, store, cfg) in shapes {
        let expect_empty = store.num_blocks() == 0;
        let expected = if expect_empty || store.num_blocks() == 1 {
            None // checked against a per-store solo run below
        } else {
            Some(&reference)
        };
        let server = SharedScanServer::with_config(store.clone(), cfg);
        let out = server
            .submit(Count)
            .wait()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Some(r) = expected {
            assert_eq!(out.records, r.records, "{name}");
        } else if expect_empty {
            assert!(out.records.is_empty(), "{name}");
        }
        assert_eq!(
            out.stats.blocks_scanned as usize,
            store.num_blocks(),
            "{name}"
        );
        assert_eq!(
            server.claim_ops(),
            0,
            "{name}: solo fast path must not touch the shared cursor"
        );
        server.shutdown();
    }
}

/// Satellite (b): `bytes_scanned` must equal the total length of the byte
/// slices actually claimed — computed independently from
/// [`BlockStore::block_offsets`], not from the engine's own counters — on
/// the empty store, a one-block store, and a `blocks_per_segment` far
/// beyond the block count, across every server shape.
#[test]
fn bytes_scanned_matches_claimed_slice_lengths_exactly() {
    let stores: Vec<(&str, BlockStore)> = vec![
        ("empty", BlockStore::new(vec![])),
        ("one block", BlockStore::from_text("omicron pi rho\n", 4096)),
        (
            "many blocks",
            BlockStore::from_text(&"sigma tau upsilon phi\n".repeat(300), 256),
        ),
    ];
    for (store_name, s) in stores {
        let cuts = s.block_offsets();
        assert_eq!(cuts.len(), s.num_blocks() + 1);
        // The slices the scan claims are exactly cuts[i]..cuts[i+1].
        let claimed: u64 = (0..s.num_blocks())
            .map(|i| (cuts[i + 1] - cuts[i]) as u64)
            .sum();
        assert_eq!(claimed as usize, s.total_bytes(), "{store_name}");

        let solo = run_job(
            &Count,
            &s,
            &ExecConfig {
                num_threads: 2,
                num_reducers: 2,
            ..ExecConfig::default()
            },
        );
        assert_eq!(solo.stats.bytes_scanned, claimed, "{store_name}: run_job");

        for (name, cfg) in configs() {
            let server = SharedScanServer::with_config(s.clone(), cfg);
            let out = server
                .submit(Count)
                .wait()
                .unwrap_or_else(|e| panic!("{store_name}/{name}: {e}"));
            assert_eq!(out.stats.bytes_scanned, claimed, "{store_name}/{name}");
            assert_eq!(
                out.stats.blocks_scanned as usize,
                s.num_blocks(),
                "{store_name}/{name}"
            );
            server.shutdown();
        }
        // blocks_per_segment far larger than the store.
        let server =
            SharedScanServer::with_config(s.clone(), ServerConfig::new(s.num_blocks() + 50, 2));
        let out = server
            .submit(Count)
            .wait()
            .unwrap_or_else(|e| panic!("{store_name}/oversized: {e}"));
        assert_eq!(out.stats.bytes_scanned, claimed, "{store_name}/oversized");
        server.shutdown();
    }
}

/// Positive control for the pins above: with real fan-out (three workers
/// racing over four-block segments) the shared claim cursor is the
/// scheduling mechanism, so claim operations must be issued — and the
/// output must still be exact.
#[test]
fn fanned_out_scan_goes_through_the_shared_cursor() {
    let s = BlockStore::from_text(&"lambda mu nu xi\n".repeat(200), 256);
    assert!(s.num_blocks() > 8);
    let reference = run_job(
        &Count,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );
    let server = SharedScanServer::with_config(s.clone(), ServerConfig::new(4, 3));
    let out = server.submit(Count).wait().expect("job completed");
    assert_eq!(out.records, reference.records);
    assert!(
        server.claim_ops() > 0,
        "a fanned-out scan must schedule blocks through the shared cursor"
    );
    server.shutdown();
}

/// Satellite (e): `blocks_per_segment` far larger than the block count.
/// The single oversized segment must report exact stats, and an adaptive
/// server must be able to shrink out of it and later re-grow without
/// double-scanning any block.
#[test]
fn oversized_segment_config_is_exact_on_both_paths() {
    let s = BlockStore::from_text(&"gamma delta epsilon\n".repeat(200), 512);
    let n = s.num_blocks();
    assert!(n > 1);
    let reference = run_job(
        &Count,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );

    for speculation in [false, true] {
        for adaptive in [false, true] {
            let mut cfg = ServerConfig::new(n + 9, 2);
            cfg.obs = Obs::new();
            if speculation {
                cfg.ft = FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                };
            }
            if adaptive {
                cfg.adaptive = AdaptiveConfig {
                    enabled: true,
                    target_cadence: Duration::from_micros(200),
                    min_blocks_per_segment: 1,
                    max_blocks_per_segment: n + 9,
                };
            }
            let server = SharedScanServer::with_config(s.clone(), cfg);
            assert_eq!(server.num_segments(), 1);
            // Several sequential jobs so an adaptive server crosses many
            // boundaries (shrinking, then re-growing as cost settles).
            for round in 0..4 {
                let out = server.submit(Count).wait().unwrap_or_else(|e| {
                    panic!("spec {speculation} adaptive {adaptive} round {round}: {e}")
                });
                assert_eq!(
                    out.records, reference.records,
                    "spec {speculation} adaptive {adaptive} round {round}"
                );
                assert_eq!(out.stats.blocks_scanned as usize, n);
                assert_eq!(out.stats.bytes_scanned, reference.stats.bytes_scanned);
            }
            server.shutdown();
        }
    }
}
