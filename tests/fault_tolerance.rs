//! TaskTracker failure injection: nodes die mid-run, their in-flight work
//! is lost, and every scheduler must re-execute it to completion — the
//! "fine-grained fault tolerance" the paper names as MapReduce's essence.

use s3_cluster::{ClusterTopology, FailureSchedule, NodeId, SlowdownSchedule};
use s3_core::{FairScheduler, FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, RunMetrics, Scheduler,
};
use s3_workloads::{per_node_file, wordcount_normal};

fn run_with_failures(
    scheduler: &mut dyn Scheduler,
    arrivals: &[f64],
    failures: FailureSchedule,
) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "ft", 1, 64); // 640 blocks
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, arrivals);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig {
            failures,
            ..EngineConfig::default()
        },
    )
    .expect("jobs must survive node deaths")
}

fn three_deaths() -> FailureSchedule {
    // Late enough that every scheduler (including batch-everything MRS1,
    // which waits for the last arrival plus submission overhead) has work
    // in flight when the nodes die.
    FailureSchedule::none()
        .kill(NodeId(2), s3_sim::SimTime::from_secs(50))
        .kill(NodeId(17), s3_sim::SimTime::from_secs(60))
        .kill(NodeId(33), s3_sim::SimTime::from_secs_f64(70.5))
}

#[test]
fn every_scheduler_survives_node_deaths() {
    let arrivals = [0.0, 15.0, 30.0];
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(S3Scheduler::default()),
        Box::new(FifoScheduler::new()),
        Box::new(MRShareScheduler::mrs1(3)),
        Box::new(MRShareScheduler::mrs3(3)),
        Box::new(FairScheduler::new()),
    ];
    for s in &mut schedulers {
        let m = run_with_failures(s.as_mut(), &arrivals, three_deaths());
        assert_eq!(m.outcomes.len(), 3, "{}", m.scheduler);
        assert!(m.tasks_failed > 0, "{}: deaths should cost attempts", m.scheduler);
        // Lost attempts re-scan their blocks: physical reads exceed the
        // logical minimum by exactly the failed map attempts.
        let expected_min = m.logical_mb_scanned / 64.0; // best case, fully shared
        assert!(m.blocks_read as f64 >= expected_min / 64.0, "{}", m.scheduler);
    }
}

#[test]
fn failures_slow_a_single_job_but_not_catastrophically() {
    // One job, so no sharing effects confound the comparison. (With two
    // overlapping jobs, deaths that slow the first job can *increase*
    // sharing with the second and even lower TET — a real S³ effect.)
    let arrivals = [0.0];
    let clean = run_with_failures(&mut S3Scheduler::default(), &arrivals, FailureSchedule::none());
    let deaths = FailureSchedule::none()
        .kill(NodeId(2), s3_sim::SimTime::from_secs(10))
        .kill(NodeId(17), s3_sim::SimTime::from_secs(25))
        .kill(NodeId(33), s3_sim::SimTime::from_secs(40));
    let failed = run_with_failures(&mut S3Scheduler::default(), &arrivals, deaths);
    assert_eq!(clean.tasks_failed, 0);
    assert!(failed.tasks_failed > 0);
    let ratio = failed.tet().as_secs_f64() / clean.tet().as_secs_f64();
    // 3 of 40 nodes die early: ~8% capacity loss plus re-execution.
    assert!(ratio > 1.0, "deaths must hurt a lone job: {ratio}");
    assert!(ratio < 1.6, "re-execution should be contained: {ratio}");
    // Lost attempts re-scanned their blocks.
    assert!(failed.blocks_read >= clean.blocks_read);
}

#[test]
fn dead_nodes_get_no_tasks_after_death() {
    use s3_mapreduce::{simulate_traced, Trace, TraceKind};
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "ft2", 1, 64);
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0]);
    let death = s3_sim::SimTime::from_secs(20);
    let (m, trace) = simulate_traced(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        &mut S3Scheduler::default(),
        &EngineConfig {
            failures: FailureSchedule::none().kill(NodeId(5), death),
            ..EngineConfig::default()
        },
        Some(Trace::new()),
    )
    .expect("completes");
    assert_eq!(m.outcomes.len(), 1);
    // No task ever *starts* on node 5 after its death.
    for e in trace.events() {
        if e.node == Some(NodeId(5))
            && matches!(e.kind, TraceKind::MapStart | TraceKind::ReduceStart)
        {
            assert!(e.at < death, "task started on a dead node at {}", e.at);
        }
    }
    // And its lost attempts were recorded.
    let failed_here = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::MapFailed && e.node == Some(NodeId(5)))
        .count();
    assert_eq!(failed_here as u64, m.tasks_failed);
}

#[test]
fn reduce_attempts_are_requeued_after_deaths() {
    use s3_mapreduce::{simulate_traced, Trace, TraceKind};
    // A small map phase (one wave) so reduces start early, then kill a
    // node while the reduce wave runs.
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "ftr", 1, 1024); // 40 blocks, 1/node
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0]);
    // Maps ~ one wave of big blocks; kill several nodes spread over the
    // window where reduces run. Under CostModel::default() the map wave
    // ends by ~13.8s and the 30 reduces run ~13.8s..21.1s, so the deaths
    // must land inside that span for an attempt to be in flight.
    let mut failures = FailureSchedule::none();
    for (i, node) in [1u32, 9, 21, 30].iter().enumerate() {
        failures = failures.kill(
            NodeId(*node),
            s3_sim::SimTime::from_secs_f64(14.5 + 1.5 * i as f64),
        );
    }
    let (m, trace) = simulate_traced(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        &mut FifoScheduler::new(),
        &EngineConfig {
            failures,
            ..EngineConfig::default()
        },
        Some(Trace::new()),
    )
    .expect("survives");
    assert_eq!(m.outcomes.len(), 1);
    let failed = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::MapFailed | TraceKind::ReduceFailed))
        .count();
    assert_eq!(failed as u64, m.tasks_failed);
    assert!(m.tasks_failed > 0, "some attempt should be lost");
    // Every one of the job's 30 reduce partitions ultimately completed.
    let reduce_ok = trace.of_kind(TraceKind::ReduceEnd).count();
    let reduce_failed = trace.of_kind(TraceKind::ReduceFailed).count();
    assert_eq!(reduce_ok, 30, "30 successful reduces; re-runs replace failures");
    let _ = reduce_failed;
}

// ---------------------------------------------------------------------------
// Shipped fault scenarios, driven through every scheduler and replayed
// through the trace-invariant engine.
// ---------------------------------------------------------------------------

use s3_bench::scenario::{ScenarioSpec, SchedulerSpec};

fn load_scenario(name: &str) -> ScenarioSpec {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

/// All five scheduler families, S³ with periodic slot checking and
/// dynamic sub-job sizing so fault reactions show up in the trace.
fn all_five_schedulers() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec::Fifo,
        SchedulerSpec::Fair,
        SchedulerSpec::Capacity { queues: 4 },
        SchedulerSpec::MrShare {
            groups: vec![],
            label: None,
        },
        SchedulerSpec::S3 {
            waves: 5,
            slot_check_period_s: Some(10.0),
            dynamic_sizing: true,
            low_priority_width_cap: None,
        },
    ]
}

#[test]
fn straggler_scenario_holds_invariants_under_every_scheduler() {
    use s3_mapreduce::TraceKind;
    let mut spec = load_scenario("stragglers.json");
    spec.schedulers = all_five_schedulers();
    let runs = spec.run().expect("scenario runs");
    assert_eq!(runs.len(), 5);
    for r in &runs {
        assert_eq!(r.metrics.outcomes.len(), 2, "{}", r.metrics.scheduler);
        assert!(
            r.violations.is_empty(),
            "{}: {:?}",
            r.metrics.scheduler,
            r.violations
        );
    }
    // The slot-checking S³ run must have reacted to the 0.1x stragglers:
    // every slowed node gets excluded, and nothing starts on it while out.
    // (The excluded-slot invariant above already verified the "nothing
    // starts" half; here we check the exclusions actually happened.)
    let s3 = runs.last().expect("five runs");
    let excluded: std::collections::BTreeSet<_> = s3
        .trace
        .of_kind(TraceKind::SlotExcluded)
        .filter_map(|e| e.node)
        .collect();
    for slow in &spec.slowdowns {
        assert!(
            excluded.contains(&NodeId(slow.node)),
            "S3 slot checking never excluded slowed node {}",
            slow.node
        );
    }
}

#[test]
fn failure_scenario_holds_invariants_under_every_scheduler() {
    let mut spec = load_scenario("node_failures.json");
    spec.schedulers = all_five_schedulers();
    let runs = spec.run().expect("scenario runs");
    assert_eq!(runs.len(), 5);
    for r in &runs {
        assert_eq!(r.metrics.outcomes.len(), 2, "{}", r.metrics.scheduler);
        assert!(
            r.violations.is_empty(),
            "{}: {:?}",
            r.metrics.scheduler,
            r.violations
        );
    }
    // The dead-node invariant passing is vacuous unless somebody actually
    // lost an attempt to the deaths.
    assert!(
        runs.iter().any(|r| r.metrics.tasks_failed > 0),
        "the three deaths should cost at least one scheduler an attempt"
    );
}

#[test]
fn all_jobs_still_scan_the_whole_file_logically() {
    // Failure re-execution must not double-count logical coverage: each
    // job's results still come from exactly one logical pass.
    let arrivals = [0.0, 10.0];
    let m = run_with_failures(&mut S3Scheduler::default(), &arrivals, three_deaths());
    let file_mb = 40.0 * 1024.0;
    // logical_mb_scanned counts assignment-time volume, including failed
    // attempts, so it is at least 2 passes and at most 2 passes + failures.
    let min = 2.0 * file_mb;
    let max = 2.0 * file_mb + m.tasks_failed as f64 * 64.0 * 10.0;
    assert!(
        m.logical_mb_scanned >= min - 1e-6 && m.logical_mb_scanned <= max,
        "logical volume {} outside [{min}, {max}]",
        m.logical_mb_scanned
    );
}
