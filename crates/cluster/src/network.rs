//! Network cost model.
//!
//! Two-level tree topology: nodes inside a rack share a top-of-rack switch;
//! racks are joined by a core switch. Transfers between racks see a lower
//! effective per-flow bandwidth because the core link is oversubscribed.

use crate::node::{Node, NodeId};
use serde::{Deserialize, Serialize};

/// Per-flow effective bandwidths and latency of the cluster network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Effective per-flow bandwidth between two nodes in the same rack, MB/s.
    pub intra_rack_mb_s: f64,
    /// Effective per-flow bandwidth across racks, MB/s.
    pub inter_rack_mb_s: f64,
    /// Fixed per-transfer latency, seconds (connection setup, framing).
    pub latency_s: f64,
}

impl NetworkModel {
    /// 1 Gbps Ethernet as in the paper: ~110 MB/s payload within a rack and
    /// an oversubscribed core giving ~55 MB/s per flow across racks.
    pub fn one_gbps() -> Self {
        NetworkModel {
            intra_rack_mb_s: 110.0,
            inter_rack_mb_s: 55.0,
            latency_s: 0.005,
        }
    }

    /// Seconds to move `mb` megabytes from `src` to `dst`.
    ///
    /// A transfer from a node to itself is free: in Hadoop a map task reading
    /// a local replica or a reduce fetching a co-located map output does not
    /// cross the network.
    pub fn transfer_secs(&self, src: &Node, dst: &Node, mb: f64) -> f64 {
        assert!(mb >= 0.0, "negative transfer size");
        if src.id == dst.id {
            return 0.0;
        }
        let bw = if src.rack == dst.rack {
            self.intra_rack_mb_s
        } else {
            self.inter_rack_mb_s
        };
        self.latency_s + mb / bw
    }

    /// Seconds to move `mb` megabytes given only whether the endpoints share
    /// a rack (used when the concrete peer is abstracted away, e.g. shuffle
    /// aggregates).
    pub fn transfer_secs_by_distance(&self, same_rack: bool, mb: f64) -> f64 {
        assert!(mb >= 0.0, "negative transfer size");
        let bw = if same_rack {
            self.intra_rack_mb_s
        } else {
            self.inter_rack_mb_s
        };
        self.latency_s + mb / bw
    }

    /// Effective cluster-wide average per-flow bandwidth for all-to-all
    /// shuffle traffic, given the fraction of flows that stay in-rack.
    pub fn shuffle_mb_s(&self, intra_rack_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&intra_rack_fraction),
            "fraction out of range"
        );
        intra_rack_fraction * self.intra_rack_mb_s
            + (1.0 - intra_rack_fraction) * self.inter_rack_mb_s
    }

    /// Check whether `id` refers to the same node (helper for locality
    /// classification in schedulers).
    pub fn is_local(src: NodeId, dst: NodeId) -> bool {
        src == dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeSpec, RackId};

    fn node(id: u32, rack: u16) -> Node {
        Node {
            id: NodeId(id),
            rack: RackId(rack),
            spec: NodeSpec::default(),
        }
    }

    #[test]
    fn local_transfer_is_free() {
        let net = NetworkModel::one_gbps();
        let a = node(0, 0);
        assert_eq!(net.transfer_secs(&a, &a, 64.0), 0.0);
    }

    #[test]
    fn intra_rack_faster_than_inter_rack() {
        let net = NetworkModel::one_gbps();
        let a = node(0, 0);
        let b = node(1, 0);
        let c = node(2, 1);
        let same = net.transfer_secs(&a, &b, 64.0);
        let cross = net.transfer_secs(&a, &c, 64.0);
        assert!(same < cross);
        assert!(same > 0.0);
    }

    #[test]
    fn transfer_scales_linearly_plus_latency() {
        let net = NetworkModel::one_gbps();
        let a = node(0, 0);
        let b = node(1, 0);
        let t1 = net.transfer_secs(&a, &b, 110.0);
        assert!((t1 - (net.latency_s + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn shuffle_bandwidth_interpolates() {
        let net = NetworkModel::one_gbps();
        assert_eq!(net.shuffle_mb_s(1.0), net.intra_rack_mb_s);
        assert_eq!(net.shuffle_mb_s(0.0), net.inter_rack_mb_s);
        let mid = net.shuffle_mb_s(0.5);
        assert!(mid > net.inter_rack_mb_s && mid < net.intra_rack_mb_s);
    }

    #[test]
    fn distance_based_transfer_matches_node_based() {
        let net = NetworkModel::one_gbps();
        let a = node(0, 0);
        let c = node(2, 1);
        assert_eq!(
            net.transfer_secs(&a, &c, 32.0),
            net.transfer_secs_by_distance(false, 32.0)
        );
    }
}
