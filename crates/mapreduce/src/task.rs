//! Task specifications handed from schedulers to the engine.

use crate::batch::BatchKey;
use crate::job::JobId;
use s3_dfs::BlockId;
use serde::{Deserialize, Serialize};

/// Where a map task's input block lives relative to the executing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Locality {
    /// A replica is on the executing node: read from local disk.
    NodeLocal,
    /// Nearest replica is in the same rack: one intra-rack hop.
    RackLocal,
    /// Nearest replica is in another rack: core-switch hop.
    OffRack,
}

/// A map task: one scan of one block, serving one or more jobs.
///
/// With a single job this is an ordinary Hadoop map task; with several it is
/// a *shared-scan* map task (MRShare merged job, or an S³ merged sub-job):
/// the block is read once and every job's map function runs over the
/// records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapTaskSpec {
    /// The input block.
    pub block: BlockId,
    /// Jobs sharing this scan (non-empty).
    pub jobs: Vec<JobId>,
    /// Owning batch, for progress bookkeeping.
    pub batch: BatchKey,
    /// Input locality from the executing node's perspective.
    pub locality: Locality,
}

/// A reduce task of a (merged) batch: one partition of the shuffle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceTaskSpec {
    /// Jobs whose intermediate data this reduce processes (non-empty).
    pub jobs: Vec<JobId>,
    /// Partition index within the batch (`0..num_partitions`).
    pub partition: u32,
    /// Shuffle input MB contributed by each job to this partition
    /// (parallel to `jobs`).
    pub shuffle_mb_per_job: Vec<f64>,
    /// Fraction of the shuffle that could **not** be overlapped with the map
    /// phase (the last map wave's share): only this part is paid after maps
    /// finish.
    pub unoverlapped_fraction: f64,
    /// Owning batch.
    pub batch: BatchKey,
}

impl ReduceTaskSpec {
    /// Total shuffle input of this reduce across all merged jobs, MB.
    pub fn total_shuffle_mb(&self) -> f64 {
        self.shuffle_mb_per_job.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_total_shuffle() {
        let r = ReduceTaskSpec {
            jobs: vec![JobId(0), JobId(1)],
            partition: 3,
            shuffle_mb_per_job: vec![80.0, 40.0],
            unoverlapped_fraction: 0.25,
            batch: BatchKey(7),
        };
        assert_eq!(r.total_shuffle_mb(), 120.0);
    }

    #[test]
    fn locality_is_ordered_by_cost_semantics() {
        // Not an Ord impl — just document the three levels exist and differ.
        assert_ne!(Locality::NodeLocal, Locality::RackLocal);
        assert_ne!(Locality::RackLocal, Locality::OffRack);
    }
}
