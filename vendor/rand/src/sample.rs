//! Uniform range sampling for [`Rng::gen_range`](crate::Rng::gen_range).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable uniformly from a `[lo, hi]` interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi]` (both inclusive).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range of a 128-bit type is unreachable for
                    // the types below; span fits in u128.
                    unreachable!();
                }
                // Widening-multiply rejection-free mapping is fine here:
                // the tiny modulo bias of (2^64 mod span) is irrelevant for
                // simulation workloads and keeps the stream consumption at
                // exactly one u64 per draw (determinism-friendly).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_uniform(rng, lo as f64, hi as f64) as f32
    }
}

/// Range forms accepted by `gen_range`, normalized to inclusive bounds.
pub trait IntoUniformRange<T: SampleUniform> {
    /// `(lo, hi_inclusive)` bounds of the range.
    fn bounds(self) -> (T, T);
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoUniformRange<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

impl IntoUniformRange<f32> for Range<f32> {
    fn bounds(self) -> (f32, f32) {
        (self.start, self.end)
    }
}
