#![warn(missing_docs)]

//! # s3-engine — a real multi-threaded in-process MapReduce engine
//!
//! While `s3-mapreduce` *models* a cluster to study scheduling at the
//! paper's 40-node scale, this crate actually **executes** MapReduce jobs
//! over real in-memory data on the local machine's threads. It exists for
//! two reasons:
//!
//! 1. **Semantic grounding.** The S³/MRShare claim that a merged shared
//!    scan computes exactly what independent jobs compute is a correctness
//!    property. [`run_merged`] runs many jobs over a single scan of the
//!    block store and the test suite proves its outputs are identical to
//!    [`run_job`] run per job.
//! 2. **Cost grounding.** The real engine measures how shared scanning
//!    trades one pass of I/O + parsing against per-job map function work —
//!    the same structure the simulator's `CostModel` (in `s3-mapreduce`)
//!    encodes.
//!
//! The execution shape mirrors Hadoop: map workers pull blocks, partition
//! their output by key hash, an optional combiner folds map-side, and
//! reduce workers process partitions.
//!
//! ## Observability
//!
//! Every entry point has an `*_observed` variant taking an [`Obs`] handle
//! (from the `s3-obs` crate, re-exported here): [`run_job_observed`],
//! [`run_merged_observed`], [`run_job_external_observed`],
//! [`SharedScanServer::new_observed`], and
//! [`WorkerPool::new_observed`](pool::WorkerPool::new_observed). They
//! record `engine.*` counters/gauges/histograms into the handle's metrics
//! registry and spans/instants into its trace recorder, exportable as a
//! Perfetto-loadable Chrome trace. The plain variants are the observed
//! ones with [`Obs::off`] — telemetry disabled costs one branch per site.

//!
//! ## Fault tolerance
//!
//! The shared-scan server quarantines panicking jobs (each failure is
//! individual — see [`JobError`]), optionally runs segments as retryable
//! per-block tasks scheduled by a **work-assisting claim loop** — fresh
//! claims come off one packed [`WorkProgress`](pool::WorkProgress) atomic
//! and idle workers immediately re-execute the slow tail, with
//! deadline-based speculation and slow-worker exclusion kept as the
//! crash-recovery fallback ([`FtConfig::resilient`]) — and accepts a
//! seeded [`FaultPlan`] that injects delays, drops, panics, and
//! coordinator death deterministically — the engine-level mirror of the
//! simulator's `s3-cluster` chaos harness.
//!
//! ## Adaptive segments
//!
//! With [`AdaptiveConfig::enabled`] the server ports the paper's *dynamic
//! sub-job adjustment* to the live engine: segment boundaries are
//! recomputed at runtime from an EWMA of measured scan cost and the
//! current non-excluded worker count, so one segment keeps filling one
//! map wave as conditions drift — without ever changing job outputs
//! (resized revolutions stay byte-identical to solo runs).

pub mod arena;
pub mod exec;
pub mod external;
pub mod fault;
pub(crate) mod partition;
pub mod pool;
pub mod retry;
pub mod scan_server;
pub mod service;
pub mod shared;
pub mod store;
pub mod types;

pub use arena::TokenMap;
pub use exec::{
    run_job, run_job_legacy, run_job_observed, run_job_on, ExecConfig, JobOutput, ScanPath,
    ScanStats,
};
pub use external::{
    run_job_external, run_job_external_observed, run_merged_external,
    run_merged_external_observed, ExternalConfig, SpillStats,
};
pub use fault::{ArmedFaults, EngineChaosConfig, EngineFault, FaultPlan, FtConfig};
pub use pool::{BlockClaims, WorkProgress, WorkerPool};
pub use retry::RetryPolicy;
pub use s3_obs::Obs;
pub use scan_server::{
    AdaptiveConfig, JobHandle, ServerConfig, SharedScanServer, WaitTimeout,
};
pub use service::{FileSpec, QosConfig, ScanService, ServiceConfig, ServiceStats};
pub use shared::{run_merged, run_merged_legacy, run_merged_observed, run_merged_on};
pub use store::{BlockStore, FileCatalog, FileId, NonUtf8Block, UnknownFile};
pub use types::{ConfigError, JobError, JobResult, MapReduceJob, PartitionMode, QosClass, RejectReason};
