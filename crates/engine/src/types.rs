//! The job interface: user-defined map, combine, and reduce logic — and
//! the error type a job can fail with when it runs on the fault-tolerant
//! shared-scan server.

use std::hash::Hash;

/// Quality-of-service class of a submission to the multi-tenant
/// [`crate::ScanService`] — the live-engine port of the simulator's
/// priority ablation (`PriorityPolicy` in `s3-core`).
///
/// Ordering follows urgency: `Low < Normal < High`. The service admits
/// `High` before `Normal` before `Low` at every dispatch point, and
/// defers `Low` entirely while the merged width of the revolution is at
/// or above the configured cap (the paper's future-work merge-width
/// policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Best-effort: deferred while the merged width is at the cap, first
    /// to be shed under overload.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive: admitted ahead of everything else.
    High,
}

impl QosClass {
    /// All classes, highest urgency first — dispatch order.
    pub const ALL: [QosClass; 3] = [QosClass::High, QosClass::Normal, QosClass::Low];

    /// Stable wire code (used in trace event ids): High=2, Normal=1, Low=0.
    pub fn code(self) -> u64 {
        match self {
            QosClass::Low => 0,
            QosClass::Normal => 1,
            QosClass::High => 2,
        }
    }

    /// Inverse of [`QosClass::code`].
    pub fn from_code(code: u64) -> Option<QosClass> {
        match code {
            0 => Some(QosClass::Low),
            1 => Some(QosClass::Normal),
            2 => Some(QosClass::High),
            _ => None,
        }
    }

    /// Human-readable lowercase label ("high"/"normal"/"low").
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Low => "low",
            QosClass::Normal => "normal",
            QosClass::High => "high",
        }
    }
}

/// How reduce shards are assigned to intermediate keys.
///
/// [`PartitionMode::Hash`] (the default) is the classic MapReduce shuffle:
/// shard = bias-free hash of the key — oblivious to the key distribution,
/// so a Zipf-skewed corpus hot-spots the shard that draws the head of the
/// distribution and the whole job waits on it.
///
/// [`PartitionMode::Weighted`] samples the combiner-output key
/// distribution during the scan (a per-worker top-K sketch over data that
/// already streams through the fold combiners and `TokenMap` arenas),
/// merges the sketches when the job finishes its revolution, and builds a
/// weighted partition plan that equalizes estimated records-per-shard —
/// splitting any shard whose estimated weight exceeds a configurable
/// factor of the mean across extra reduce-pool tasks. Outputs are
/// record-identical to hash partitioning in every mode: shards hold
/// disjoint key sets and the publisher sorts the concatenation into one
/// ordered relation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PartitionMode {
    /// Distribution-oblivious hash sharding (default, bit-compatible with
    /// prior releases).
    #[default]
    Hash,
    /// Skew-aware weighted sharding from a sampled key distribution.
    Weighted {
        /// Split threshold in thousandths of the mean shard weight: a
        /// shard estimated heavier than `split_factor_x1000 / 1000 ×
        /// mean` sheds heavy keys into extra reduce tasks. `0` selects
        /// the default factor (1250 = 1.25 × mean).
        split_factor_x1000: u32,
    },
}

impl PartitionMode {
    /// [`PartitionMode::Weighted`] with the default split factor.
    pub fn weighted() -> PartitionMode {
        PartitionMode::Weighted {
            split_factor_x1000: 0,
        }
    }

    /// Whether this mode builds a weighted partition plan.
    pub fn is_weighted(self) -> bool {
        matches!(self, PartitionMode::Weighted { .. })
    }

    /// The resolved split threshold in thousandths of the mean shard
    /// weight (1250 unless overridden).
    pub fn split_factor_x1000(self) -> u64 {
        match self {
            PartitionMode::Hash => 1250,
            PartitionMode::Weighted {
                split_factor_x1000: 0,
            } => 1250,
            PartitionMode::Weighted { split_factor_x1000 } => split_factor_x1000 as u64,
        }
    }
}

/// A structurally invalid execution or server configuration, reported at
/// construction time instead of a panic (historically a div-by-zero)
/// deep inside the reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigError {
    /// `num_threads == 0`: no worker could ever scan a block.
    ZeroThreads,
    /// `num_reducers == 0`: no shard could ever receive a key.
    ZeroReducers,
    /// `blocks_per_segment == 0`: the circular scan could never advance.
    ZeroBlocksPerSegment,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "config needs at least one worker thread"),
            ConfigError::ZeroReducers => write!(f, "config needs at least one reducer"),
            ConfigError::ZeroBlocksPerSegment => {
                write!(f, "config needs at least one block per segment")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why the [`crate::ScanService`] shed a submission instead of queuing it.
///
/// Rejections are synchronous and typed: the caller gets the reason back
/// from `submit` immediately (no handle is created), so a client-side
/// [`crate::RetryPolicy`] can decide whether resubmitting can ever help
/// (`QueueFull`/`Overloaded`) or never will (`UnknownFile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The per-class admission queue for the target file is at capacity.
    QueueFull,
    /// The service-wide queued-job budget is exhausted (global
    /// backpressure, independent of any one file's queue).
    Overloaded,
    /// The submission named a file the service does not serve.
    UnknownFile,
}

impl RejectReason {
    /// Stable wire code (used in trace event ids).
    pub fn code(self) -> u64 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::Overloaded => 1,
            RejectReason::UnknownFile => 2,
        }
    }

    /// Inverse of [`RejectReason::code`].
    pub fn from_code(code: u64) -> Option<RejectReason> {
        match code {
            0 => Some(RejectReason::QueueFull),
            1 => Some(RejectReason::Overloaded),
            2 => Some(RejectReason::UnknownFile),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "per-class admission queue full"),
            RejectReason::Overloaded => write!(f, "service queued-job budget exhausted"),
            RejectReason::UnknownFile => write!(f, "unknown file"),
        }
    }
}

/// Why a job submitted to the shared-scan server produced no output.
///
/// User code is untrusted from the runtime's point of view: a `map`,
/// `combine`, or `reduce` that panics fails *its own job* with
/// [`JobError::Panicked`] (carrying the panic payload) while the shared
/// scan and every co-riding job continue. [`JobError::Aborted`] means the
/// runtime shut down — the coordinator died or the server was shut down —
/// before the job's revolution completed; it is never silently lost and
/// its handle never hangs. The admission-control variants come from the
/// multi-tenant [`crate::ScanService`]: [`JobError::Rejected`] is a
/// synchronous load-shed decision, and [`JobError::DeadlineExpired`] is
/// the sticky outcome of a job whose deadline passed while queued or
/// mid-revolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's own map/combine/reduce panicked; the payload's message.
    /// The job was quarantined — removed from the scan with its partial
    /// state discarded — without disturbing any other job.
    Panicked(String),
    /// The runtime went away before the job finished (server shutdown or
    /// coordinator death), so the job's output will never be produced.
    Aborted,
    /// The service shed this submission at admission time: no queue slot
    /// was consumed and no work was done. Carries the shed reason and the
    /// QoS class the submission declared (every rejection is attributable
    /// to a class).
    Rejected {
        /// Why the submission was shed.
        reason: RejectReason,
        /// The QoS class the submission carried.
        class: QosClass,
    },
    /// The job's deadline passed before its revolution completed. Sticky:
    /// once published it is the job's final outcome even if stray segment
    /// work for it was still in flight when the deadline hit.
    DeadlineExpired,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Aborted => write!(f, "job aborted: runtime shut down before completion"),
            JobError::Rejected { reason, class } => {
                write!(f, "job rejected ({} class): {reason}", class.label())
            }
            JobError::DeadlineExpired => {
                write!(f, "job deadline expired before its revolution completed")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// What a [`crate::JobHandle`] resolves to: the job's output relation, or
/// the reason it failed.
pub type JobResult<K, Out> = Result<crate::exec::JobOutput<K, Out>, JobError>;

/// A MapReduce job over newline-delimited text blocks.
///
/// `K`/`V` are the intermediate key/value types. Jobs merged into one
/// shared scan must share `K`/`V` (as MRShare requires jobs to agree on
/// their intermediate schema to share a scan).
///
/// Job code must not assume anything about segmentation: under a
/// [`crate::SharedScanServer`] with [`crate::AdaptiveConfig`] enabled,
/// segment sizes vary at runtime (the paper's dynamic sub-job
/// adjustment), and a job's revolution is guaranteed only to cover every
/// block exactly once — in an order and grouping the runtime chooses.
pub trait MapReduceJob: Send + Sync {
    /// Intermediate (and output) key.
    type K: Clone + Ord + Hash + Send + Sync;
    /// Intermediate value.
    type V: Clone + Send + Sync;
    /// Final output value.
    type Out: Clone + Send + Sync + PartialEq + std::fmt::Debug;

    /// Map one input record (a line of text), emitting intermediate pairs.
    fn map(&self, line: &str, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Byte-level [`map`](Self::map): map one input record, handed out as a
    /// borrowed byte slice straight from the block store (no copy, no UTF-8
    /// validation on the hot path).
    ///
    /// The default converts to `&str` and defers to [`map`](Self::map), so
    /// every existing job keeps working; lines that are not valid UTF-8 are
    /// converted lossily (each invalid sequence becomes U+FFFD) rather than
    /// panicking. Jobs on the hot path should override this (or
    /// [`map_token_bytes`](Self::map_token_bytes)) to parse the slice
    /// directly.
    fn map_bytes(&self, line: &[u8], emit: &mut dyn FnMut(Self::K, Self::V)) {
        match std::str::from_utf8(line) {
            Ok(s) => self.map(s, emit),
            Err(_) => self.map(&String::from_utf8_lossy(line), emit),
        }
    }

    /// Optional map-side combiner: fold a run of values for one key into a
    /// smaller run. Defaults to the identity (no combining).
    fn combine(&self, _key: &Self::K, values: Vec<Self::V>) -> Vec<Self::V> {
        values
    }

    /// Reduce all values of one key to the final output value; returning
    /// `None` suppresses the key from the output.
    fn reduce(&self, key: &Self::K, values: &[Self::V]) -> Option<Self::Out>;

    /// Declare that [`combine`](Self::combine) is a streaming **fold**: it
    /// merges any run of values into exactly one value via an associative,
    /// commutative pairwise merge ([`combine_fold`](Self::combine_fold)),
    /// independent of the key grouping the engine chose.
    ///
    /// Fold-declared jobs let the engines keep **one accumulator per key**
    /// on the map path (and in the shared-scan server's persistent worker
    /// state) instead of buffering a `Vec<V>` per key and combining later —
    /// no per-value allocation, no deferred combine pass. Outputs must be
    /// identical either way; the equivalence tests enforce it.
    fn combine_is_fold(&self) -> bool {
        false
    }

    /// Pairwise merge used when [`combine_is_fold`](Self::combine_is_fold)
    /// is true: fold `next` into `acc`. Must agree with
    /// [`combine`](Self::combine) (`combine(k, vec![a, b]) ==
    /// vec![fold(a, b)]`) and be associative and commutative, because the
    /// engines fold in scan order, which varies with threading.
    fn combine_fold(&self, _acc: &mut Self::V, _next: Self::V) {
        unimplemented!("combine_fold requires combine_is_fold() == true")
    }

    /// Declare that [`map`](Self::map) is equivalent to running
    /// [`map_token`](Self::map_token) over each whitespace token of the
    /// line. Shared scans (merged runs and the scan server) then tokenize
    /// each line **once for all jobs** instead of once per job — sharing
    /// the parse, not just the read, which is where the scan time goes
    /// once I/O is shared.
    fn map_is_per_token(&self) -> bool {
        false
    }

    /// Per-token map used when [`map_is_per_token`](Self::map_is_per_token)
    /// is true. Must agree with [`map`](Self::map):
    /// `map(line)` ≡ `line.split_whitespace().for_each(|t| map_token(t))`.
    fn map_token(&self, _token: &str, _emit: &mut dyn FnMut(Self::K, Self::V)) {
        unimplemented!("map_token requires map_is_per_token() == true")
    }

    /// Byte-level [`map_token`](Self::map_token): map one whitespace-free
    /// token handed out as a borrowed slice of the block.
    ///
    /// Default: lossy UTF-8 conversion then [`map_token`](Self::map_token).
    /// Only meaningful when [`map_is_per_token`](Self::map_is_per_token) is
    /// true.
    fn map_token_bytes(&self, token: &[u8], emit: &mut dyn FnMut(Self::K, Self::V)) {
        match std::str::from_utf8(token) {
            Ok(s) => self.map_token(s, emit),
            Err(_) => self.map_token(&String::from_utf8_lossy(token), emit),
        }
    }

    /// Declare the **token-identity fast path**: the job is per-token
    /// ([`map_is_per_token`](Self::map_is_per_token)), fold-combining
    /// ([`combine_is_fold`](Self::combine_is_fold)), and for every token
    /// emits at most one pair whose key is a pure function of the token
    /// bytes — i.e. `map_token_bytes(t)` ≡
    /// `if let Some(v) = token_value(t) { emit(token_key(t), v) }`.
    ///
    /// Engines then run the map phase through a per-worker byte-keyed arena
    /// ([`crate::TokenMap`]): values fold under the raw token bytes, and
    /// [`token_key`](Self::token_key) materializes each **distinct** token's
    /// key exactly once at flush time — instead of once per occurrence. This
    /// is what removes the per-occurrence `String` allocation from
    /// wordcount-style jobs.
    fn map_emits_token(&self) -> bool {
        false
    }

    /// The value this token contributes, or `None` if the token is filtered
    /// out. Required when [`map_emits_token`](Self::map_emits_token) is true.
    fn token_value(&self, _token: &[u8]) -> Option<Self::V> {
        unimplemented!("token_value requires map_emits_token() == true")
    }

    /// The key for a token, built once per distinct token at flush time.
    /// Required when [`map_emits_token`](Self::map_emits_token) is true.
    /// Must agree with the key [`map_token`](Self::map_token) emits.
    fn token_key(&self, _token: &[u8]) -> Self::K {
        unimplemented!("token_key requires map_emits_token() == true")
    }
}

#[cfg(test)]
pub(crate) mod test_jobs {
    use super::MapReduceJob;

    /// Count words that start with a given prefix — the paper's modified
    /// wordcount ("count only the words that match a user-specified
    /// pattern").
    pub struct PrefixCount {
        pub prefix: String,
    }

    impl MapReduceJob for PrefixCount {
        type K = String;
        type V = i64;
        type Out = i64;

        fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
            for w in line.split_whitespace() {
                if w.starts_with(&self.prefix) {
                    emit(w.to_string(), 1);
                }
            }
        }

        fn combine(&self, _key: &String, values: Vec<i64>) -> Vec<i64> {
            vec![values.iter().sum()]
        }

        fn reduce(&self, _key: &String, values: &[i64]) -> Option<i64> {
            Some(values.iter().sum())
        }

        fn combine_is_fold(&self) -> bool {
            true
        }

        fn combine_fold(&self, acc: &mut i64, next: i64) {
            *acc += next;
        }

        fn map_is_per_token(&self) -> bool {
            true
        }

        fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
            if token.starts_with(&self.prefix) {
                emit(token.to_string(), 1);
            }
        }

        fn map_emits_token(&self) -> bool {
            true
        }

        fn token_value(&self, token: &[u8]) -> Option<i64> {
            token.starts_with(self.prefix.as_bytes()).then_some(1)
        }

        fn token_key(&self, token: &[u8]) -> String {
            String::from_utf8_lossy(token).into_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_jobs::PrefixCount;
    use super::*;

    #[test]
    fn prefix_count_maps_and_reduces() {
        let j = PrefixCount {
            prefix: "a".into(),
        };
        let mut out = Vec::new();
        j.map("an apple and a banana", &mut |k, v| out.push((k, v)));
        assert_eq!(out.len(), 4); // an, apple, and, a
        assert_eq!(j.reduce(&"a".into(), &[1, 1, 1]), Some(3));
        assert_eq!(j.combine(&"a".into(), vec![1, 1, 1]), vec![3]);
    }

    #[test]
    fn qos_and_reject_codes_round_trip() {
        for c in QosClass::ALL {
            assert_eq!(QosClass::from_code(c.code()), Some(c));
        }
        assert_eq!(QosClass::from_code(99), None);
        for r in [
            RejectReason::QueueFull,
            RejectReason::Overloaded,
            RejectReason::UnknownFile,
        ] {
            assert_eq!(RejectReason::from_code(r.code()), Some(r));
        }
        assert_eq!(RejectReason::from_code(99), None);
        assert!(QosClass::Low < QosClass::Normal && QosClass::Normal < QosClass::High);
        let err = JobError::Rejected {
            reason: RejectReason::QueueFull,
            class: QosClass::Low,
        };
        assert!(err.to_string().contains("low class"));
        assert!(JobError::DeadlineExpired.to_string().contains("deadline"));
    }

    #[test]
    fn default_combiner_is_identity() {
        struct NoCombine;
        impl MapReduceJob for NoCombine {
            type K = String;
            type V = i64;
            type Out = i64;
            fn map(&self, _: &str, _: &mut dyn FnMut(String, i64)) {}
            fn reduce(&self, _: &String, v: &[i64]) -> Option<i64> {
                Some(v.len() as i64)
            }
        }
        let j = NoCombine;
        assert_eq!(j.combine(&"k".into(), vec![1, 2, 3]), vec![1, 2, 3]);
    }
}
