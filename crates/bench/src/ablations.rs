//! Ablations beyond the paper's published figures, exploring the design
//! choices DESIGN.md calls out:
//!
//! - sub-job granularity (waves per segment) vs submission overhead;
//! - the dense↔sparse continuum via a Poisson arrival-rate sweep, locating
//!   the S³/MRS1 crossover the paper observes at its two endpoints;
//! - MRShare batch-count sensitivity;
//! - periodic slot checking under injected stragglers;
//! - the Section II-B partial-utilization schedulers (fair, capacity) as
//!   additional baselines;
//! - priority-aware S³ (the paper's future-work hook).

use s3_cluster::{ClusterTopology, NodeId, SlowdownSchedule, SpeedProfile};
use s3_core::{
    BatchPolicy, CapacityScheduler, FairScheduler, FifoScheduler, MRShareScheduler, PriorityPolicy,
    S3Config, S3Scheduler, SubJobSizing,
};
use s3_mapreduce::job::{requests_from_arrivals, requests_with_priorities};
use s3_mapreduce::{simulate, CostModel, EngineConfig, Priority, RunMetrics, Scheduler};
use s3_sim::SimTime;
use s3_workloads::{paper_wordcount_file, wordcount_normal, ArrivalPattern, Dataset};
use serde::Serialize;

fn run(
    dataset: &Dataset,
    arrivals: &[f64],
    scheduler: &mut dyn Scheduler,
    slowdowns: &SlowdownSchedule,
    seed: u64,
) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    let workload = requests_from_arrivals(&wordcount_normal(), dataset.file, arrivals);
    simulate(
        &cluster,
        slowdowns,
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    )
    .expect("ablation run must not stall")
}

/// One `(x, tet_s, art_s)` sample of a one-dimensional sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Total execution time, seconds.
    pub tet_s: f64,
    /// Average response time, seconds.
    pub art_s: f64,
}

/// Sub-job granularity: S³ with 1..=13 waves per segment on the paper's
/// sparse workload. Small segments lower alignment latency but multiply
/// JQM iterations; large segments approach MRShare-like batching.
pub fn segment_size_sweep(seed: u64) -> Vec<SweepPoint> {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let arrivals = ArrivalPattern::paper_sparse().times();
    [1u32, 2, 3, 5, 8, 13]
        .iter()
        .map(|&waves| {
            let mut s = S3Scheduler::new(S3Config {
                sizing: SubJobSizing::Waves(waves),
                ..S3Config::default()
            });
            let m = run(&dataset, &arrivals, &mut s, &SlowdownSchedule::none(), seed);
            SweepPoint {
                x: waves as f64,
                tet_s: m.tet().as_secs_f64(),
                art_s: m.art().as_secs_f64(),
            }
        })
        .collect()
}

/// One arrival-rate sample comparing S³ with single-batch MRShare.
#[derive(Debug, Clone, Serialize)]
pub struct CrossoverPoint {
    /// Mean inter-arrival gap, seconds.
    pub mean_gap_s: f64,
    /// S³ measurements.
    pub s3: SweepPoint,
    /// MRS1 measurements.
    pub mrs1: SweepPoint,
}

/// The dense↔sparse continuum: 10 Poisson jobs with growing mean gaps.
/// At tiny gaps MRS1 matches or beats S³ (Figure 4(b)); as gaps grow,
/// MRS1's waiting time explodes while S³ stays flat (Figure 4(a)).
pub fn arrival_rate_sweep(seed: u64) -> Vec<CrossoverPoint> {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    [2.0f64, 10.0, 30.0, 60.0, 120.0, 240.0]
        .iter()
        .map(|&gap| {
            let arrivals = ArrivalPattern::Poisson {
                n: 10,
                mean_gap_s: gap,
                seed: seed ^ 0xA881,
            }
            .times();
            let m_s3 = run(
                &dataset,
                &arrivals,
                &mut S3Scheduler::default(),
                &SlowdownSchedule::none(),
                seed,
            );
            let m_mrs = run(
                &dataset,
                &arrivals,
                &mut MRShareScheduler::mrs1(10),
                &SlowdownSchedule::none(),
                seed,
            );
            CrossoverPoint {
                mean_gap_s: gap,
                s3: SweepPoint {
                    x: gap,
                    tet_s: m_s3.tet().as_secs_f64(),
                    art_s: m_s3.art().as_secs_f64(),
                },
                mrs1: SweepPoint {
                    x: gap,
                    tet_s: m_mrs.tet().as_secs_f64(),
                    art_s: m_mrs.art().as_secs_f64(),
                },
            }
        })
        .collect()
}

/// MRShare batch-count sensitivity on the sparse workload: 1..=5 equal
/// batches. Few batches → high waiting (bad ART); many batches → less
/// sharing (worse TET).
pub fn mrshare_batch_sweep(seed: u64) -> Vec<SweepPoint> {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let arrivals = ArrivalPattern::paper_sparse().times();
    (1usize..=5)
        .map(|batches| {
            let base = 10 / batches;
            let mut sizes = vec![base; batches];
            let mut rem = 10 - base * batches;
            for s in sizes.iter_mut() {
                if rem == 0 {
                    break;
                }
                *s += 1;
                rem -= 1;
            }
            let mut s = MRShareScheduler::new(BatchPolicy::FixedGroups(sizes), "MRS");
            let m = run(&dataset, &arrivals, &mut s, &SlowdownSchedule::none(), seed);
            SweepPoint {
                x: batches as f64,
                tet_s: m.tet().as_secs_f64(),
                art_s: m.art().as_secs_f64(),
            }
        })
        .collect()
}

/// Straggler ablation: five nodes at 10% speed for nine minutes, S³ with
/// slot checking off vs on. Returns `(off, on)`.
pub fn slot_checking_ablation(seed: u64) -> (SweepPoint, SweepPoint) {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let mut slow = SlowdownSchedule::none();
    for id in [3u32, 11, 19, 27, 35] {
        slow.set(
            NodeId(id),
            SpeedProfile::slow_between(SimTime::from_secs(60), SimTime::from_secs(600), 0.1),
        );
    }
    let arrivals = [0.0, 60.0];

    let off = {
        let mut s = S3Scheduler::default();
        let m = run(&dataset, &arrivals, &mut s, &slow, seed);
        SweepPoint {
            x: 0.0,
            tet_s: m.tet().as_secs_f64(),
            art_s: m.art().as_secs_f64(),
        }
    };
    let on = {
        let mut s = S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Dynamic { waves: 5 },
            slot_check_period_s: Some(10.0),
            slow_node_threshold: 0.5,
            ..S3Config::default()
        });
        let m = run(&dataset, &arrivals, &mut s, &slow, seed);
        SweepPoint {
            x: 1.0,
            tet_s: m.tet().as_secs_f64(),
            art_s: m.art().as_secs_f64(),
        }
    };
    (off, on)
}

/// One scheduler's row in the extended comparison.
#[derive(Debug, Clone, Serialize)]
pub struct NamedPoint {
    /// Scheduler label.
    pub name: String,
    /// Total execution time, seconds.
    pub tet_s: f64,
    /// Average response time, seconds.
    pub art_s: f64,
    /// Blocks scanned.
    pub blocks_read: u64,
}

/// The Section II-B schedulers next to S³ and FIFO on the sparse workload:
/// fair sharing and a two-queue capacity partition fix FIFO's blocking but
/// cannot share scans — the gap S³ closes.
pub fn partial_utilization_comparison(seed: u64) -> Vec<NamedPoint> {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let arrivals = ArrivalPattern::paper_sparse().times();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(S3Scheduler::default()),
        Box::new(FifoScheduler::new()),
        Box::new(FairScheduler::new()),
        Box::new(CapacityScheduler::new(2)),
        Box::new(CapacityScheduler::new(4)),
    ];
    schedulers
        .iter_mut()
        .map(|s| {
            let m = run(
                &dataset,
                &arrivals,
                s.as_mut(),
                &SlowdownSchedule::none(),
                seed,
            );
            NamedPoint {
                name: m.scheduler.clone(),
                tet_s: m.tet().as_secs_f64(),
                art_s: m.art().as_secs_f64(),
                blocks_read: m.blocks_read,
            }
        })
        .collect()
}

/// One row of the placement/replication ablation.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementRow {
    /// Placement policy + replication label.
    pub name: String,
    /// Fraction of node-local map tasks.
    pub locality_rate: f64,
    /// Total execution time, seconds.
    pub tet_s: f64,
}

/// Block placement vs data locality under S³: the paper's setup
/// (round-robin striping, replication 1 — every wave perfectly local)
/// against HDFS-default rack-aware placement at replication 1–3. More
/// replicas give the scheduler more chances to place each scan locally.
pub fn placement_ablation(seed: u64) -> Vec<PlacementRow> {
    use rand::SeedableRng;
    use s3_dfs::{RackAwarePlacement, RoundRobinPlacement};
    use s3_workloads::per_node_file_with;

    let cluster = ClusterTopology::paper_cluster();
    let arrivals = [0.0, 30.0];

    let mut rows = Vec::new();
    let mut measure = |name: &str, dataset: &Dataset| {
        let m = run(
            dataset,
            &arrivals,
            &mut S3Scheduler::default(),
            &SlowdownSchedule::none(),
            seed,
        );
        rows.push(PlacementRow {
            name: name.to_string(),
            locality_rate: m.locality_rate(),
            tet_s: m.tet().as_secs_f64(),
        });
    };

    let d = per_node_file_with(
        &cluster,
        "rr1",
        4,
        64,
        1,
        &mut RoundRobinPlacement::default(),
    );
    measure("round-robin r=1", &d);
    for rep in [1u32, 2, 3] {
        let mut policy = RackAwarePlacement::new(rand::rngs::SmallRng::seed_from_u64(seed ^ 0xC4));
        let d = per_node_file_with(&cluster, &format!("ra{rep}"), 4, 64, rep, &mut policy);
        measure(&format!("rack-aware r={rep}"), &d);
    }
    rows
}

/// One heartbeat-interval sample of the S³-vs-MRS1 dense-pattern race.
#[derive(Debug, Clone, Serialize)]
pub struct HeartbeatPoint {
    /// TaskTracker heartbeat interval, seconds.
    pub heartbeat_s: f64,
    /// S³'s TET on the dense pattern, seconds.
    pub s3_tet_s: f64,
    /// Single-batch MRShare's TET on the dense pattern, seconds.
    pub mrs1_tet_s: f64,
}

/// Heartbeat-interval sensitivity (dense pattern): every sub-job boundary
/// costs S³ a heartbeat round-trip per node, so slow heartbeats (Hadoop
/// 0.20 defaulted to 3 s on small clusters) widen MRS1's dense-pattern
/// advantage — quantifying the paper's "communication cost becomes a
/// dominant factor" explanation for Figure 4(b).
pub fn heartbeat_sweep(seed: u64) -> Vec<HeartbeatPoint> {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let arrivals = ArrivalPattern::paper_dense().times();
    let workload = requests_from_arrivals(&wordcount_normal(), dataset.file, &arrivals);
    [0.3f64, 1.0, 3.0]
        .iter()
        .map(|&hb| {
            let cost = CostModel {
                heartbeat_s: hb,
                ..CostModel::default()
            };
            let tet = |s: &mut dyn Scheduler| {
                simulate(
                    &cluster,
                    &SlowdownSchedule::none(),
                    &dataset.dfs,
                    &cost,
                    &workload,
                    s,
                    &EngineConfig {
                        seed,
                        ..EngineConfig::default()
                    },
                )
                .expect("completes")
                .tet()
                .as_secs_f64()
            };
            HeartbeatPoint {
                heartbeat_s: hb,
                s3_tet_s: tet(&mut S3Scheduler::default()),
                mrs1_tet_s: tet(&mut MRShareScheduler::mrs1(10)),
            }
        })
        .collect()
}

/// One row of the speculation ablation.
#[derive(Debug, Clone, Serialize)]
pub struct SpeculationRow {
    /// Configuration label.
    pub name: String,
    /// Total execution time, seconds.
    pub tet_s: f64,
    /// Backup attempts launched.
    pub attempts: u64,
    /// Backups that beat the original.
    pub wins: u64,
    /// Attempts whose work was discarded.
    pub wasted: u64,
}

/// Speculative execution vs S³'s periodic slot checking under stragglers.
///
/// The paper disables Hadoop's speculative execution (Section V-A) and
/// instead gives S³ slot checking. This ablation shows both mechanisms
/// fighting the same enemy: FIFO without help suffers the stragglers;
/// FIFO + speculation recovers by re-running slow attempts (at the price
/// of wasted work); S³ + slot checking avoids assigning to slow nodes in
/// the first place, wasting nothing.
pub fn speculation_ablation(seed: u64) -> Vec<SpeculationRow> {
    use s3_mapreduce::engine::SpeculationConfig;

    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let mut slow = SlowdownSchedule::none();
    for id in [3u32, 11, 19, 27, 35] {
        slow.set(
            NodeId(id),
            SpeedProfile::slow_between(SimTime::from_secs(60), SimTime::from_secs(600), 0.1),
        );
    }
    let arrivals = [0.0, 60.0];
    let workload = requests_from_arrivals(&wordcount_normal(), dataset.file, &arrivals);

    let run_cfg = |scheduler: &mut dyn Scheduler, speculation: Option<SpeculationConfig>| {
        simulate(
            &cluster,
            &slow,
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            scheduler,
            &EngineConfig {
                seed,
                speculation,
                ..EngineConfig::default()
            },
        )
        .expect("completes")
    };

    let mut rows = Vec::new();
    let m = run_cfg(&mut FifoScheduler::new(), None);
    rows.push(SpeculationRow {
        name: "FIFO".into(),
        tet_s: m.tet().as_secs_f64(),
        attempts: m.speculative_attempts,
        wins: m.speculative_wins,
        wasted: m.speculative_wasted,
    });
    let m = run_cfg(
        &mut FifoScheduler::new(),
        Some(SpeculationConfig { threshold: 1.0 }),
    );
    rows.push(SpeculationRow {
        name: "FIFO+spec".into(),
        tet_s: m.tet().as_secs_f64(),
        attempts: m.speculative_attempts,
        wins: m.speculative_wins,
        wasted: m.speculative_wasted,
    });
    let m = run_cfg(
        &mut S3Scheduler::new(S3Config {
            sizing: SubJobSizing::Dynamic { waves: 5 },
            slot_check_period_s: Some(10.0),
            slow_node_threshold: 0.5,
            ..S3Config::default()
        }),
        None,
    );
    rows.push(SpeculationRow {
        name: "S3+slotchk".into(),
        tet_s: m.tet().as_secs_f64(),
        attempts: m.speculative_attempts,
        wins: m.speculative_wins,
        wasted: m.speculative_wasted,
    });
    rows
}

/// Priority ablation: one high-priority job arriving amid nine low-priority
/// jobs, baseline S³ vs priority-aware S³ (width cap 3). Returns
/// `(high_job_response_baseline_s, high_job_response_prioritized_s)`.
pub fn priority_ablation(seed: u64) -> (f64, f64) {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();
    // Nine low-priority jobs already in flight, then a high-priority job.
    let mut spec: Vec<(f64, Priority)> =
        (0..9).map(|i| (i as f64 * 10.0, Priority::Low)).collect();
    spec.push((95.0, Priority::High));
    let workload = requests_with_priorities(&profile, dataset.file, &spec);
    let high_id = workload
        .iter()
        .find(|r| r.priority == Priority::High)
        .expect("high-priority job exists")
        .id;

    let response_of = |config: S3Config| -> f64 {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            &mut S3Scheduler::new(config),
            &EngineConfig {
                seed,
                ..EngineConfig::default()
            },
        )
        .expect("completes");
        m.outcomes
            .iter()
            .find(|o| o.job == high_id)
            .expect("high job completed")
            .response()
            .as_secs_f64()
    };

    let baseline = response_of(S3Config::default());
    let prioritized = response_of(S3Config {
        priority_policy: Some(PriorityPolicy {
            low_priority_width_cap: 3,
        }),
        ..S3Config::default()
    });
    (baseline, prioritized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    #[test]
    fn segment_sweep_has_an_interior_optimum_or_monotone_tet() {
        let pts = segment_size_sweep(DEFAULT_SEED);
        assert_eq!(pts.len(), 6);
        // Tiny segments pay many JQM iterations: 1 wave per segment must
        // not beat 5 waves on TET.
        let one = &pts[0];
        let five = pts.iter().find(|p| p.x == 5.0).unwrap();
        assert!(one.tet_s >= five.tet_s * 0.98, "1 wave {} vs 5 waves {}", one.tet_s, five.tet_s);
    }

    #[test]
    fn arrival_sweep_shows_the_crossover() {
        let pts = arrival_rate_sweep(DEFAULT_SEED);
        // Densest point: MRS1 competitive with S3 on ART (within 15%).
        let densest = &pts[0];
        assert!(densest.mrs1.art_s <= densest.s3.art_s * 1.15);
        // Sparsest point: MRS1's ART collapses (jobs wait for the batch).
        let sparsest = pts.last().unwrap();
        assert!(
            sparsest.mrs1.art_s > 1.8 * sparsest.s3.art_s,
            "mrs1 {} vs s3 {}",
            sparsest.mrs1.art_s,
            sparsest.s3.art_s
        );
        // S3's ART stays flat across the sweep (within 2x); MRS1's grows
        // by much more.
        let s3_growth = sparsest.s3.art_s / densest.s3.art_s;
        let mrs_growth = sparsest.mrs1.art_s / densest.mrs1.art_s;
        assert!(mrs_growth > s3_growth, "{mrs_growth} vs {s3_growth}");
    }

    #[test]
    fn slot_checking_recovers_from_stragglers() {
        let (off, on) = slot_checking_ablation(DEFAULT_SEED);
        assert!(
            on.tet_s < off.tet_s * 0.9,
            "slot checking should recover >10%: off {} on {}",
            off.tet_s,
            on.tet_s
        );
    }

    #[test]
    fn partial_utilization_fixes_blocking_not_sharing() {
        let rows = partial_utilization_comparison(DEFAULT_SEED);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // Fair sharing is work-conserving: its makespan stays near FIFO's
        // (both scan everything with no sharing). Note its *mean* response
        // is worse than FIFO's under backlog — the classic processor-
        // sharing vs FIFO result — which is exactly the paper's first
        // drawback: "each job is allocated less resources, its execution
        // time will be longer".
        let fifo_tet = get("FIFO").tet_s;
        assert!((get("Fair").tet_s / fifo_tet - 1.0).abs() < 0.15);
        // Static capacity partitions waste idle capacity: worse than fair.
        assert!(get("Capacity4").tet_s > get("Fair").tet_s * 0.95);
        // None of them shares scans...
        for name in ["FIFO", "Fair", "Capacity2", "Capacity4"] {
            assert_eq!(get(name).blocks_read, 25600, "{name} cannot share");
        }
        // ...and S3 beats them all on both metrics while scanning less.
        for name in ["FIFO", "Fair", "Capacity2", "Capacity4"] {
            let r = get(name);
            assert!(r.tet_s > get("S3").tet_s, "{name} TET");
            assert!(r.art_s > get("S3").art_s, "{name} ART");
            assert!(r.blocks_read > get("S3").blocks_read, "{name} scans");
        }
    }

    #[test]
    fn placement_policies_keep_scans_mostly_local() {
        let rows = placement_ablation(DEFAULT_SEED);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // The paper's setup (round-robin striping, r=1) is perfectly
        // local, as is rack-aware r=1 (its primary replica round-robins
        // over writer nodes).
        assert!(get("round-robin r=1").locality_rate > 0.99);
        assert!(get("rack-aware r=1").locality_rate > 0.99);
        // With r>1, greedy local-first assignment can let one node take a
        // block that was another node's only local option, so locality
        // dips slightly below perfect rather than improving monotonically
        // — but it stays high, and TET stays within a few percent.
        for name in ["rack-aware r=2", "rack-aware r=3"] {
            let r = get(name);
            assert!(r.locality_rate > 0.85, "{name}: {}", r.locality_rate);
        }
        let base_tet = get("round-robin r=1").tet_s;
        for r in &rows {
            assert!(
                (r.tet_s / base_tet - 1.0).abs() < 0.10,
                "{}: TET {} vs base {}",
                r.name,
                r.tet_s,
                base_tet
            );
        }
    }

    #[test]
    fn slow_heartbeats_hurt_s3_more_than_mrs1() {
        let pts = heartbeat_sweep(DEFAULT_SEED);
        assert_eq!(pts.len(), 3);
        // S3's penalty from slowing the heartbeat exceeds MRS1's: S3 pays
        // a heartbeat ramp per sub-job, MRS1 once.
        let s3_penalty = pts.last().unwrap().s3_tet_s - pts[0].s3_tet_s;
        let mrs_penalty = pts.last().unwrap().mrs1_tet_s - pts[0].mrs1_tet_s;
        assert!(
            s3_penalty > mrs_penalty,
            "s3 +{s3_penalty:.1}s vs mrs1 +{mrs_penalty:.1}s"
        );
        // Both get slower in absolute terms.
        assert!(pts.last().unwrap().s3_tet_s > pts[0].s3_tet_s);
    }

    #[test]
    fn speculation_recovers_fifo_and_slot_checking_wastes_nothing() {
        let rows = speculation_ablation(DEFAULT_SEED);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let plain = get("FIFO");
        let spec = get("FIFO+spec");
        let s3 = get("S3+slotchk");
        // Speculation launches backups and improves FIFO's makespan.
        assert!(spec.attempts > 0, "no backups launched");
        assert!(spec.wins > 0, "no backup ever won");
        assert!(
            spec.tet_s < plain.tet_s,
            "speculation should help: {} vs {}",
            spec.tet_s,
            plain.tet_s
        );
        // S3's slot checking needs no duplicated work.
        assert_eq!(s3.attempts, 0);
        assert_eq!(s3.wasted, 0);
        // Without speculation the counters stay zero.
        assert_eq!(plain.attempts, 0);
        assert_eq!(plain.wasted, 0);
    }

    #[test]
    fn priority_policy_speeds_up_the_high_job() {
        let (baseline, prioritized) = priority_ablation(DEFAULT_SEED);
        assert!(
            prioritized < baseline,
            "priority must help the high job: {prioritized} vs {baseline}"
        );
    }

    #[test]
    fn mrshare_batch_sweep_trades_tet_for_art() {
        let pts = mrshare_batch_sweep(DEFAULT_SEED);
        assert_eq!(pts.len(), 5);
        // One batch has the worst ART of the sweep.
        let worst_art = pts
            .iter()
            .map(|p| p.art_s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(pts[0].art_s, worst_art, "single batch waits longest");
    }
}
