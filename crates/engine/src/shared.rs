//! Shared-scan execution: many jobs, one pass over the data.
//!
//! This is the execution primitive both MRShare batches and S³ merged
//! sub-jobs rely on: each block is read and parsed **once**, every job's
//! map function runs over the same records, and intermediate tuples are
//! tagged with their job index (MRShare's tuple tagging) so the reduce side
//! can keep the jobs' groups apart.
//!
//! The correctness contract — outputs identical to running each job alone —
//! is what makes shared scanning a pure optimization; the test suite and
//! `tests/` integration tests enforce it record-for-record.

use crate::exec::{partition_of, ExecConfig, JobOutput, ScanStats};
use crate::store::BlockStore;
use crate::types::MapReduceJob;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run every job in `jobs` over one shared scan of `store`.
///
/// Returns one [`JobOutput`] per job, in order. Each output's
/// `stats.blocks_scanned` reports the *shared* scan (the store is read once
/// in total, not once per job); `map_output_records` is per job.
///
/// # Panics
/// Panics if `jobs` is empty or `cfg` has zero threads or reducers.
pub fn run_merged<J: MapReduceJob>(
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExecConfig,
) -> Vec<JobOutput<J::K, J::Out>> {
    assert!(!jobs.is_empty(), "merged run needs at least one job");
    assert!(cfg.num_threads > 0, "need at least one thread");
    assert!(cfg.num_reducers > 0, "need at least one reducer");

    let next_block = AtomicUsize::new(0);
    let num_blocks = store.num_blocks();
    let num_jobs = jobs.len();

    // ---- shared map phase: tag tuples with their job index ----
    type Tagged<K, V> = (usize, K, V);
    type MapOut<K, V> = (Vec<Vec<Tagged<K, V>>>, Vec<u64>, u64);
    let worker_outputs: Vec<MapOut<J::K, J::V>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..cfg.num_threads)
            .map(|_| {
                let next_block = &next_block;
                s.spawn(move |_| {
                    let mut partitions: Vec<Vec<Tagged<J::K, J::V>>> =
                        (0..cfg.num_reducers).map(|_| Vec::new()).collect();
                    let mut emitted = vec![0u64; num_jobs];
                    let mut bytes = 0u64;
                    loop {
                        let idx = next_block.fetch_add(1, Ordering::Relaxed);
                        if idx >= num_blocks {
                            break;
                        }
                        let block = store.block(idx);
                        bytes += block.len() as u64;
                        let mut local: HashMap<(usize, J::K), Vec<J::V>> = HashMap::new();
                        // One pass over the records; every job maps each one.
                        for line in block.lines() {
                            for (ji, job) in jobs.iter().enumerate() {
                                job.map(line, &mut |k, v| {
                                    emitted[ji] += 1;
                                    local.entry((ji, k)).or_default().push(v);
                                });
                            }
                        }
                        for ((ji, k), vs) in local {
                            let folded = jobs[ji].combine(&k, vs);
                            let p = partition_of(&k, cfg.num_reducers);
                            for v in folded {
                                partitions[p].push((ji, k.clone(), v));
                            }
                        }
                    }
                    (partitions, emitted, bytes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    })
    .expect("map scope panicked");

    // ---- shuffle ----
    let mut shuffled: Vec<Vec<Tagged<J::K, J::V>>> =
        (0..cfg.num_reducers).map(|_| Vec::new()).collect();
    let mut per_job_emitted = vec![0u64; num_jobs];
    let mut bytes_scanned = 0u64;
    for (parts, emitted, bytes) in worker_outputs {
        bytes_scanned += bytes;
        for (ji, e) in emitted.into_iter().enumerate() {
            per_job_emitted[ji] += e;
        }
        for (p, mut recs) in parts.into_iter().enumerate() {
            shuffled[p].append(&mut recs);
        }
    }

    // ---- reduce phase: group by (job, key) ----
    let next_partition = AtomicUsize::new(0);
    let shuffled = &shuffled;
    let jobs_ref = jobs;
    let reduced: Vec<Vec<BTreeMap<J::K, J::Out>>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..cfg.num_threads)
            .map(|_| {
                let next_partition = &next_partition;
                s.spawn(move |_| {
                    let mut out: Vec<BTreeMap<J::K, J::Out>> =
                        (0..num_jobs).map(|_| BTreeMap::new()).collect();
                    loop {
                        let p = next_partition.fetch_add(1, Ordering::Relaxed);
                        if p >= shuffled.len() {
                            break;
                        }
                        let mut grouped: BTreeMap<(usize, &J::K), Vec<J::V>> = BTreeMap::new();
                        for (ji, k, v) in &shuffled[p] {
                            grouped.entry((*ji, k)).or_default().push(v.clone());
                        }
                        for ((ji, k), vs) in grouped {
                            if let Some(o) = jobs_ref[ji].reduce(k, &vs) {
                                out[ji].insert(k.clone(), o);
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    })
    .expect("reduce scope panicked");

    let mut records: Vec<BTreeMap<J::K, J::Out>> =
        (0..num_jobs).map(|_| BTreeMap::new()).collect();
    for worker in reduced {
        for (ji, part) in worker.into_iter().enumerate() {
            records[ji].extend(part);
        }
    }

    records
        .into_iter()
        .enumerate()
        .map(|(ji, recs)| {
            let stats = ScanStats {
                blocks_scanned: num_blocks as u64,
                bytes_scanned,
                map_output_records: per_job_emitted[ji],
                reduce_output_records: recs.len() as u64,
            };
            JobOutput {
                records: recs,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_job;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        let text =
            "alpha beta alpha gamma\nbeta delta alpha\nepsilon beta gamma delta\n".repeat(40);
        BlockStore::from_text(&text, 256)
    }

    fn cfg() -> ExecConfig {
        ExecConfig {
            num_threads: 4,
            num_reducers: 5,
        }
    }

    #[test]
    fn merged_equals_independent() {
        // The central correctness property of shared scanning.
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
            PrefixCount { prefix: "".into() },
            PrefixCount { prefix: "zz".into() }, // empty output
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let merged = run_merged(&refs, &store(), &cfg());
        for (job, m) in jobs.iter().zip(&merged) {
            let solo = run_job(job, &store(), &cfg());
            assert_eq!(m.records, solo.records, "prefix {:?}", job.prefix);
            assert_eq!(
                m.stats.map_output_records, solo.stats.map_output_records,
                "map output must match per job"
            );
        }
    }

    #[test]
    fn merged_scans_once() {
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "b".into() },
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let s = store();
        let merged = run_merged(&refs, &s, &cfg());
        // Every output reports the single shared scan, not one per job.
        for m in &merged {
            assert_eq!(m.stats.blocks_scanned as usize, s.num_blocks());
            assert_eq!(m.stats.bytes_scanned as usize, s.total_bytes());
        }
    }

    #[test]
    fn single_job_merge_degenerates_to_run_job() {
        let j = PrefixCount { prefix: "d".into() };
        let merged = run_merged(&[&j], &store(), &cfg());
        let solo = run_job(&j, &store(), &cfg());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].records, solo.records);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_merge_panics() {
        let refs: Vec<&PrefixCount> = vec![];
        run_merged(&refs, &store(), &cfg());
    }
}
