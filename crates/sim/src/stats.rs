//! Summary statistics used by the experiment harness.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Immutable snapshot of an [`Accumulator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `n` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo, "histogram range inverted");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Percentile of a **sorted** slice by linear interpolation; `p` in `[0,100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn accumulator_empty_is_safe() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
        assert_eq!(a.min(), None);
        let s = a.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0);
        h.push(0.0);
        h.push(9.999);
        h.push(10.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
