//! Quickstart: schedule three overlapping wordcount jobs with S³ and
//! compare against Hadoop's FIFO.
//!
//! ```text
//! cargo run --release -p s3-bench --example quickstart
//! ```

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{FifoScheduler, S3Scheduler};
use s3_mapreduce::{job::requests_from_arrivals, simulate, CostModel, EngineConfig, Scheduler};
use s3_workloads::{paper_wordcount_file, wordcount_normal};

fn main() {
    // The paper's cluster: 40 slave nodes in three racks, one map slot
    // each, and its 160 GB wordcount corpus at 64 MB blocks.
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();

    // Three jobs over the same file, arriving 60 s apart — the situation
    // batch schedulers handle poorly: batching delays the first job, FIFO
    // scans the file three times.
    let arrivals = [0.0, 60.0, 120.0];
    let workload = requests_from_arrivals(&profile, dataset.file, &arrivals);

    println!("three wordcount jobs over one 160 GB file, arrivals 0/60/120 s\n");
    println!(
        "{:<8} {:>8} {:>8} {:>14} {:>12}",
        "scheme", "TET(s)", "ART(s)", "blocks read", "GB saved"
    );

    let mut s3 = S3Scheduler::default();
    let mut fifo = FifoScheduler::new();
    let schedulers: [&mut dyn Scheduler; 2] = [&mut s3, &mut fifo];
    for scheduler in schedulers {
        let metrics = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            scheduler,
            &EngineConfig::default(),
        )
        .expect("simulation completes");
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>14} {:>12.1}",
            metrics.scheduler,
            metrics.tet().as_secs_f64(),
            metrics.art().as_secs_f64(),
            metrics.blocks_read,
            metrics.mb_saved() / 1024.0
        );
    }

    println!("\nS3 shares one circular scan across all three jobs: each job");
    println!("starts the moment it arrives and still reads every block once.");
}
