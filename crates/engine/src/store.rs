//! The in-memory block store the real engine scans.
//!
//! Mirrors the HDFS view at a small scale: a file is a sequence of blocks,
//! each a chunk of newline-delimited text. Blocks are the unit of map-task
//! input and of shared scanning.

use std::sync::Arc;

/// An immutable, shareable sequence of text blocks.
#[derive(Debug, Clone)]
pub struct BlockStore {
    blocks: Arc<Vec<String>>,
}

impl BlockStore {
    /// Build from explicit blocks. An empty store is valid: it models a
    /// zero-length file, and a [`crate::SharedScanServer`] over one
    /// resolves every submitted job immediately with empty output.
    pub fn new(blocks: Vec<String>) -> Self {
        BlockStore {
            blocks: Arc::new(blocks),
        }
    }

    /// Split one text into blocks of roughly `block_bytes` bytes, breaking
    /// only at line boundaries so no record straddles two blocks (HDFS
    /// splits mid-record; Hadoop's record reader re-aligns — we model the
    /// post-alignment view).
    ///
    /// # Panics
    /// Panics if `block_bytes` is zero. Empty `text` yields an empty
    /// (zero-block) store.
    pub fn from_text(text: &str, block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let mut blocks = Vec::new();
        let mut current = String::with_capacity(block_bytes + 128);
        for line in text.lines() {
            current.push_str(line);
            current.push('\n');
            if current.len() >= block_bytes {
                blocks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            blocks.push(current);
        }
        BlockStore::new(blocks)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// A block's text.
    pub fn block(&self, idx: usize) -> &str {
        &self.blocks[idx]
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Iterate over blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.blocks.iter().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_respects_line_boundaries() {
        let text = "aaaa\nbbbb\ncccc\ndddd\n";
        let store = BlockStore::from_text(text, 8);
        assert!(store.num_blocks() >= 2);
        for b in store.iter() {
            assert!(b.ends_with('\n'));
            for line in b.lines() {
                assert_eq!(line.len(), 4, "no split lines");
            }
        }
        let rejoined: String = store.iter().collect();
        assert_eq!(rejoined, text);
    }

    #[test]
    fn total_bytes_is_preserved() {
        let text = "one two three\nfour five\n".repeat(100);
        let store = BlockStore::from_text(&text, 64);
        assert_eq!(store.total_bytes(), text.len());
    }

    #[test]
    fn single_small_text_is_one_block() {
        let store = BlockStore::from_text("hello\n", 1024);
        assert_eq!(store.num_blocks(), 1);
        assert_eq!(store.block(0), "hello\n");
    }

    #[test]
    fn empty_store_is_a_zero_length_file() {
        let store = BlockStore::new(vec![]);
        assert_eq!(store.num_blocks(), 0);
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.iter().count(), 0);
        let from_text = BlockStore::from_text("", 64);
        assert_eq!(from_text.num_blocks(), 0);
    }
}
