//! Offline vendored subset of `parking_lot`: [`Mutex`] and [`Condvar`] with
//! parking_lot's API shape (no lock poisoning, `lock()` returns the guard
//! directly, `Condvar::wait` takes `&mut MutexGuard`), implemented over
//! `std::sync`. A poisoning panic in another thread is ignored, matching
//! parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take ownership of the std
    // guard (std's wait consumes and returns it); always Some outside wait.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable working with [`MutexGuard`] by mutable reference.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning. Spurious wakeups possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// As [`Condvar::wait`], but give up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] telling whether the wait timed out (as in
    /// parking_lot; spurious wakeups possible either way).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*state2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*state;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().expect("waiter"));
    }
}
