//! Differential fuzz of the SWAR kernel against the std implementations it
//! replaces: `iter().position`, `str::lines`, and `split_whitespace`.
//!
//! Byte-level primitives are fuzzed over arbitrary byte strings (including
//! invalid UTF-8); the str-semantics iterators are additionally fuzzed over
//! ASCII corpora shaped like the engine's real inputs (words, multi-space
//! runs, CR-LF endings, empty lines).

use proptest::prelude::*;

/// Deterministically expands fuzz codes into text biased towards
/// scan-relevant structure: words separated by whitespace runs, newline and
/// CR-LF endings, occasional empty lines and bare carriage returns.
fn build_textish(codes: &[u8]) -> String {
    const WORDS: &[&str] =
        &["apple", "Banana", "cherry42", "d", "ee-ff", "kiwi,", "longish_word!", "x_9"];
    const SEPS: &[&str] = &[" ", "  ", "\t", "\n", "\r\n", "\n\n", " \t ", "\r"];
    let mut s = String::new();
    for pair in codes.chunks(2) {
        s.push_str(WORDS[pair[0] as usize % WORDS.len()]);
        let sep = pair.get(1).copied().unwrap_or(0);
        s.push_str(SEPS[sep as usize % SEPS.len()]);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn memchr_matches_iter_position(
        hay in prop::collection::vec(any::<u8>(), 0..200),
        needle in any::<u8>(),
    ) {
        prop_assert_eq!(
            memchr::memchr(needle, &hay),
            hay.iter().position(|&b| b == needle)
        );
    }

    #[test]
    fn memchr_iter_matches_all_positions(
        hay in prop::collection::vec(any::<u8>(), 0..200),
        needle in any::<u8>(),
    ) {
        let got: Vec<usize> = memchr::memchr_iter(needle, &hay).collect();
        let want: Vec<usize> = hay
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == needle)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn find_matches_windows_position(
        hay in prop::collection::vec(any::<u8>(), 0..120),
        needle in prop::collection::vec(any::<u8>(), 0..6),
    ) {
        let want = if needle.is_empty() {
            Some(0)
        } else if needle.len() > hay.len() {
            None
        } else {
            hay.windows(needle.len()).position(|w| w == &needle[..])
        };
        prop_assert_eq!(memchr::find(&hay, &needle), want);
    }

    #[test]
    fn count_lines_matches_filter_count(hay in prop::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(
            memchr::count_lines(&hay),
            hay.iter().filter(|&&b| b == b'\n').count()
        );
    }

    #[test]
    fn tokens_match_split_whitespace_on_arbitrary_ascii(
        bytes in prop::collection::vec(0u8..0x80, 0..300),
    ) {
        let s = std::str::from_utf8(&bytes).unwrap();
        let got: Vec<&[u8]> = memchr::tokens(&bytes).collect();
        let want: Vec<&[u8]> = s.split_whitespace().map(str::as_bytes).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tokens_partition_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        // On arbitrary (possibly non-UTF-8) bytes there is no str oracle, but
        // the token stream must still partition the input: token bytes plus
        // skipped separator bytes reconstruct it, and no token is empty or
        // contains whitespace.
        let toks: Vec<&[u8]> = memchr::tokens(&bytes).collect();
        let token_bytes: usize = toks.iter().map(|t| t.len()).sum();
        let sep_bytes = bytes.iter().filter(|&&b| memchr::is_ascii_space(b)).count();
        prop_assert_eq!(token_bytes + sep_bytes, bytes.len());
        for t in &toks {
            prop_assert!(!t.is_empty());
            prop_assert!(!t.iter().any(|&b| memchr::is_ascii_space(b)));
        }
    }

    #[test]
    fn for_each_token_matches_split_whitespace_on_arbitrary_ascii(
        bytes in prop::collection::vec(0u8..0x80, 0..300),
    ) {
        let s = std::str::from_utf8(&bytes).unwrap();
        let mut got: Vec<&[u8]> = Vec::new();
        memchr::for_each_token(&bytes, |t| got.push(t));
        let want: Vec<&[u8]> = s.split_whitespace().map(str::as_bytes).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn for_each_token_matches_tokens_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut got: Vec<&[u8]> = Vec::new();
        memchr::for_each_token(&bytes, |t| got.push(t));
        let want: Vec<&[u8]> = memchr::tokens(&bytes).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lines_match_str_lines_on_textish(codes in prop::collection::vec(any::<u8>(), 0..120)) {
        let s = build_textish(&codes);
        let got: Vec<&[u8]> = memchr::lines(s.as_bytes()).collect();
        let want: Vec<&[u8]> = s.lines().map(str::as_bytes).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lines_match_str_lines_on_arbitrary_ascii(
        bytes in prop::collection::vec(0u8..0x80, 0..300),
    ) {
        let s = std::str::from_utf8(&bytes).unwrap();
        let got: Vec<&[u8]> = memchr::lines(&bytes).collect();
        let want: Vec<&[u8]> = s.lines().map(str::as_bytes).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tokens_match_split_whitespace_on_textish(codes in prop::collection::vec(any::<u8>(), 0..120)) {
        let s = build_textish(&codes);
        let got: Vec<&[u8]> = memchr::tokens(s.as_bytes()).collect();
        let want: Vec<&[u8]> = s.split_whitespace().map(str::as_bytes).collect();
        prop_assert_eq!(got, want);
    }
}
