//! Degenerate-configuration hardening: zero reducers and zero threads.
//!
//! Historically `ExecConfig { num_reducers: 0, .. }` reached the shuffle's
//! `hash % num_reducers` and died with an integer division-by-zero deep in
//! the reduce phase. The engine now clamps degenerate reducer counts to
//! one shard at every entry point, and [`ExecConfig::try_new`] is the
//! typed front door that reports the bad shape as a [`ConfigError`]
//! instead of ever constructing it.

use s3_engine::{run_job, BlockStore, ConfigError, ExecConfig, MapReduceJob, PartitionMode};

/// Plain word count.
struct Count;

impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
}

#[test]
fn try_new_rejects_zero_reducers() {
    assert_eq!(
        ExecConfig::try_new(2, 0).map(|_| ()),
        Err(ConfigError::ZeroReducers)
    );
    assert_eq!(
        ExecConfig::try_new(2, 0).unwrap_err().to_string(),
        "config needs at least one reducer"
    );
}

#[test]
fn try_new_rejects_zero_threads() {
    assert_eq!(
        ExecConfig::try_new(0, 4).map(|_| ()),
        Err(ConfigError::ZeroThreads)
    );
    // Both zero: the thread check fires first, but either way it's an Err.
    assert!(ExecConfig::try_new(0, 0).is_err());
}

#[test]
fn try_new_accepts_positive_shape() {
    let cfg = ExecConfig::try_new(3, 5).expect("valid shape");
    assert_eq!(cfg.num_threads, 3);
    assert_eq!(cfg.num_reducers, 5);
}

/// A hand-built zero-reducer config no longer divides by zero: every
/// entry point clamps to one shard and the output is exact. Checked in
/// both partition modes — the weighted planner must tolerate the clamp
/// too.
#[test]
fn zero_reducers_clamps_to_one_shard() {
    let store = BlockStore::from_text("a b b c c c\n", 4);
    let reference = run_job(
        &Count,
        &store,
        &ExecConfig::try_new(2, 1).expect("valid shape"),
    );
    for partition in [PartitionMode::Hash, PartitionMode::weighted()] {
        let cfg = ExecConfig {
            num_threads: 2,
            num_reducers: 0,
            partition,
        };
        let out = run_job(&Count, &store, &cfg);
        assert_eq!(out.records, reference.records, "{partition:?}");
        assert_eq!(out.records.get("c"), Some(&3));
    }
}
